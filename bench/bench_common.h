#ifndef SLIM_BENCH_BENCH_COMMON_H_
#define SLIM_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Shared helpers for the experiment benches.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"
#include "util/status.h"

namespace slim::bench {

/// Aborts the bench on a non-OK status — setup failures must be loud and
/// point at the failing call site.
inline void CheckOk(const Status& status, const char* what, const char* file,
                    int line) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s:%d: bench setup failed (%s): %s\n", file, line,
                 what, status.ToString().c_str());
    std::abort();
  }
}

#define SLIM_BENCH_CHECK(expr) \
  ::slim::bench::CheckOk((expr), #expr, __FILE__, __LINE__)

/// \brief Reads the growth of a default-registry obs counter across a
/// bench run, so benches can report *measured* work (selects issued,
/// triples added) instead of re-deriving it from the loop shape. With obs
/// compiled out (SLIM_ENABLE_OBS=OFF) the counter never moves and Delta()
/// is 0 — callers should guard on obs::Enabled-style checks or accept the
/// zero.
class ObsCounterProbe {
 public:
  explicit ObsCounterProbe(const char* name)
      : counter_(obs::DefaultRegistry().GetCounter(name)),
        start_(counter_->value()) {}

  uint64_t Delta() const { return counter_->value() - start_; }

  /// The delta as a per-iteration benchmark counter.
  benchmark::Counter PerIteration() const {
    return benchmark::Counter(static_cast<double>(Delta()),
                              benchmark::Counter::kAvgIterations);
  }

 private:
  obs::Counter* counter_;
  uint64_t start_;
};

}  // namespace slim::bench

#endif  // SLIM_BENCH_BENCH_COMMON_H_
