#ifndef SLIM_BENCH_BENCH_COMMON_H_
#define SLIM_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Shared helpers for the experiment benches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace slim::bench {

/// Aborts the bench on a non-OK status — setup failures must be loud.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

#define SLIM_BENCH_CHECK(expr) ::slim::bench::CheckOk((expr), #expr)

}  // namespace slim::bench

#endif  // SLIM_BENCH_BENCH_COMMON_H_
