#ifndef SLIM_BENCH_BENCH_COMMON_H_
#define SLIM_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Shared helpers for the experiment benches, including the JSON
/// telemetry reporter behind SLIM_BENCH_MAIN (see bench_json.h for the
/// schema and EXPERIMENTS.md §"Bench telemetry" for the methodology).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/bench_json.h"
#include "obs/obs.h"
#include "util/status.h"

namespace slim::bench {

/// Aborts the bench on a non-OK status — setup failures must be loud and
/// point at the failing call site.
inline void CheckOk(const Status& status, const char* what, const char* file,
                    int line) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s:%d: bench setup failed (%s): %s\n", file, line,
                 what, status.ToString().c_str());
    std::abort();
  }
}

#define SLIM_BENCH_CHECK(expr) \
  ::slim::bench::CheckOk((expr), #expr, __FILE__, __LINE__)

/// \brief Reads the growth of a default-registry obs counter across a
/// bench run, so benches can report *measured* work (selects issued,
/// triples added) instead of re-deriving it from the loop shape.
///
/// With obs compiled out (SLIM_ENABLE_OBS=OFF) the counter never moves, so
/// a raw Delta() of 0 would report as "no work happened" — a lie. Callers
/// should publish through Report(), which emits the measurement only when
/// `enabled()` and otherwise annotates the run as suppressed; the JSON
/// telemetry likewise records `obs_enabled` so bench_report never compares
/// a measured counter against a suppressed one.
class ObsCounterProbe {
 public:
  explicit ObsCounterProbe(const char* name)
      : counter_(obs::DefaultRegistry().GetCounter(name)),
        start_(counter_->value()) {}

  /// True when the instrumentation this probe reads is compiled in.
  static constexpr bool enabled() { return SLIM_OBS_ENABLED != 0; }

  uint64_t Delta() const { return counter_->value() - start_; }

  /// The delta as a per-iteration benchmark counter.
  benchmark::Counter PerIteration() const {
    return benchmark::Counter(static_cast<double>(Delta()),
                              benchmark::Counter::kAvgIterations);
  }

  /// Publishes the probe as `state.counters[label]` when obs is enabled;
  /// with obs compiled out, labels the run "obs-off: counters suppressed"
  /// instead of reporting a misleading zero.
  void Report(benchmark::State& state, const char* label) const {
    if (enabled()) {
      state.counters[label] = PerIteration();
    } else {
      state.SetLabel("obs-off: counters suppressed");
    }
  }

 private:
  obs::Counter* counter_;
  uint64_t start_;
};

// ---------------------------------------------------------------------------
// JSON telemetry reporter (SLIM_BENCH_MAIN)
// ---------------------------------------------------------------------------

/// \brief Console reporter that additionally collects every per-repetition
/// run, grouped by benchmark family, for the slim-bench-v1 JSON document.
class JsonBenchReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string name = run.benchmark_name();
      auto it = index_.find(name);
      if (it == index_.end()) {
        index_[name] = families_.size();
        families_.push_back({std::move(name), {}});
        it = index_.find(families_.back().first);
      }
      families_[it->second].second.push_back(run);
    }
    ConsoleReporter::ReportRuns(report);
  }

  /// Aggregates collected runs: p50/p95 of per-iteration real and CPU time
  /// across repetitions, counter means, in first-report order.
  std::vector<BenchEntry> Entries() const {
    std::vector<BenchEntry> out;
    for (const auto& [name, runs] : families_) {
      if (runs.empty()) continue;
      BenchEntry entry;
      entry.name = name;
      entry.time_unit = benchmark::GetTimeUnitString(runs.front().time_unit);
      entry.iterations = static_cast<uint64_t>(runs.front().iterations);
      entry.repetitions = runs.size();
      std::vector<double> real, cpu;
      for (const Run& run : runs) {
        real.push_back(run.GetAdjustedRealTime());
        cpu.push_back(run.GetAdjustedCPUTime());
      }
      entry.real_p50 = Percentile(real, 50);
      entry.real_p95 = Percentile(real, 95);
      entry.cpu_p50 = Percentile(cpu, 50);
      entry.cpu_p95 = Percentile(cpu, 95);
      for (const auto& [counter_name, counter] : runs.front().counters) {
        double sum = 0;
        for (const Run& run : runs) {
          auto found = run.counters.find(counter_name);
          if (found != run.counters.end()) sum += found->second.value;
        }
        entry.counters.emplace_back(counter_name,
                                    sum / static_cast<double>(runs.size()));
      }
      out.push_back(std::move(entry));
    }
    return out;
  }

 private:
  std::map<std::string, size_t> index_;
  std::vector<std::pair<std::string, std::vector<Run>>> families_;
};

/// Bench binary name from argv[0]: basename minus a "bench_" prefix
/// ("/path/to/bench_query" -> "query").
inline std::string BenchNameFromArgv0(const char* argv0) {
  std::string name = argv0 != nullptr ? argv0 : "bench";
  size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

#ifndef SLIM_BENCH_GIT_SHA
#define SLIM_BENCH_GIT_SHA "unknown"
#endif
#ifndef SLIM_BENCH_BUILD_FLAGS
#define SLIM_BENCH_BUILD_FLAGS ""
#endif

/// Whole-process getrusage(RUSAGE_SELF), converted to the slim-bench-v1
/// units (RSS in KiB, CPU in microseconds). On platforms without
/// getrusage the result has `present == false` and the serializer omits
/// the section entirely.
inline BenchRusage CollectBenchRusage() {
  BenchRusage usage;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.present = true;
#if defined(__APPLE__)
    usage.max_rss_kb = static_cast<uint64_t>(ru.ru_maxrss) / 1024;  // bytes
#else
    usage.max_rss_kb = static_cast<uint64_t>(ru.ru_maxrss);  // already KiB
#endif
    usage.user_cpu_us = static_cast<uint64_t>(ru.ru_utime.tv_sec) * 1000000 +
                        static_cast<uint64_t>(ru.ru_utime.tv_usec);
    usage.sys_cpu_us = static_cast<uint64_t>(ru.ru_stime.tv_sec) * 1000000 +
                       static_cast<uint64_t>(ru.ru_stime.tv_usec);
  }
#endif
  return usage;
}

/// Writes the collected telemetry when the environment asks for it:
/// SLIM_BENCH_JSON names the exact output file; otherwise
/// SLIM_BENCH_JSON_DIR receives one BENCH_<name>.json per binary. Returns
/// nonzero only when a requested write fails (silent no-op otherwise, so
/// plain interactive runs behave exactly like BENCHMARK_MAIN).
inline int WriteBenchJsonIfRequested(const JsonBenchReporter& reporter,
                                     const char* argv0) {
  std::string bench_name = BenchNameFromArgv0(argv0);
  std::string path;
  if (const char* exact = std::getenv("SLIM_BENCH_JSON")) {
    path = exact;
  } else if (const char* dir = std::getenv("SLIM_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/BENCH_" + bench_name + ".json";
  } else {
    return 0;
  }
  BenchReportData report;
  report.bench_name = bench_name;
  report.git_sha = SLIM_BENCH_GIT_SHA;
  report.build_flags = SLIM_BENCH_BUILD_FLAGS;
  report.obs_enabled = ObsCounterProbe::enabled();
  report.entries = reporter.Entries();
  report.rusage = CollectBenchRusage();
  std::ofstream out(path, std::ios::trunc);
  out << BenchReportToJson(report) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench telemetry: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench telemetry: wrote %s\n", path.c_str());
  return 0;
}

}  // namespace slim::bench

/// Drop-in replacement for BENCHMARK_MAIN() that routes console output
/// through JsonBenchReporter and honours SLIM_BENCH_JSON[_DIR].
#define SLIM_BENCH_MAIN()                                                   \
  int main(int argc, char** argv) {                                         \
    char arg0_default[] = "benchmark";                                      \
    char* args_default = arg0_default;                                      \
    if (!argv) {                                                            \
      argc = 1;                                                             \
      argv = &args_default;                                                 \
    }                                                                       \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::slim::bench::JsonBenchReporter reporter;                              \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                         \
    ::benchmark::Shutdown();                                                \
    return ::slim::bench::WriteBenchJsonIfRequested(reporter, argv[0]);     \
  }                                                                         \
  int main(int, char**)

#endif  // SLIM_BENCH_BENCH_COMMON_H_
