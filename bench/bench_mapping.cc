// Experiment T4 (paper §4.3): mappings between superimposed models/schemas.
//
// "We can leverage the generic representation directly, by defining
// mappings between superimposed models, including model-to-model,
// schema-to-schema and even schema-to-model mappings."
//
// Regenerates: schema-to-schema transformation throughput vs instance
// count, the cost of property renaming vs pass-through copying, and
// schema induction (the schema-later pipeline) vs data size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "slim/conformance.h"
#include "slim/instance.h"
#include "slim/mapping.h"

namespace slim::store {
namespace {

// Bundle-Scrap-shaped instance data with free type names.
void FillInstances(trim::TripleStore* store, int64_t n) {
  InstanceGraph graph(store);
  std::string bundle;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 16 == 0) {
      bundle = graph.Create("Bundle").ValueOrDie();
      SLIM_BENCH_CHECK(
          graph.SetValue(bundle, "bundleName", "b" + std::to_string(i)));
    }
    std::string scrap = graph.Create("Scrap").ValueOrDie();
    SLIM_BENCH_CHECK(
        graph.SetValue(scrap, "scrapName", "s" + std::to_string(i)));
    SLIM_BENCH_CHECK(graph.SetValue(
        scrap, "scrapPos", std::to_string(i % 640) + "," +
                               std::to_string(i % 480)));
    SLIM_BENCH_CHECK(graph.Connect(bundle, "bundleContent", scrap));
  }
}

Mapping PadToTopicMap() {
  Mapping mapping("pad-to-topicmap");
  SLIM_BENCH_CHECK(mapping.AddRule(
      {"Bundle", "schema:tm/Topic",
       {{"bundleName", "topicName"}, {"bundleContent", "occurrence"}},
       false}));
  SLIM_BENCH_CHECK(mapping.AddRule(
      {"Scrap", "schema:tm/Occurrence",
       {{"scrapName", "label"}, {"scrapPos", "position"}},
       false}));
  return mapping;
}

void BM_SchemaToSchemaMapping(benchmark::State& state) {
  const int64_t n = state.range(0);
  trim::TripleStore source;
  FillInstances(&source, n);
  Mapping mapping = PadToTopicMap();
  for (auto _ : state) {
    trim::TripleStore target;
    auto stats = mapping.Apply(source, &target);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(target.size());
    state.counters["triples_written"] =
        static_cast<double>(stats->triples_written);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchemaToSchemaMapping)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PassThroughCopyMapping(benchmark::State& state) {
  // A mapping with no matching rules degrades to a copy — the baseline the
  // renaming cost is compared against.
  const int64_t n = state.range(0);
  trim::TripleStore source;
  FillInstances(&source, n);
  Mapping mapping("noop");
  SLIM_BENCH_CHECK(mapping.AddRule({"NothingUsesThis", "X", {}, false}));
  for (auto _ : state) {
    trim::TripleStore target;
    auto stats = mapping.Apply(source, &target);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(target.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PassThroughCopyMapping)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_FilteringMapping(benchmark::State& state) {
  // Drop-unmapped-types mapping: keep bundles, drop scraps.
  const int64_t n = state.range(0);
  trim::TripleStore source;
  FillInstances(&source, n);
  Mapping mapping("bundles-only");
  SLIM_BENCH_CHECK(
      mapping.AddRule({"Bundle", "schema:out/Group", {}, false}));
  mapping.set_drop_unmapped_types(true);
  for (auto _ : state) {
    trim::TripleStore target;
    auto stats = mapping.Apply(source, &target);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    state.counters["dropped"] =
        static_cast<double>(stats->instances_dropped);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilteringMapping)->Arg(1000)->Arg(10000);

void BM_InduceSchema(benchmark::State& state) {
  const int64_t n = state.range(0);
  trim::TripleStore store;
  FillInstances(&store, n);
  for (auto _ : state) {
    auto schema = InduceSchema(store, "induced");
    if (!schema.ok()) state.SkipWithError(schema.status().ToString().c_str());
    benchmark::DoNotOptimize(schema->connectors().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InduceSchema)->Arg(1000)->Arg(10000);

void BM_ConformanceCheck(benchmark::State& state) {
  const int64_t n = state.range(0);
  trim::TripleStore store;
  FillInstances(&store, n);
  SchemaDef schema = InduceSchema(store, "induced").ValueOrDie();
  ModelDef generic = BuildGenericModel();
  for (auto _ : state) {
    ConformanceReport report = CheckConformance(store, schema, generic);
    benchmark::DoNotOptimize(report.violations.size());
    state.counters["violations"] =
        static_cast<double>(report.violations.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConformanceCheck)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace slim::store

SLIM_BENCH_MAIN();
