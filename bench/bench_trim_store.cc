// Experiment T1 (paper §4.4): TRIM — the Triple Manager.
//
// "Through TRIM, the DMI can create, remove, persist (through XML files),
// query, and create simple views over the underlying triples."
//
// Regenerates: insert throughput vs store size, selection-query latency by
// fixed field and selectivity, reachability-view latency vs view size, and
// XML persistence throughput.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "trim/persistence.h"
#include "trim/triple_store.h"
#include "util/rng.h"

namespace slim::trim {
namespace {

// A synthetic pad-shaped graph: `n` scraps spread over bundles of 16,
// each scrap with 3 literal attributes and one handle edge.
void FillPadShaped(TripleStore* store, int64_t scraps, Rng* rng) {
  int64_t bundles = (scraps + 15) / 16;
  for (int64_t b = 0; b < bundles; ++b) {
    std::string bid = "bundle" + std::to_string(b);
    SLIM_BENCH_CHECK(store->AddLiteral(bid, "bundleName", rng->Word(8)));
    if (b > 0) {
      SLIM_BENCH_CHECK(store->AddResource("bundle0", "nestedBundle", bid));
    }
  }
  for (int64_t s = 0; s < scraps; ++s) {
    std::string sid = "scrap" + std::to_string(s);
    std::string bid = "bundle" + std::to_string(s / 16);
    SLIM_BENCH_CHECK(store->AddResource(bid, "bundleContent", sid));
    SLIM_BENCH_CHECK(store->AddLiteral(sid, "scrapName", rng->Word(10)));
    SLIM_BENCH_CHECK(store->AddLiteral(
        sid, "scrapPos", std::to_string(s % 640) + "," +
                             std::to_string(s % 480)));
    std::string hid = "handle" + std::to_string(s);
    SLIM_BENCH_CHECK(store->AddResource(sid, "scrapMark", hid));
    SLIM_BENCH_CHECK(
        store->AddLiteral(hid, "markId", "mark" + std::to_string(s)));
  }
}

void BM_Insert(benchmark::State& state) {
  const int64_t n = state.range(0);
  slim::bench::ObsCounterProbe adds("trim.add.ok");
  for (auto _ : state) {
    state.PauseTiming();
    TripleStore store;
    Rng rng(7);
    state.ResumeTiming();
    FillPadShaped(&store, n, &rng);
    benchmark::DoNotOptimize(store.size());
  }
  // ~6 triples per scrap (attributes + containment + handle).
  state.SetItemsProcessed(state.iterations() * n * 6);
  // Measured (not derived) triple writes, from the obs layer; annotated
  // as suppressed when obs is compiled out.
  adds.Report(state, "triples_per_iter");
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000)->Arg(100000);

class StoreFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (store_.size() != 0 &&
        scraps_ == state.range(0)) {
      return;  // reuse across repetitions of the same size
    }
    store_.Clear();
    scraps_ = state.range(0);
    Rng rng(7);
    FillPadShaped(&store_, scraps_, &rng);
  }
  void TearDown(const benchmark::State&) override {}

  TripleStore store_;
  int64_t scraps_ = -1;
};

BENCHMARK_DEFINE_F(StoreFixture, SelectBySubject)(benchmark::State& state) {
  slim::bench::ObsCounterProbe selects("trim.select.calls");
  int64_t i = 0;
  for (auto _ : state) {
    std::string subject = "scrap" + std::to_string(i++ % scraps_);
    auto result = store_.Select(TriplePattern::BySubject(subject));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  selects.Report(state, "selects_per_iter");
  state.counters["store_triples"] = static_cast<double>(store_.size());
}
BENCHMARK_REGISTER_F(StoreFixture, SelectBySubject)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, SelectByPropertyHighSelectivity)
(benchmark::State& state) {
  // "bundleName" matches one triple per bundle — ~ n/16 results.
  slim::bench::ObsCounterProbe selects("trim.select.calls");
  for (auto _ : state) {
    auto result = store_.Select(TriplePattern::ByProperty("bundleName"));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (scraps_ / 16));
  selects.Report(state, "selects_per_iter");
  state.counters["store_triples"] = static_cast<double>(store_.size());
}
BENCHMARK_REGISTER_F(StoreFixture, SelectByPropertyHighSelectivity)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, GetOnePointRead)(benchmark::State& state) {
  slim::bench::ObsCounterProbe reads("trim.get_one.calls");
  int64_t i = 0;
  for (auto _ : state) {
    std::string subject = "scrap" + std::to_string(i++ % scraps_);
    auto result = store_.GetOne(subject, "scrapName");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  reads.Report(state, "reads_per_iter");
}
BENCHMARK_REGISTER_F(StoreFixture, GetOnePointRead)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, ViewFromRoot)(benchmark::State& state) {
  // The paper's view operation: everything reachable from bundle0 — the
  // whole pad.
  for (auto _ : state) {
    auto view = store_.ViewFrom("bundle0");
    benchmark::DoNotOptimize(view);
    state.counters["view_triples"] =
        static_cast<double>(view.size());
  }
  state.SetItemsProcessed(state.iterations() * store_.size());
}
BENCHMARK_REGISTER_F(StoreFixture, ViewFromRoot)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, ViewFromLeafBundle)(benchmark::State& state) {
  // A small view: one bundle's 16 scraps.
  std::string leaf = "bundle" + std::to_string(scraps_ / 16 - 1);
  for (auto _ : state) {
    auto view = store_.ViewFrom(leaf);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(StoreFixture, ViewFromLeafBundle)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, PersistToXml)(benchmark::State& state) {
  for (auto _ : state) {
    std::string xml = StoreToXml(store_);
    benchmark::DoNotOptimize(xml);
    state.counters["xml_bytes"] = static_cast<double>(xml.size());
  }
  state.SetItemsProcessed(state.iterations() * store_.size());
}
BENCHMARK_REGISTER_F(StoreFixture, PersistToXml)
    ->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_DEFINE_F(StoreFixture, LoadFromXml)(benchmark::State& state) {
  std::string xml = StoreToXml(store_);
  for (auto _ : state) {
    TripleStore loaded;
    SLIM_BENCH_CHECK(StoreFromXml(xml, &loaded));
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * store_.size());
}
BENCHMARK_REGISTER_F(StoreFixture, LoadFromXml)
    ->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RemoveAdd(benchmark::State& state) {
  TripleStore store;
  Rng rng(7);
  FillPadShaped(&store, 10000, &rng);
  slim::bench::ObsCounterProbe adds("trim.add.ok");
  slim::bench::ObsCounterProbe removes("trim.remove.ok");
  int64_t i = 0;
  for (auto _ : state) {
    std::string sid = "scrap" + std::to_string(i++ % 10000);
    Triple t{sid, "scrapName", *store.GetOne(sid, "scrapName")};
    SLIM_BENCH_CHECK(store.Remove(t));
    SLIM_BENCH_CHECK(store.Add(t));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  adds.Report(state, "adds_per_iter");
  removes.Report(state, "removes_per_iter");
}
BENCHMARK(BM_RemoveAdd);

}  // namespace
}  // namespace slim::trim

SLIM_BENCH_MAIN();
