// Sampling-profiler overhead: what does always-on profiling cost the hot
// path?
//
// The acceptance bar for the span-stack CPU sampler (obs/cpu_profiler.h)
// is < 1% added real_p50 on the declarative-query hot path at the default
// sampling rate (99 Hz). Profiling has two distinct costs and this bench
// prices both:
//
//   1. The per-span cost of stack tracking — every StartSpan/End pushes
//      and pops an interned frame on the thread's SpanStack while a
//      profiler is running. This is the always-on tax and the gated one.
//   2. The sampler tick itself — the profiler thread walking every live
//      SpanStack once. It runs 99 times a second regardless of workload,
//      so it is priced per-tick, not per-op.
//
// Families:
//   BM_QueryUnprofiled     store::Execute, profiler off (the seed path)
//   BM_QueryProfiled       same query with the 99 Hz ticker sampler live
//   BM_SpanStackPushPop    one tracked-span open/close with stacks on
//   BM_SamplerTick         one SampleOnce pass over live thread stacks
//
// The <1% gate compares BM_QueryProfiled p50 against BM_QueryUnprofiled
// p50 via tools/bench_report and the seeded baseline in
// bench/baselines/BENCH_profiler_overhead.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/cpu_profiler.h"
#include "obs/obs.h"
#include "slim/query.h"
#include "slimpad/slimpad_dmi.h"

namespace slim {
namespace {

// The same rounds-shaped pad (64 patients x 8 scraps) bench_slo_overhead
// uses, so the two overhead gates price the same representative query.
struct BenchPad {
  trim::TripleStore store;
  std::unique_ptr<pad::SlimPadDmi> dmi;
};

std::unique_ptr<BenchPad> BuildBenchPad() {
  auto out = std::make_unique<BenchPad>();
  out->dmi = std::make_unique<pad::SlimPadDmi>(&out->store);
  pad::SlimPadDmi& dmi = *out->dmi;
  const pad::SlimPad* p = *dmi.Create_SlimPad("Rounds");
  const pad::Bundle* root = *dmi.Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi.Update_rootBundle(p->id(), root->id()));
  for (int i = 0; i < 64; ++i) {
    const pad::Bundle* b = *dmi.Create_Bundle(
        "patient" + std::to_string(i), {0, double(i)}, 640, 160);
    SLIM_BENCH_CHECK(dmi.AddNestedBundle(root->id(), b->id()));
    for (int s = 0; s < 8; ++s) {
      std::string name = s == 3 ? "K 4.9"
                                : "med" + std::to_string(i) + "_" +
                                      std::to_string(s);
      const pad::Scrap* scrap = *dmi.Create_Scrap(name, {double(s), 0});
      SLIM_BENCH_CHECK(dmi.AddScrapToBundle(b->id(), scrap->id()));
    }
  }
  return out;
}

// --- The headline pair: the same query, profiled and unprofiled -----------

void BM_QueryUnprofiled(benchmark::State& state) {
  auto pad = BuildBenchPad();
  store::Query q = *store::Query::Parse("?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryUnprofiled);

void BM_QueryProfiled(benchmark::State& state) {
#if SLIM_OBS_ENABLED
  obs::CpuProfiler profiler(&obs::DefaultRegistry(), &obs::DefaultTracer());
  if (!profiler.Start()) {
    state.SkipWithError("profiler failed to start");
    return;
  }
#endif
  auto pad = BuildBenchPad();
  store::Query q = *store::Query::Parse("?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
#if SLIM_OBS_ENABLED
  profiler.Stop();
#endif
}
BENCHMARK(BM_QueryProfiled);

#if SLIM_OBS_ENABLED

// --- The always-on tax in isolation: one span open/close with stacks on --

void BM_SpanStackPushPop(benchmark::State& state) {
  obs::CpuProfilerOptions options;
  options.sample_hz = 1;  // minimal ticking; this family prices the push
  obs::CpuProfiler profiler(&obs::DefaultRegistry(), &obs::DefaultTracer(),
                            options);
  if (!profiler.Start()) {
    state.SkipWithError("profiler failed to start");
    return;
  }
  for (auto _ : state) {
    SLIM_OBS_SPAN(span, "bench.cpuprof.span");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
  profiler.Stop();
}
BENCHMARK(BM_SpanStackPushPop);

// --- The control plane: one sampler pass over live thread stacks ----------

void BM_SamplerTick(benchmark::State& state) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  obs::CpuProfiler profiler(&registry, &tracer);
  tracer.set_stack_tracking(true);
  // A realistic nest for the sampler to snapshot.
  std::vector<obs::Span> spans;
  for (const char* name :
       {"slimpad.open_scrap", "slim.query.execute", "trim.select"}) {
    spans.push_back(tracer.StartSpan(name));
  }
  for (auto _ : state) {
    profiler.SampleOnceForBench();
  }
  state.SetItemsProcessed(state.iterations());
  spans.clear();
  tracer.set_stack_tracking(false);
}
BENCHMARK(BM_SamplerTick);

#endif  // SLIM_OBS_ENABLED

}  // namespace
}  // namespace slim

SLIM_BENCH_MAIN();
