// Tests for the perf-telemetry pipeline: the slim-bench-v1 serializer
// (bench/bench_json.h, the writer side used by SLIM_BENCH_MAIN) and the
// bench_report diff tool (tools/bench_report/report.h, the reader side CI
// gates on). The round-trip test pins the schema contract between them.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "tools/bench_report/report.h"

namespace slim {
namespace {

bench::BenchReportData MakeReport() {
  bench::BenchReportData report;
  report.bench_name = "query";
  report.git_sha = "abc1234";
  report.build_flags = "RelWithDebInfo -O2";
  report.obs_enabled = true;
  bench::BenchEntry e;
  e.name = "BM_QueryExecute/1024";
  e.time_unit = "us";
  e.iterations = 4096;
  e.repetitions = 3;
  e.real_p50 = 12.5;
  e.real_p95 = 13.25;
  e.cpu_p50 = 12.0;
  e.cpu_p95 = 13.0;
  e.counters = {{"selects_per_iter", 5.0}};
  report.entries.push_back(e);
  bench::BenchEntry e2;
  e2.name = "BM_QueryParse";
  e2.time_unit = "ns";
  e2.iterations = 100000;
  e2.repetitions = 1;
  e2.real_p50 = 800;
  e2.real_p95 = 800;
  e2.cpu_p50 = 799;
  e2.cpu_p95 = 799;
  report.entries.push_back(e2);
  return report;
}

TEST(BenchJsonTest, PercentileIsNearestRank) {
  EXPECT_EQ(bench::Percentile({}, 50), 0.0);
  EXPECT_EQ(bench::Percentile({7.0}, 50), 7.0);
  EXPECT_EQ(bench::Percentile({7.0}, 95), 7.0);
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(i);
  EXPECT_EQ(bench::Percentile(hundred, 50), 50.0);
  EXPECT_EQ(bench::Percentile(hundred, 95), 95.0);
  EXPECT_EQ(bench::Percentile(hundred, 100), 100.0);
  // Order-independent: Percentile sorts its own copy.
  EXPECT_EQ(bench::Percentile({30.0, 10.0, 20.0}, 50), 20.0);
}

TEST(BenchJsonTest, JsonNumberKeepsIntegersIntegral) {
  EXPECT_EQ(bench::JsonNumber(42), "42");
  EXPECT_EQ(bench::JsonNumber(-3), "-3");
  EXPECT_EQ(bench::JsonNumber(12.5), "12.5");
}

TEST(BenchReportTest, WriterToolRoundTrip) {
  bench::BenchReportData report = MakeReport();
  std::string json = bench::BenchReportToJson(report);

  tools::BenchFile parsed;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.schema, bench::kBenchJsonSchema);
  EXPECT_EQ(parsed.bench, "query");
  EXPECT_EQ(parsed.git_sha, "abc1234");
  EXPECT_EQ(parsed.build_flags, "RelWithDebInfo -O2");
  EXPECT_TRUE(parsed.obs_enabled);
  ASSERT_EQ(parsed.benchmarks.size(), 2u);
  const tools::BenchmarkResult& b = parsed.benchmarks[0];
  EXPECT_EQ(b.name, "BM_QueryExecute/1024");
  EXPECT_EQ(b.time_unit, "us");
  EXPECT_EQ(b.iterations, 4096u);
  EXPECT_EQ(b.repetitions, 3u);
  EXPECT_DOUBLE_EQ(b.real_p50, 12.5);
  EXPECT_DOUBLE_EQ(b.real_p95, 13.25);
  ASSERT_EQ(b.counters.size(), 1u);
  EXPECT_EQ(b.counters[0].first, "selects_per_iter");
  EXPECT_DOUBLE_EQ(b.counters[0].second, 5.0);
}

TEST(BenchReportTest, RejectsMalformedAndForeignDocuments) {
  tools::BenchFile out;
  std::string error;
  EXPECT_FALSE(tools::ParseBenchJson("not json at all", &out, &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(tools::ParseBenchJson("{\"truncated\":", &out, &error));
  EXPECT_FALSE(error.empty());

  // Valid JSON, wrong schema tag: the tool must refuse to diff it.
  error.clear();
  EXPECT_FALSE(tools::ParseBenchJson(
      "{\"schema\":\"google-benchmark\",\"benchmarks\":[]}", &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(BenchReportTest, IdenticalFilesHaveNoRegressions) {
  bench::BenchReportData report = MakeReport();
  std::string json = bench::BenchReportToJson(report);
  tools::BenchFile file;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(json, &file, &error)) << error;

  tools::DiffReport diff = tools::DiffBenchFiles(file, file, 10.0);
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_TRUE(diff.comparable);
  ASSERT_EQ(diff.rows.size(), 2u);
  for (const tools::DiffRow& row : diff.rows) {
    EXPECT_FALSE(row.regression);
    EXPECT_DOUBLE_EQ(row.delta_pct, 0.0);
  }
  EXPECT_EQ(tools::DiffExitCode(diff, /*gating=*/true), 0);
}

TEST(BenchReportTest, DoubledLatencyIsARegression) {
  bench::BenchReportData old_report = MakeReport();
  bench::BenchReportData new_report = MakeReport();
  new_report.entries[0].real_p50 *= 2;  // +100% versus a 10% threshold

  tools::BenchFile older, newer;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(old_report),
                                    &older, &error));
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(new_report),
                                    &newer, &error));

  tools::DiffReport diff = tools::DiffBenchFiles(older, newer, 10.0);
  EXPECT_EQ(diff.regressions, 1);
  ASSERT_EQ(diff.rows.size(), 2u);
  EXPECT_TRUE(diff.rows[0].regression);
  EXPECT_DOUBLE_EQ(diff.rows[0].delta_pct, 100.0);
  EXPECT_FALSE(diff.rows[1].regression);

  // Gating run fails CI; --report-only keeps the pipeline green.
  EXPECT_EQ(tools::DiffExitCode(diff, /*gating=*/true), 1);
  EXPECT_EQ(tools::DiffExitCode(diff, /*gating=*/false), 0);

  std::string table = tools::FormatDiff(diff);
  EXPECT_NE(table.find("BM_QueryExecute/1024"), std::string::npos);
}

TEST(BenchReportTest, ImprovementAndUnderThresholdDoNotRegress) {
  bench::BenchReportData old_report = MakeReport();
  bench::BenchReportData new_report = MakeReport();
  new_report.entries[0].real_p50 *= 0.5;   // 2x faster
  new_report.entries[1].real_p50 *= 1.05;  // +5% < 10% threshold

  tools::BenchFile older, newer;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(old_report),
                                    &older, &error));
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(new_report),
                                    &newer, &error));
  tools::DiffReport diff = tools::DiffBenchFiles(older, newer, 10.0);
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_EQ(tools::DiffExitCode(diff, /*gating=*/true), 0);
}

TEST(BenchReportTest, AppearingAndDisappearingFamiliesNeverRegress) {
  bench::BenchReportData old_report = MakeReport();
  bench::BenchReportData new_report = MakeReport();
  new_report.entries.erase(new_report.entries.begin());  // first disappears
  bench::BenchEntry added;
  added.name = "BM_Brand/New";
  added.real_p50 = 1;
  new_report.entries.push_back(added);

  tools::BenchFile older, newer;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(old_report),
                                    &older, &error));
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(new_report),
                                    &newer, &error));
  tools::DiffReport diff = tools::DiffBenchFiles(older, newer, 10.0);
  EXPECT_EQ(diff.regressions, 0);

  bool saw_old_only = false, saw_new_only = false;
  for (const tools::DiffRow& row : diff.rows) {
    if (row.name == "BM_QueryExecute/1024") {
      EXPECT_TRUE(row.only_in_old);
      saw_old_only = true;
    }
    if (row.name == "BM_Brand/New") {
      EXPECT_TRUE(row.only_in_new);
      saw_new_only = true;
    }
  }
  EXPECT_TRUE(saw_old_only);
  EXPECT_TRUE(saw_new_only);
}

TEST(BenchReportTest, ObsMismatchFlagsIncomparable) {
  bench::BenchReportData on_report = MakeReport();
  bench::BenchReportData off_report = MakeReport();
  off_report.obs_enabled = false;

  tools::BenchFile on_file, off_file;
  std::string error;
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(on_report),
                                    &on_file, &error));
  ASSERT_TRUE(tools::ParseBenchJson(bench::BenchReportToJson(off_report),
                                    &off_file, &error));
  tools::DiffReport diff = tools::DiffBenchFiles(on_file, off_file, 10.0);
  EXPECT_FALSE(diff.comparable);
}

TEST(BenchReportTest, LoadsFromDiskAndRejectsMissingFiles) {
  std::string path = ::testing::TempDir() + "/slim_bench_report_test.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << bench::BenchReportToJson(MakeReport());
  }
  tools::BenchFile file;
  std::string error;
  ASSERT_TRUE(tools::LoadBenchJson(path, &file, &error)) << error;
  EXPECT_EQ(file.bench, "query");
  std::remove(path.c_str());

  error.clear();
  EXPECT_FALSE(tools::LoadBenchJson(path + ".missing", &file, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace slim
