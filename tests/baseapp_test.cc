#include <gtest/gtest.h>

#include "baseapp/html_app.h"
#include "baseapp/pdf_app.h"
#include "baseapp/slide_app.h"
#include "baseapp/spreadsheet_app.h"
#include "baseapp/text_app.h"
#include "baseapp/xml_app.h"
#include "doc/xml/parser.h"

namespace slim::baseapp {
namespace {

std::unique_ptr<doc::Workbook> MakeMedsBook() {
  auto wb = std::make_unique<doc::Workbook>("meds.book");
  doc::Worksheet* ws = wb->AddSheet("Meds").ValueOrDie();
  ws->SetValue({0, 0}, std::string("dopamine"));
  ws->SetValue({0, 1}, 5.0);
  ws->SetValue({1, 0}, std::string("heparin"));
  ws->SetValue({1, 1}, 12.0);
  return wb;
}

TEST(AppRegistryTest, RegisterAndFind) {
  AppRegistry registry;
  SpreadsheetApp excel;
  XmlApp xml;
  ASSERT_TRUE(registry.Register(&excel).ok());
  ASSERT_TRUE(registry.Register(&xml).ok());
  EXPECT_TRUE(registry.Register(&excel).IsAlreadyExists());
  EXPECT_TRUE(registry.Register(nullptr).IsInvalidArgument());
  EXPECT_EQ(*registry.Find("excel"), &excel);
  EXPECT_TRUE(registry.Find("word").status().IsNotFound());
  EXPECT_EQ(registry.Types(), (std::vector<std::string>{"excel", "xml"}));
}

TEST(SpreadsheetAppTest, SelectionCapturesAddressAndContent) {
  SpreadsheetApp app;
  ASSERT_TRUE(app.RegisterWorkbook(MakeMedsBook()).ok());
  EXPECT_TRUE(app.CurrentSelection().status().IsFailedPrecondition());
  ASSERT_TRUE(
      app.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 1}}).ok());
  Selection sel = *app.CurrentSelection();
  EXPECT_EQ(sel.file_name, "meds.book");
  EXPECT_EQ(sel.address, "Meds!A1:B1");
  EXPECT_EQ(sel.content, "dopamine\t5");
}

TEST(SpreadsheetAppTest, NavigateDrivesAppAndHighlights) {
  SpreadsheetApp app;
  ASSERT_TRUE(app.RegisterWorkbook(MakeMedsBook()).ok());
  ASSERT_TRUE(app.NavigateTo("meds.book", "Meds!A2:B2").ok());
  ASSERT_TRUE(app.last_navigation().has_value());
  EXPECT_EQ(app.last_navigation()->highlighted_content, "heparin\t12");
  // Navigation re-selects (the paper: resolve = open + activate + select).
  EXPECT_EQ(app.CurrentSelection()->address, "Meds!A2:B2");
}

TEST(SpreadsheetAppTest, NavigateErrors) {
  SpreadsheetApp app;
  ASSERT_TRUE(app.RegisterWorkbook(MakeMedsBook()).ok());
  EXPECT_TRUE(app.NavigateTo("meds.book", "NoSheet!A1").IsNotFound());
  EXPECT_TRUE(app.NavigateTo("meds.book", "garbage").IsParseError());
  EXPECT_TRUE(app.NavigateTo("missing.book", "Meds!A1").IsIoError());
}

TEST(SpreadsheetAppTest, ExtractContentDoesNotDisturbNavigation) {
  SpreadsheetApp app;
  ASSERT_TRUE(app.RegisterWorkbook(MakeMedsBook()).ok());
  EXPECT_EQ(*app.ExtractContent("meds.book", "Meds!A1"), "dopamine");
  EXPECT_FALSE(app.last_navigation().has_value());
}

TEST(SpreadsheetAppTest, OpenCloseLifecycle) {
  SpreadsheetApp app;
  ASSERT_TRUE(app.RegisterWorkbook(MakeMedsBook()).ok());
  EXPECT_TRUE(app.IsOpen("meds.book"));
  EXPECT_EQ(app.OpenDocuments(), (std::vector<std::string>{"meds.book"}));
  ASSERT_TRUE(app.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}})
                  .ok());
  ASSERT_TRUE(app.CloseDocument("meds.book").ok());
  EXPECT_FALSE(app.IsOpen("meds.book"));
  // Closing drops a selection into that document.
  EXPECT_TRUE(app.CurrentSelection().status().IsFailedPrecondition());
  EXPECT_TRUE(app.CloseDocument("meds.book").IsNotFound());
}

TEST(XmlAppTest, SelectElementCapturesCanonicalPath) {
  XmlApp app;
  auto doc = doc::xml::ParseXml(
                 "<labReport><panel><result>Na 140</result>"
                 "<result>K 4.1</result></panel></labReport>")
                 .ValueOrDie();
  doc::xml::Element* second =
      doc->root()->ChildElements("panel")[0]->ChildElements("result")[1];
  ASSERT_TRUE(app.RegisterDocument("lab.xml", std::move(doc)).ok());
  ASSERT_TRUE(app.SelectElement("lab.xml", second).ok());
  Selection sel = *app.CurrentSelection();
  EXPECT_EQ(sel.address, "/labReport[1]/panel[1]/result[2]");
  EXPECT_EQ(sel.content, "K 4.1");
}

TEST(XmlAppTest, NavigateHighlightsElement) {
  XmlApp app;
  ASSERT_TRUE(
      app.RegisterDocument(
             "lab.xml", doc::xml::ParseXml("<r><a>one</a><a>two</a></r>")
                            .ValueOrDie())
          .ok());
  ASSERT_TRUE(app.NavigateTo("lab.xml", "/r/a[2]").ok());
  EXPECT_EQ(app.last_navigation()->highlighted_content, "two");
  EXPECT_TRUE(app.NavigateTo("lab.xml", "/r/b").IsNotFound());
  EXPECT_TRUE(app.NavigateTo("lab.xml", "no-slash").IsParseError());
}

TEST(XmlAppTest, SelectPath) {
  XmlApp app;
  ASSERT_TRUE(app.RegisterDocument(
                     "d.xml",
                     doc::xml::ParseXml("<r><x>v</x></r>").ValueOrDie())
                  .ok());
  ASSERT_TRUE(app.SelectPath("d.xml", "/r/x").ok());
  EXPECT_EQ(app.CurrentSelection()->content, "v");
}

TEST(TextAppTest, SelectAndNavigateSpans) {
  TextApp app;
  auto doc = std::make_unique<doc::text::TextDocument>();
  doc->AddParagraph("To be or not to be, that is the question.");
  ASSERT_TRUE(app.RegisterDocument("hamlet.txt", std::move(doc)).ok());
  ASSERT_TRUE(app.Select("hamlet.txt", {0, 3, 8}).ok());
  EXPECT_EQ(app.CurrentSelection()->content, "be or");
  EXPECT_EQ(app.CurrentSelection()->address, "p0:3-8");
  ASSERT_TRUE(app.NavigateTo("hamlet.txt", "p0:20-24").ok());
  EXPECT_EQ(app.last_navigation()->highlighted_content, "that");
  EXPECT_TRUE(app.NavigateTo("hamlet.txt", "p9:0-1").IsOutOfRange());
}

TEST(SlideAppTest, AddressRoundTripAndNavigate) {
  SlideApp app;
  auto deck = std::make_unique<doc::slides::SlideDeck>("talk.deck");
  doc::slides::Slide* s = *deck->GetSlide(deck->AddSlide("Title slide"));
  ASSERT_TRUE(s->AddShape({"box1", doc::slides::ShapeKind::kTextBox, 0, 0,
                           100, 50, "Bundles in captivity", {}})
                  .ok());
  ASSERT_TRUE(app.RegisterDeck(std::move(deck)).ok());

  ASSERT_TRUE(app.Select("talk.deck", 0, "box1").ok());
  EXPECT_EQ(app.CurrentSelection()->address, "slide/0/shape/box1");
  EXPECT_EQ(app.CurrentSelection()->content, "Bundles in captivity");

  ASSERT_TRUE(app.NavigateTo("talk.deck", "slide/0").ok());
  EXPECT_NE(app.last_navigation()->highlighted_content.find("Title slide"),
            std::string::npos);
  EXPECT_TRUE(app.NavigateTo("talk.deck", "slide/5").IsOutOfRange());
  EXPECT_TRUE(app.NavigateTo("talk.deck", "slide/0/shape/zzz").IsNotFound());
  EXPECT_TRUE(app.NavigateTo("talk.deck", "bogus").IsParseError());
}

TEST(PdfAppTest, RegionSelectionAndNavigate) {
  PdfApp app;
  auto doc = doc::pdf::PdfDocument::BuildFromParagraphs(
      {"first paragraph of the guideline", "second paragraph"});
  doc->set_file_name("guide.pdf");
  doc::pdf::Rect first_box = doc->pages()[0].objects[0].box;
  ASSERT_TRUE(app.RegisterDocument(std::move(doc)).ok());

  ASSERT_TRUE(app.SelectRegion("guide.pdf", 0, first_box).ok());
  Selection sel = *app.CurrentSelection();
  EXPECT_NE(sel.content.find("first paragraph"), std::string::npos);

  ASSERT_TRUE(app.NavigateTo("guide.pdf", sel.address).ok());
  EXPECT_EQ(app.last_navigation()->highlighted_content, sel.content);
  EXPECT_TRUE(app.NavigateTo("guide.pdf", "page/9/rect/0,0,1,1")
                  .IsOutOfRange());
  EXPECT_TRUE(app.NavigateTo("guide.pdf", "nope").IsParseError());
}

TEST(HtmlAppTest, AddressingPreferenceOrder) {
  HtmlApp app;
  ASSERT_TRUE(app.RegisterPage(
                     "http://x/page",
                     "<body><div id=\"d1\">with id</div>"
                     "<a name=\"anchor1\">anchored</a><p>plain</p></body>")
                  .ok());
  doc::xml::Document* page = *app.GetPage("http://x/page");
  doc::xml::Element* with_id = doc::html::FindById(page, "d1");
  doc::xml::Element* anchor = doc::html::FindAnchor(page, "anchor1");
  std::vector<doc::xml::Element*> ps = doc::html::FindByTag(page, "p");
  ASSERT_NE(with_id, nullptr);
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(HtmlApp::AddressOf(with_id), "id:d1");
  EXPECT_EQ(HtmlApp::AddressOf(anchor), "anchor:anchor1");
  EXPECT_TRUE(HtmlApp::AddressOf(ps[0]).rfind("path:", 0) == 0);

  // All three address forms resolve.
  for (doc::xml::Element* e : {with_id, anchor, ps[0]}) {
    ASSERT_TRUE(app.NavigateTo("http://x/page", HtmlApp::AddressOf(e)).ok())
        << HtmlApp::AddressOf(e);
  }
  EXPECT_TRUE(app.NavigateTo("http://x/page", "id:zzz").IsNotFound());
  EXPECT_TRUE(app.NavigateTo("http://x/page", "anchor:zzz").IsNotFound());
  EXPECT_TRUE(app.NavigateTo("http://x/page", "what:ever").IsParseError());
}

TEST(HtmlAppTest, SelectElementAndExtract) {
  HtmlApp app;
  ASSERT_TRUE(
      app.RegisterPage("u", "<body><p id=\"p1\">hello world</p></body>")
          .ok());
  doc::xml::Element* p = doc::html::FindById(*app.GetPage("u"), "p1");
  ASSERT_TRUE(app.SelectElement("u", p).ok());
  EXPECT_EQ(app.CurrentSelection()->content, "hello world");
  EXPECT_EQ(*app.ExtractContent("u", "id:p1"), "hello world");
}

}  // namespace
}  // namespace slim::baseapp
