#include <gtest/gtest.h>

#include "doc/pdf/pdf_document.h"
#include "doc/slides/slide_deck.h"

namespace slim::doc {
namespace {

using slides::Shape;
using slides::ShapeKind;
using slides::Slide;
using slides::SlideDeck;

TEST(SlideDeckTest, AddSlidesAndShapes) {
  SlideDeck deck("talk.deck");
  int32_t s0 = deck.AddSlide("Intro");
  EXPECT_EQ(s0, 0);
  Slide* slide = *deck.GetSlide(s0);
  ASSERT_TRUE(slide->AddShape({"title", ShapeKind::kTextBox, 10, 10, 400, 60,
                               "Superimposed Information", {}})
                  .ok());
  ASSERT_TRUE(slide
                  ->AddShape({"points", ShapeKind::kBulletList, 10, 90, 400,
                              200, "", {"marks", "bundles", "scraps"}})
                  .ok());
  EXPECT_TRUE(slide->AddShape({"title", ShapeKind::kTextBox, 0, 0, 1, 1,
                               "dup", {}})
                  .IsAlreadyExists());
  EXPECT_TRUE(slide->AddShape({"", ShapeKind::kTextBox, 0, 0, 1, 1, "x", {}})
                  .IsInvalidArgument());
  EXPECT_EQ(slide->shapes().size(), 2u);
  EXPECT_EQ((*slide->FindShape("points"))->bullets.size(), 3u);
  EXPECT_TRUE(slide->FindShape("missing").status().IsNotFound());
}

TEST(SlideDeckTest, AllTextAndFind) {
  SlideDeck deck("d");
  Slide* s = *deck.GetSlide(deck.AddSlide("Bundles in the wild"));
  (void)s->AddShape(
      {"b1", ShapeKind::kTextBox, 0, 0, 1, 1, "flowsheet example", {}});
  deck.AddSlide("Architecture");
  auto hits = deck.FindText("flowsheet");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 0);
  EXPECT_EQ(hits[0].second, "b1");
  auto title_hits = deck.FindText("Architecture");
  ASSERT_EQ(title_hits.size(), 1u);
  EXPECT_EQ(title_hits[0].second, "");
  EXPECT_TRUE(deck.FindText("nothing").empty());
  EXPECT_NE(s->AllText().find("flowsheet example"), std::string::npos);
}

TEST(SlideDeckTest, GetSlideOutOfRange) {
  SlideDeck deck("d");
  EXPECT_TRUE(deck.GetSlide(0).status().IsOutOfRange());
  EXPECT_TRUE(deck.GetSlide(-1).status().IsOutOfRange());
}

TEST(SlideDeckTest, RemoveShape) {
  SlideDeck deck("d");
  Slide* s = *deck.GetSlide(deck.AddSlide("x"));
  (void)s->AddShape({"a", ShapeKind::kTextBox, 0, 0, 1, 1, "t", {}});
  ASSERT_TRUE(s->RemoveShape("a").ok());
  EXPECT_TRUE(s->RemoveShape("a").IsNotFound());
}

TEST(SlideDeckTest, SerializeDeserializeRoundTrip) {
  SlideDeck deck("rounds.deck");
  Slide* s = *deck.GetSlide(deck.AddSlide("Patient: John Smith"));
  (void)s->AddShape({"meds", ShapeKind::kBulletList, 5.5, 10, 300, 200,
                     "Medications with\nnewline",
                     {"dopamine 5 mg", "heparin drip"}});
  deck.AddSlide("Empty slide");
  std::string text = deck.Serialize();
  auto back = SlideDeck::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ((*back)->slide_count(), 2u);
  const Slide* s2 = *(*back)->GetSlide(0);
  EXPECT_EQ(s2->title(), "Patient: John Smith");
  const Shape* shape = *s2->FindShape("meds");
  EXPECT_EQ(shape->kind, ShapeKind::kBulletList);
  EXPECT_DOUBLE_EQ(shape->x, 5.5);
  EXPECT_EQ(shape->text, "Medications with\nnewline");
  EXPECT_EQ(shape->bullets,
            (std::vector<std::string>{"dopamine 5 mg", "heparin drip"}));
  EXPECT_EQ((*back)->Serialize(), text);
}

TEST(SlideDeckTest, DeserializeRejections) {
  EXPECT_FALSE(SlideDeck::Deserialize("nope").ok());
  EXPECT_FALSE(
      SlideDeck::Deserialize("SLIMDECK 1\nSHAPE a text 0 0 1 1 x").ok());
  EXPECT_FALSE(SlideDeck::Deserialize("SLIMDECK 1\nBULLET stray").ok());
  EXPECT_FALSE(SlideDeck::Deserialize("SLIMDECK 1\nGARBAGE").ok());
}

// ---------------------------------------------------------------------------
// PDF
// ---------------------------------------------------------------------------

using pdf::LayoutOptions;
using pdf::PdfDocument;
using pdf::Rect;

TEST(RectTest, ToStringParseRoundTrip) {
  Rect r{10.5, 20, 100, 14};
  auto back = Rect::Parse(r.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
  EXPECT_FALSE(Rect::Parse("1,2,3").ok());
  EXPECT_FALSE(Rect::Parse("1,2,3,x").ok());
  EXPECT_FALSE(Rect::Parse("1,2,-3,4").ok());
}

TEST(RectTest, Intersects) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.Intersects({5, 5, 10, 10}));
  EXPECT_FALSE(a.Intersects({10, 0, 5, 5}));  // touching edges don't overlap
  EXPECT_FALSE(a.Intersects({20, 20, 5, 5}));
  EXPECT_TRUE(a.Intersects({-5, -5, 100, 100}));  // containment
}

TEST(PdfLayoutTest, WrapsAndPaginates) {
  LayoutOptions opt;
  opt.page_height = 200;  // small pages force pagination
  opt.margin = 20;
  std::vector<std::string> paras;
  for (int i = 0; i < 10; ++i) {
    paras.push_back("paragraph " + std::to_string(i) +
                    " with enough words to wrap across several lines of the "
                    "simulated page layout engine");
  }
  auto doc = PdfDocument::BuildFromParagraphs(paras, opt);
  EXPECT_GT(doc->page_count(), 1u);
  // Every object lies within the page margins.
  for (const auto& page : doc->pages()) {
    for (const auto& obj : page.objects) {
      EXPECT_GE(obj.box.x, opt.margin - 1e-9);
      EXPECT_GE(obj.box.y, opt.margin - 1e-9);
      EXPECT_LE(obj.box.y + obj.box.height, opt.page_height - opt.margin + 1e-9);
    }
  }
}

TEST(PdfLayoutTest, HardBreaksLongWords) {
  LayoutOptions opt;
  std::string monster(500, 'x');
  auto doc = PdfDocument::BuildFromParagraphs({monster}, opt);
  size_t total = 0;
  for (const auto& page : doc->pages()) {
    for (const auto& obj : page.objects) total += obj.text.size();
  }
  EXPECT_EQ(total, 500u);
}

TEST(PdfDocumentTest, RegionQueries) {
  PdfDocument doc("t.pdf");
  int32_t p = doc.AddPage();
  ASSERT_TRUE(doc.AddTextObject(p, {{72, 72, 200, 14}, "first line", 10}).ok());
  ASSERT_TRUE(
      doc.AddTextObject(p, {{72, 100, 200, 14}, "second line", 10}).ok());
  auto objs = doc.ObjectsInRegion(p, Rect{0, 0, 612, 90});
  ASSERT_TRUE(objs.ok());
  ASSERT_EQ(objs->size(), 1u);
  EXPECT_EQ((*objs)[0]->text, "first line");
  EXPECT_EQ(*doc.ExtractRegionText(p, Rect{0, 0, 612, 792}),
            "first line\nsecond line");
  EXPECT_TRUE(doc.ObjectsInRegion(7, Rect{}).status().IsOutOfRange());
}

TEST(PdfDocumentTest, FindTextAndObjectBox) {
  auto doc = PdfDocument::BuildFromParagraphs(
      {"alpha beta gamma", "delta epsilon zeta"});
  auto hits = doc->FindText("epsilon");
  ASSERT_EQ(hits.size(), 1u);
  auto box = doc->ObjectBox(hits[0].first, hits[0].second);
  ASSERT_TRUE(box.ok());
  EXPECT_GT(box->width, 0);
  EXPECT_TRUE(doc->ObjectBox(0, 999).status().IsOutOfRange());
  EXPECT_TRUE(doc->FindText("nothinghere").empty());
}

TEST(PdfDocumentTest, SerializeDeserializeRoundTrip) {
  auto doc = PdfDocument::BuildFromParagraphs(
      {"guideline text body", "second paragraph with more words"});
  doc->set_file_name("guide.pdf");
  std::string text = doc->Serialize();
  auto back = PdfDocument::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ((*back)->page_count(), doc->page_count());
  EXPECT_EQ((*back)->Serialize(), text);
  // Region extraction behaves identically after the trip.
  Rect all{0, 0, 612, 792};
  EXPECT_EQ(*(*back)->ExtractRegionText(0, all), *doc->ExtractRegionText(0, all));
}

TEST(PdfDocumentTest, DeserializeRejections) {
  EXPECT_FALSE(PdfDocument::Deserialize("nope").ok());
  EXPECT_FALSE(
      PdfDocument::Deserialize("SLIMPDF 1\nTEXT 0,0,1,1 10 stray").ok());
  EXPECT_FALSE(PdfDocument::Deserialize("SLIMPDF 1\nPAGE x y").ok());
}

}  // namespace
}  // namespace slim::doc
