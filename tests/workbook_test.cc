#include <gtest/gtest.h>

#include <cstdio>

#include "doc/spreadsheet/csv.h"
#include "doc/spreadsheet/workbook.h"

namespace slim::doc {
namespace {

TEST(WorksheetTest, SetAndGetValue) {
  Worksheet ws("s");
  ws.SetValue({0, 0}, 5.0);
  const Cell* c = ws.GetCell({0, 0});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, CellValue(5.0));
  EXPECT_FALSE(c->has_formula());
  EXPECT_EQ(ws.GetCell({1, 1}), nullptr);
}

TEST(WorksheetTest, SetInputClassifies) {
  Worksheet ws("s");
  ASSERT_TRUE(ws.SetInput({0, 0}, "3.5").ok());
  EXPECT_EQ(ws.GetCell({0, 0})->value, CellValue(3.5));
  ASSERT_TRUE(ws.SetInput({0, 1}, "true").ok());
  EXPECT_EQ(ws.GetCell({0, 1})->value, CellValue(true));
  ASSERT_TRUE(ws.SetInput({0, 2}, "hello world").ok());
  EXPECT_EQ(ws.GetCell({0, 2})->value, CellValue(std::string("hello world")));
  ASSERT_TRUE(ws.SetInput({0, 3}, "=1+1").ok());
  EXPECT_TRUE(ws.GetCell({0, 3})->has_formula());
  ASSERT_TRUE(ws.SetInput({0, 0}, "  ").ok());  // blanks clear
  EXPECT_EQ(ws.GetCell({0, 0}), nullptr);
}

TEST(WorksheetTest, BadFormulaRejectedAndCellUntouched) {
  Worksheet ws("s");
  ws.SetValue({0, 0}, 1.0);
  EXPECT_FALSE(ws.SetFormula({0, 0}, "=1+").ok());
  EXPECT_EQ(ws.GetCell({0, 0})->value, CellValue(1.0));
  EXPECT_FALSE(ws.SetFormula({0, 0}, "no equals").ok());
}

TEST(WorksheetTest, UsedRange) {
  Worksheet ws("s");
  EXPECT_FALSE(ws.UsedRange().ok());
  ws.SetValue({3, 2}, 1.0);
  ws.SetValue({7, 5}, 1.0);
  ws.SetValue({5, 1}, 1.0);
  RangeRef used = *ws.UsedRange();
  EXPECT_EQ(used, (RangeRef{{3, 1}, {7, 5}}));
}

TEST(WorksheetTest, ClearAndVersion) {
  Worksheet ws("s");
  uint64_t v0 = ws.version();
  ws.SetValue({0, 0}, 1.0);
  EXPECT_GT(ws.version(), v0);
  uint64_t v1 = ws.version();
  ws.Clear({0, 0});
  EXPECT_GT(ws.version(), v1);
  EXPECT_EQ(ws.cell_count(), 0u);
  uint64_t v2 = ws.version();
  ws.Clear({0, 0});  // clearing a blank cell is a no-op
  EXPECT_EQ(ws.version(), v2);
}

TEST(WorkbookTest, SheetManagement) {
  Workbook wb("test.book");
  ASSERT_TRUE(wb.AddSheet("One").ok());
  ASSERT_TRUE(wb.AddSheet("Two").ok());
  EXPECT_TRUE(wb.AddSheet("One").status().IsAlreadyExists());
  EXPECT_TRUE(wb.AddSheet("").status().IsInvalidArgument());
  EXPECT_EQ(wb.sheet_count(), 2u);
  EXPECT_TRUE(wb.GetSheet("One").ok());
  EXPECT_TRUE(wb.GetSheet("Nope").status().IsNotFound());
  ASSERT_TRUE(wb.RemoveSheet("One").ok());
  EXPECT_TRUE(wb.GetSheet("One").status().IsNotFound());
  EXPECT_TRUE(wb.RemoveSheet("One").IsNotFound());
}

TEST(WorkbookTest, FormulaEvaluationWithDependencies) {
  Workbook wb;
  Worksheet* ws = *wb.AddSheet("S");
  ws->SetValue({0, 0}, 2.0);                       // A1
  ASSERT_TRUE(ws->SetFormula({0, 1}, "=A1*10").ok());   // B1
  ASSERT_TRUE(ws->SetFormula({0, 2}, "=B1+A1").ok());   // C1
  EXPECT_EQ(wb.Evaluate("S", {0, 2}), CellValue(22.0));
  // Mutation invalidates the memo cache.
  ws->SetValue({0, 0}, 3.0);
  EXPECT_EQ(wb.Evaluate("S", {0, 2}), CellValue(33.0));
}

TEST(WorkbookTest, CrossSheetReferences) {
  Workbook wb;
  Worksheet* a = *wb.AddSheet("A");
  Worksheet* b = *wb.AddSheet("B");
  a->SetValue({0, 0}, 7.0);
  ASSERT_TRUE(b->SetFormula({0, 0}, "=A!A1*2").ok());
  EXPECT_EQ(wb.Evaluate("B", {0, 0}), CellValue(14.0));
}

TEST(WorkbookTest, MissingSheetIsRefError) {
  Workbook wb;
  Worksheet* a = *wb.AddSheet("A");
  ASSERT_TRUE(a->SetFormula({0, 0}, "=Nope!A1").ok());
  EXPECT_EQ(wb.Evaluate("A", {0, 0}), CellValue(CellError::kRef));
  EXPECT_EQ(wb.Evaluate("Nope", {0, 0}), CellValue(CellError::kRef));
}

TEST(WorkbookTest, DirectCycleDetected) {
  Workbook wb;
  Worksheet* ws = *wb.AddSheet("S");
  ASSERT_TRUE(ws->SetFormula({0, 0}, "=A1+1").ok());
  EXPECT_EQ(wb.Evaluate("S", {0, 0}), CellValue(CellError::kCycle));
}

TEST(WorkbookTest, MutualCycleDetected) {
  Workbook wb;
  Worksheet* ws = *wb.AddSheet("S");
  ASSERT_TRUE(ws->SetFormula({0, 0}, "=B1+1").ok());
  ASSERT_TRUE(ws->SetFormula({0, 1}, "=A1+1").ok());
  CellValue v = wb.Evaluate("S", {0, 0});
  EXPECT_EQ(v, CellValue(CellError::kCycle));
}

TEST(WorkbookTest, RangeThroughFormula) {
  Workbook wb;
  Worksheet* ws = *wb.AddSheet("S");
  for (int i = 0; i < 5; ++i) ws->SetValue({i, 0}, double(i + 1));
  ASSERT_TRUE(ws->SetFormula({0, 1}, "=SUM(A1:A5)").ok());
  EXPECT_EQ(wb.Evaluate("S", {0, 1}), CellValue(15.0));
  // Formula chains through ranges recalc correctly.
  ws->SetValue({4, 0}, 50.0);
  EXPECT_EQ(wb.Evaluate("S", {0, 1}), CellValue(60.0));
}

TEST(WorkbookTest, DisplayText) {
  Workbook wb;
  Worksheet* ws = *wb.AddSheet("S");
  ws->SetValue({0, 0}, 2.5);
  ws->SetValue({0, 1}, std::string("txt"));
  ASSERT_TRUE(ws->SetFormula({0, 2}, "=1/0").ok());
  EXPECT_EQ(wb.DisplayText("S", {0, 0}), "2.5");
  EXPECT_EQ(wb.DisplayText("S", {0, 1}), "txt");
  EXPECT_EQ(wb.DisplayText("S", {0, 2}), "#DIV/0!");
  EXPECT_EQ(wb.DisplayText("S", {9, 9}), "");
}

TEST(WorkbookTest, SerializeDeserializeRoundTrip) {
  Workbook wb("medications.book");
  Worksheet* ws = *wb.AddSheet("Meds");
  ws->SetValue({0, 0}, std::string("Drug"));
  ws->SetValue({1, 0}, std::string("dopamine\twith\ttabs\nand newline"));
  ws->SetValue({1, 1}, 12.5);
  ws->SetValue({1, 2}, true);
  ASSERT_TRUE(ws->SetFormula({2, 1}, "=B2*2").ok());
  Worksheet* other = *wb.AddSheet("Other Sheet");
  other->SetValue({0, 0}, std::string("x"));

  std::string text = wb.Serialize();
  auto loaded = Workbook::Deserialize(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Workbook& wb2 = **loaded;
  EXPECT_EQ(wb2.file_name(), "medications.book");
  EXPECT_EQ(wb2.sheet_count(), 2u);
  EXPECT_EQ(wb2.Evaluate("Meds", {1, 0}),
            CellValue(std::string("dopamine\twith\ttabs\nand newline")));
  EXPECT_EQ(wb2.Evaluate("Meds", {1, 1}), CellValue(12.5));
  EXPECT_EQ(wb2.Evaluate("Meds", {1, 2}), CellValue(true));
  EXPECT_EQ(wb2.Evaluate("Meds", {2, 1}), CellValue(25.0));
  // Second round trip is identical text (canonical form).
  EXPECT_EQ(wb2.Serialize(), text);
}

TEST(WorkbookTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Workbook::Deserialize("not a workbook").ok());
  EXPECT_FALSE(Workbook::Deserialize("SLIMBOOK 1\nCELL A1 N 5").ok());
  EXPECT_FALSE(
      Workbook::Deserialize("SLIMBOOK 1\nSHEET S\nCELL A1 Q huh").ok());
  EXPECT_FALSE(Workbook::Deserialize("SLIMBOOK 1\nWHAT").ok());
}

TEST(WorkbookTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/wb_roundtrip.book";
  Workbook wb("disk.book");
  Worksheet* ws = *wb.AddSheet("S");
  ws->SetValue({0, 0}, 1.0);
  ASSERT_TRUE(wb.SaveToFile(path).ok());
  auto loaded = Workbook::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->Evaluate("S", {0, 0}), CellValue(1.0));
  std::remove(path.c_str());
  EXPECT_TRUE(Workbook::LoadFromFile(path).status().IsIoError());
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, BasicRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, QuotedFields) {
  auto rows = ParseCsv("\"a,b\",\"line\nbreak\",\"quo\"\"te\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "line\nbreak");
  EXPECT_EQ((*rows)[0][2], "quo\"te");
}

TEST(CsvTest, CrLfAndMissingTrailingNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("\"open").ok());
}

TEST(CsvTest, EmptyInputIsNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvTest, WriteQuotesWhenNeeded) {
  std::string out = WriteCsv({{"plain", "with,comma", "with\"quote"}});
  EXPECT_EQ(out, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, WriteParseRoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "b,c", "d\ne"}, {"", "\"", "normal"}, {"1.5", "true", ""}};
  auto back = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
}

TEST(CsvTest, ImportTypesValues) {
  Worksheet ws("s");
  ASSERT_TRUE(ImportCsv("name,dose\ndopamine,5.5\nactive,TRUE\n", &ws).ok());
  EXPECT_EQ(ws.GetCell({0, 0})->value, CellValue(std::string("name")));
  EXPECT_EQ(ws.GetCell({1, 1})->value, CellValue(5.5));
  EXPECT_EQ(ws.GetCell({2, 1})->value, CellValue(true));
}

TEST(CsvTest, ImportNeverEvaluatesFormulas) {
  Worksheet ws("s");
  ASSERT_TRUE(ImportCsv("=1+1\n", &ws).ok());
  EXPECT_EQ(ws.GetCell({0, 0})->value, CellValue(std::string("=1+1")));
  EXPECT_FALSE(ws.GetCell({0, 0})->has_formula());
}

TEST(CsvTest, ExportUsesUsedRange) {
  Worksheet ws("s");
  ws.SetValue({1, 1}, std::string("x"));
  ws.SetValue({2, 2}, 5.0);
  std::string out = ExportCsv(ws);
  EXPECT_EQ(out, "x,\n,5\n");
}

}  // namespace
}  // namespace slim::doc
