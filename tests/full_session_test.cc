#include <gtest/gtest.h>

#include "workload/session.h"

namespace slim::workload {
namespace {

class FullSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IcuOptions options;
    options.patients = 3;
    options.seed = 777;
    ASSERT_TRUE(session_.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
    ASSERT_TRUE(session_.BuildFullRoundsPad().ok());
  }
  Session session_;
};

TEST_F(FullSessionTest, EveryBaseTypeOnOnePad) {
  // Collect the mark types present on the pad (paper Fig. 1: one layer,
  // heterogeneous sources).
  std::set<std::string> types;
  for (const pad::Scrap* scrap : session_.app().dmi().Scraps()) {
    for (const std::string& hid : scrap->mark_handles()) {
      const pad::MarkHandle* h = *session_.app().dmi().GetMarkHandle(hid);
      const mark::Mark* m = *session_.marks().GetMark(h->mark_id());
      types.insert(std::string(m->type()));
    }
  }
  EXPECT_EQ(types, (std::set<std::string>{"excel", "xml", "text", "pdf",
                                          "html"}));
}

TEST_F(FullSessionTest, AllScrapsResolveIncludingNewTypes) {
  auto opened = session_.OpenAllScraps();
  ASSERT_TRUE(opened.ok()) << opened.status();
  // meds + electrolytes + 3 notes + guideline + protocol.
  size_t expected = 0;
  for (const Patient& p : session_.icu().patients) {
    expected += static_cast<size_t>(p.med_count) +
                ElectrolyteAnalytes().size();
  }
  expected += 3 /*notes*/ + 1 /*pdf*/ + 1 /*html*/;
  EXPECT_EQ(*opened, expected);

  // The text navigation landed in the right note.
  ASSERT_TRUE(session_.text().last_navigation().has_value());
  EXPECT_NE(session_.text().last_navigation()->file_name.find("notes/"),
            std::string::npos);
}

TEST_F(FullSessionTest, DeclarativeQueriesOverThePad) {
  // Every patient has a 'Problems' scrap.
  auto problems = session_.app().FindScrapsNamed("Problems");
  ASSERT_TRUE(problems.ok()) << problems.status();
  EXPECT_EQ(problems->size(), 3u);

  // Multi-hop: bundles holding a gridlet are the Electrolyte bundles.
  auto rows = session_.app().QueryPad(
      "?b bundleContent ?s . ?s scrapName \"gridlet\" . ?b bundleName ?n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);
  for (const store::Binding& row : *rows) {
    EXPECT_EQ(row.at("n").text, "Electrolyte");
  }
}

TEST_F(FullSessionTest, AuditDetectsBaseLayerDrift) {
  // Fresh pad: everything valid.
  mark::ValidationReport before = session_.app().AuditMarks();
  EXPECT_TRUE(before.all_valid()) << before.ToString();
  EXPECT_EQ(before.audits.size(), session_.marks().size());

  // A nurse corrects a dose in the live medication list.
  doc::Workbook* wb = *session_.excel().GetWorkbook("meds.book");
  doc::Worksheet* meds = *wb->GetSheet("Medications");
  int row = session_.icu().patients[0].med_row_begin;
  meds->SetValue({row, 2}, std::string("999 mg"));

  mark::ValidationReport after = session_.app().AuditMarks();
  EXPECT_FALSE(after.all_valid());
  EXPECT_EQ(after.changed, 1u);
  EXPECT_EQ(after.dangling, 0u);
  EXPECT_NE(after.ToString().find("999 mg"), std::string::npos);

  // A whole document disappears: its marks dangle.
  ASSERT_TRUE(session_.xml().CloseDocument(session_.icu().lab_file(0)).ok());
  mark::ValidationReport gone = session_.app().AuditMarks();
  EXPECT_EQ(gone.dangling, ElectrolyteAnalytes().size());
}

TEST_F(FullSessionTest, FullPadSurvivesHandoff) {
  std::string path = ::testing::TempDir() + "/full_handoff.xml";
  ASSERT_TRUE(session_.app().SavePad(path).ok());

  Session doctor2;
  IcuOptions options;
  options.patients = 3;
  options.seed = 777;
  ASSERT_TRUE(doctor2.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
  ASSERT_TRUE(doctor2.app().LoadPad(path).ok());
  auto opened = doctor2.OpenAllScraps();
  ASSERT_TRUE(opened.ok()) << opened.status();
  // Everything, including text/pdf/html marks, resolves after reload.
  auto original = session_.OpenAllScraps();
  EXPECT_EQ(*opened, *original);
  // Queries work identically on the reloaded pad.
  auto problems = doctor2.app().FindScrapsNamed("Problems");
  ASSERT_TRUE(problems.ok());
  EXPECT_EQ(problems->size(), 3u);
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
}

}  // namespace
}  // namespace slim::workload
