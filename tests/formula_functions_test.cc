#include <gtest/gtest.h>

#include "doc/spreadsheet/workbook.h"

namespace slim::doc {
namespace {

// These tests run through a real Workbook (rather than a fake resolver) so
// lookup functions see genuine range resolution and recalculation.
class FunctionLibraryTest : public ::testing::Test {
 protected:
  FunctionLibraryTest() {
    ws_ = *wb_.AddSheet("S");
    // A little medication table in A1:C4.
    ws_->SetValue({0, 0}, std::string("dopamine"));
    ws_->SetValue({0, 1}, 5.0);
    ws_->SetValue({0, 2}, std::string("IV"));
    ws_->SetValue({1, 0}, std::string("heparin"));
    ws_->SetValue({1, 1}, 1200.0);
    ws_->SetValue({1, 2}, std::string("IV"));
    ws_->SetValue({2, 0}, std::string("insulin"));
    ws_->SetValue({2, 1}, 10.0);
    ws_->SetValue({2, 2}, std::string("SC"));
    ws_->SetValue({3, 0}, std::string("warfarin"));
    ws_->SetValue({3, 1}, 5.0);
    ws_->SetValue({3, 2}, std::string("PO"));
  }

  CellValue Eval(const std::string& formula) {
    EXPECT_TRUE(ws_->SetFormula({9, 9}, "=" + formula).ok()) << formula;
    return wb_.Evaluate("S", {9, 9});
  }

  Workbook wb_;
  Worksheet* ws_;
};

TEST_F(FunctionLibraryTest, Vlookup) {
  EXPECT_EQ(Eval("VLOOKUP(\"heparin\", A1:C4, 2)"), CellValue(1200.0));
  EXPECT_EQ(Eval("VLOOKUP(\"insulin\", A1:C4, 3)"),
            CellValue(std::string("SC")));
  // Case-insensitive key match (spreadsheet text semantics).
  EXPECT_EQ(Eval("VLOOKUP(\"HEPARIN\", A1:C4, 2)"), CellValue(1200.0));
  // Miss and bad column.
  EXPECT_EQ(Eval("VLOOKUP(\"morphine\", A1:C4, 2)"),
            CellValue(CellError::kValue));
  EXPECT_EQ(Eval("VLOOKUP(\"heparin\", A1:C4, 9)"),
            CellValue(CellError::kRef));
  // Range argument must be a range.
  EXPECT_EQ(Eval("VLOOKUP(\"heparin\", 5, 2)"), CellValue(CellError::kValue));
}

TEST_F(FunctionLibraryTest, IndexAndMatch) {
  EXPECT_EQ(Eval("INDEX(A1:C4, 2, 1)"), CellValue(std::string("heparin")));
  EXPECT_EQ(Eval("INDEX(A1:C4, 3, 2)"), CellValue(10.0));
  EXPECT_EQ(Eval("INDEX(A1:A4, 4)"), CellValue(std::string("warfarin")));
  EXPECT_EQ(Eval("INDEX(A1:C4, 5, 1)"), CellValue(CellError::kRef));
  EXPECT_EQ(Eval("INDEX(A1:C4, 0, 1)"), CellValue(CellError::kRef));

  EXPECT_EQ(Eval("MATCH(\"insulin\", A1:A4)"), CellValue(3.0));
  EXPECT_EQ(Eval("MATCH(1200, B1:B4)"), CellValue(2.0));
  EXPECT_EQ(Eval("MATCH(\"none\", A1:A4)"), CellValue(CellError::kValue));

  // The classic INDEX(MATCH()) composition.
  EXPECT_EQ(Eval("INDEX(B1:B4, MATCH(\"warfarin\", A1:A4))"),
            CellValue(5.0));
}

TEST_F(FunctionLibraryTest, SumifCountif) {
  // Criterion as plain value: sum doses of 5-mg meds.
  EXPECT_EQ(Eval("SUMIF(B1:B4, 5)"), CellValue(10.0));
  EXPECT_EQ(Eval("COUNTIF(B1:B4, 5)"), CellValue(2.0));
  // Text criterion.
  EXPECT_EQ(Eval("COUNTIF(C1:C4, \"IV\")"), CellValue(2.0));
  // Comparison criteria.
  EXPECT_EQ(Eval("COUNTIF(B1:B4, \">=10\")"), CellValue(2.0));
  EXPECT_EQ(Eval("SUMIF(B1:B4, \"<100\")"), CellValue(20.0));
  EXPECT_EQ(Eval("COUNTIF(B1:B4, \"<>5\")"), CellValue(2.0));
  // Separate sum range: total dose of IV meds.
  EXPECT_EQ(Eval("SUMIF(C1:C4, \"IV\", B1:B4)"), CellValue(1205.0));
  // Mismatched shapes.
  EXPECT_EQ(Eval("SUMIF(C1:C4, \"IV\", B1:B2)"), CellValue(CellError::kValue));
}

TEST_F(FunctionLibraryTest, TextFunctions) {
  EXPECT_EQ(Eval("LEFT(\"dopamine\", 4)"), CellValue(std::string("dopa")));
  EXPECT_EQ(Eval("LEFT(\"abc\")"), CellValue(std::string("a")));
  EXPECT_EQ(Eval("RIGHT(\"dopamine\", 5)"), CellValue(std::string("amine")));
  EXPECT_EQ(Eval("LEFT(\"abc\", 99)"), CellValue(std::string("abc")));
  EXPECT_EQ(Eval("LEFT(\"abc\", -1)"), CellValue(CellError::kValue));

  EXPECT_EQ(Eval("FIND(\"pa\", \"dopamine\")"), CellValue(3.0));
  EXPECT_EQ(Eval("FIND(\"a\", \"banana\", 3)"), CellValue(4.0));
  EXPECT_EQ(Eval("FIND(\"z\", \"banana\")"), CellValue(CellError::kValue));

  EXPECT_EQ(Eval("SUBSTITUTE(\"a-b-c\", \"-\", \"+\")"),
            CellValue(std::string("a+b+c")));
  EXPECT_EQ(Eval("TRIM(\"  two   words  \")"),
            CellValue(std::string("two words")));
}

TEST_F(FunctionLibraryTest, LookupRecalculatesOnEdit) {
  ASSERT_TRUE(ws_->SetFormula({5, 5}, "=VLOOKUP(\"heparin\", A1:C4, 2)").ok());
  EXPECT_EQ(wb_.Evaluate("S", {5, 5}), CellValue(1200.0));
  ws_->SetValue({1, 1}, 1500.0);
  EXPECT_EQ(wb_.Evaluate("S", {5, 5}), CellValue(1500.0));
}

TEST_F(FunctionLibraryTest, LookupAcrossSheets) {
  Worksheet* other = *wb_.AddSheet("Doses");
  other->SetValue({0, 0}, std::string("heparin"));
  other->SetValue({0, 1}, 999.0);
  ASSERT_TRUE(
      ws_->SetFormula({6, 6}, "=VLOOKUP(\"heparin\", Doses!A1:B1, 2)").ok());
  EXPECT_EQ(wb_.Evaluate("S", {6, 6}), CellValue(999.0));
}

TEST_F(FunctionLibraryTest, ErrorsPropagateThroughLookups) {
  ASSERT_TRUE(ws_->SetFormula({7, 0}, "=1/0").ok());  // A8 is #DIV/0!
  EXPECT_EQ(Eval("MATCH(\"x\", A7:A8)"), CellValue(CellError::kDivZero));
  EXPECT_EQ(Eval("SUMIF(A7:A8, \"x\")"), CellValue(CellError::kDivZero));
}

}  // namespace
}  // namespace slim::doc
