// Sampling-profiler suite (obs/cpu_profiler.h + the tracer's SpanStack):
// interning round-trips, nested-stack snapshots, the signal-safe
// publish/read path under hammer, multi-thread sample attribution with
// known span mixes, start/stop/restart accounting, both export shapes,
// the flight-recorder cpu_profile section, live /profile endpoints over a
// real socket, and a watchdog stall trip embedding a capture.
//
// Like obs_test.cc, everything here is library-level and must pass under
// both SLIM_ENABLE_OBS settings — tests call Tracer/CpuProfiler directly
// rather than through the compiled-out macros. This suite (ObsCpuProf.*)
// is run by name under TSan in CI: the SpanStack push/pop/snapshot
// protocol and the sampler thread walking live workers' stacks are the
// newest lock-free surfaces in the tree.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/cpu_profiler.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace slim::obs {
namespace {

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port (same shape as
// obs_diag_test.cc).
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ---------------------------------------------------------------------------
// Name interning and the SpanStack itself
// ---------------------------------------------------------------------------

TEST(ObsCpuProf, SpanNameInterningRoundTrips) {
  Tracer tracer;
  const uint32_t a = tracer.InternSpanName("cpuprof.intern.a");
  const uint32_t b = tracer.InternSpanName("cpuprof.intern.b");
  EXPECT_NE(a, 0u);  // id 0 is reserved for "no frame"
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.InternSpanName("cpuprof.intern.a"), a);

  const std::vector<std::string> names = tracer.SpanNameTable();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[a - 1], "cpuprof.intern.a");  // ids are 1-based and dense
  EXPECT_EQ(names[b - 1], "cpuprof.intern.b");
}

TEST(ObsCpuProf, NestedSpansPublishTheStackOutermostFirst) {
  Tracer tracer;
  tracer.set_stack_tracking(true);
  const uint32_t outer_id = tracer.InternSpanName("cpuprof.nest.outer");
  const uint32_t mid_id = tracer.InternSpanName("cpuprof.nest.mid");
  const uint32_t inner_id = tracer.InternSpanName("cpuprof.nest.inner");

  uint32_t frames[SpanStack::kMaxDepth];
  {
    Span outer = tracer.StartSpan("cpuprof.nest.outer");
    Span mid = tracer.StartSpan("cpuprof.nest.mid");
    {
      Span inner = tracer.StartSpan("cpuprof.nest.inner");
      const std::vector<const SpanStack*> stacks = tracer.StackRegistry();
      ASSERT_EQ(stacks.size(), 1u);  // only this thread traced
      const uint32_t n = stacks[0]->Snapshot(frames);
      ASSERT_EQ(n, 3u);
      EXPECT_EQ(frames[0], outer_id);
      EXPECT_EQ(frames[1], mid_id);
      EXPECT_EQ(frames[2], inner_id);
    }
    // inner ended: depth must be back to 2, same prefix.
    const std::vector<const SpanStack*> stacks = tracer.StackRegistry();
    ASSERT_EQ(stacks.size(), 1u);
    const uint32_t n = stacks[0]->Snapshot(frames);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(frames[0], outer_id);
    EXPECT_EQ(frames[1], mid_id);
  }
  // All spans ended: the stack is empty, not stale.
  const std::vector<const SpanStack*> stacks = tracer.StackRegistry();
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0]->Snapshot(frames), 0u);
  tracer.set_stack_tracking(false);
}

TEST(ObsCpuProf, StackTrackingOffPublishesNothing) {
  Tracer tracer;
  Span span = tracer.StartSpan("cpuprof.off.span");
  EXPECT_TRUE(tracer.StackRegistry().empty());
  span.End();
}

// The signal-safety contract, hammered from the reader side: writer
// threads churn nested spans (publishing frames and republishing the
// thread-local signal ref) while readers snapshot every registered stack
// as fast as they can. Every id a snapshot returns must be a valid,
// interned span name — a torn read, stale frame past the depth, or
// out-of-thin-air value fails loudly. Run under TSan in CI.
TEST(ObsCpuProf, SnapshotPublishReadHammer) {
  Tracer tracer;
  tracer.set_stack_tracking(true);
  constexpr int kWriters = 3;
  constexpr int kIterations = 4000;
  // Writers churn past their iteration floor until the reader has taken
  // this many snapshots — on a loaded machine the reader thread may not
  // be scheduled at all inside a fixed writer run. The ceiling keeps a
  // wedged reader from spinning forever (the assertion then fails loudly).
  constexpr uint64_t kMinSnapshots = 64;
  constexpr int kMaxIterations = 10'000'000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots{0};
  std::atomic<bool> bad_id{false};

  std::thread reader([&] {
    uint32_t frames[SpanStack::kMaxDepth];
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<const SpanStack*> stacks = tracer.StackRegistry();
      // The name table only grows; fetching it before the snapshot still
      // bounds every id a *previously registered* frame can carry.
      const size_t names = tracer.SpanNameTable().size();
      for (const SpanStack* stack : stacks) {
        const uint32_t n = stack->Snapshot(frames);
        for (uint32_t i = 0; i < n; ++i) {
          if (frames[i] == 0 || frames[i] > names) {
            bad_id.store(true, std::memory_order_relaxed);
          }
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, &snapshots, w] {
      const std::string outer = "cpuprof.hammer.w" + std::to_string(w);
      for (int i = 0; i < kMaxIterations; ++i) {
        if (i >= kIterations &&
            snapshots.load(std::memory_order_relaxed) >= kMinSnapshots) {
          break;
        }
        Span a = tracer.StartSpan(outer);
        Span b = tracer.StartSpan("cpuprof.hammer.mid");
        Span c = tracer.StartSpan("cpuprof.hammer.leaf");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(bad_id.load());
  EXPECT_GT(snapshots.load(), 0u);
  tracer.set_stack_tracking(false);
}

// ---------------------------------------------------------------------------
// Sampling and aggregation
// ---------------------------------------------------------------------------

// N workers hold known span mixes while the ticker samples: every sampled
// path must come from the known mix (attribution is exact even though the
// counts are statistical), both workers must be seen, and neither may
// swallow the other (loose 5%-95% share bounds that hold at any sane
// scheduler interleaving).
TEST(ObsCpuProf, TickerAttributesKnownSpanMixes) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;  // prime and fast: plenty of samples in 300ms
  CpuProfiler profiler(&registry, &tracer, options);
  ASSERT_TRUE(profiler.Start());

  std::atomic<bool> stop{false};
  std::thread alpha([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Span span = tracer.StartSpan("cpuprof.mix.alpha");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread beta([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Span outer = tracer.StartSpan("cpuprof.mix.outer");
      Span inner = tracer.StartSpan("cpuprof.mix.beta");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Sample until both workers have been attributed (bounded wait keeps the
  // test deterministic-in-outcome on loaded machines).
  CpuProfile profile;
  for (int tries = 0; tries < 50; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    profile = profiler.Snapshot();
    if (profile.CountWithPrefix("cpuprof.mix.alpha") > 10 &&
        profile.CountWithPrefix("cpuprof.mix.outer;cpuprof.mix.beta") > 10) {
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  alpha.join();
  beta.join();
  profiler.Stop();

  const uint64_t alpha_hits = profile.CountWithPrefix("cpuprof.mix.alpha");
  const uint64_t beta_hits =
      profile.CountWithPrefix("cpuprof.mix.outer;cpuprof.mix.beta");
  ASSERT_GT(alpha_hits, 10u);
  ASSERT_GT(beta_hits, 10u);
  // Attribution exactness: every sampled path starts with a known root.
  uint64_t known = 0;
  for (const CpuProfile::StackCount& stack : profile.stacks) {
    known += stack.count;
  }
  EXPECT_EQ(known, profile.samples);
  EXPECT_EQ(alpha_hits + profile.CountWithPrefix("cpuprof.mix.outer"),
            profile.samples);
  // Neither worker dominates completely: both loops sleep the same 200us,
  // so a 19:1 skew means samples were lost or double-counted.
  const double share = static_cast<double>(alpha_hits) /
                       static_cast<double>(alpha_hits + beta_hits);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.95);
}

// Start/stop/restart: aggregates survive a restart (cumulative), the
// second run keeps sampling the same worker threads (no thread is lost),
// and stopping twice is a no-op (nothing double-counts).
TEST(ObsCpuProf, RestartNeverLosesOrDoubleCountsThreads) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, options);

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Span span = tracer.StartSpan("cpuprof.restart.work");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  ASSERT_TRUE(profiler.Start());
  uint64_t first = 0;
  for (int tries = 0; tries < 100 && first == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    first = profiler.Snapshot().CountWithPrefix("cpuprof.restart.work");
  }
  ASSERT_GT(first, 0u);
  profiler.Stop();
  profiler.Stop();  // idempotent
  const uint64_t at_stop = profiler.samples();

  // Stopped: the worker keeps running but no samples accumulate.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(profiler.samples(), at_stop);

  // Restart: the same worker thread is picked up again without re-tracing.
  ASSERT_TRUE(profiler.Start());
  uint64_t second = at_stop;
  for (int tries = 0; tries < 100 && second <= at_stop; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    second = profiler.samples();
  }
  EXPECT_GT(second, at_stop);
  profiler.Stop();

  stop.store(true, std::memory_order_release);
  worker.join();
}

TEST(ObsCpuProf, CaptureWindowReturnsOnlyTheWindow) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, options);

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Span span = tracer.StartSpan("cpuprof.window.work");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // A stopped profiler runs just for the window and stops again.
  CpuProfile window = profiler.CaptureWindow(150);
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(window.duration_ms, 150u);
  EXPECT_GT(window.CountWithPrefix("cpuprof.window.work"), 0u);

  // A running profiler is undisturbed by a window capture.
  ASSERT_TRUE(profiler.Start());
  CpuProfile second = profiler.CaptureWindow(100);
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(second.duration_ms, 100u);
  profiler.Stop();

  stop.store(true, std::memory_order_release);
  worker.join();

  // The window is a delta: far fewer samples than the cumulative total.
  EXPECT_LE(second.samples, profiler.Snapshot().samples);
  EXPECT_EQ(registry.GetCounter("obs.cpuprof.captures")->value(), 2u);
}

TEST(ObsCpuProf, MetricsReflectSamplerActivity) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, options);
  ASSERT_TRUE(profiler.Start());
  EXPECT_EQ(registry.GetGauge("obs.cpuprof.running")->value(), 1);
  EXPECT_EQ(registry.GetGauge("obs.cpuprof.sample_hz")->value(), 997);
  {
    Span span = tracer.StartSpan("cpuprof.metrics.span");
    uint64_t seen = 0;
    for (int tries = 0; tries < 100 && seen == 0; ++tries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      seen = registry.GetCounter("obs.cpuprof.samples")->value();
    }
    EXPECT_GT(seen, 0u);
  }
  profiler.Stop();
  EXPECT_EQ(registry.GetGauge("obs.cpuprof.running")->value(), 0);
  EXPECT_GT(registry.GetCounter("obs.cpuprof.ticks")->value(), 0u);
}

// ---------------------------------------------------------------------------
// Export shapes
// ---------------------------------------------------------------------------

// A deterministic profile: one worker holds a fixed nest, sample, then
// check both export shapes carry the collapsed path.
TEST(ObsCpuProf, ExportsCollapsedTextAndSpeedscopeJson) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, options);
  ASSERT_TRUE(profiler.Start());

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Span outer = tracer.StartSpan("cpuprof.export.outer");
    Span inner = tracer.StartSpan("cpuprof.export.inner");
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  CpuProfile profile;
  for (int tries = 0; tries < 100; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    profile = profiler.Snapshot();
    if (profile.CountWithPrefix("cpuprof.export.outer;cpuprof.export.inner") >
        0) {
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  profiler.Stop();

  const std::string collapsed = profile.ToCollapsed();
  EXPECT_NE(collapsed.find("cpuprof.export.outer;cpuprof.export.inner "),
            std::string::npos);

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"schema\":\"slim-cpuprofile-v1\""),
            std::string::npos);
  EXPECT_NE(
      json.find(
          "\"$schema\":\"https://www.speedscope.app/file-format-schema.json\""),
      std::string::npos);
  EXPECT_NE(json.find("\"shared\":{\"frames\":["), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(json.find("\"weights\":["), std::string::npos);
  EXPECT_NE(json.find("cpuprof.export.inner"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one-line document
}

// ---------------------------------------------------------------------------
// Flight-recorder integration: both bundle shapes stay valid JSON
// ---------------------------------------------------------------------------

TEST(ObsCpuProf, BundleCarriesNullWithoutAProfileAndObjectWithOne) {
  FlightRecorder recorder(8, 8);

  // Shape 1: no capture stored — the section renders as an explicit null.
  std::string bundle = recorder.RenderBundle();
  EXPECT_NE(bundle.find("\"cpu_profile\":null"), std::string::npos);

  // Shape 2: a stored capture embeds verbatim as an object.
  CpuProfile profile;
  profile.mode = "ticker";
  profile.sample_hz = 99;
  recorder.SetCpuProfile(profile.ToJson());
  bundle = recorder.RenderBundle();
  EXPECT_EQ(bundle.find("\"cpu_profile\":null"), std::string::npos);
  EXPECT_NE(bundle.find("\"cpu_profile\":{\"schema\":\"slim-cpuprofile-v1\""),
            std::string::npos);

  // Clearing with an empty string restores the null shape.
  recorder.SetCpuProfile("");
  bundle = recorder.RenderBundle();
  EXPECT_NE(bundle.find("\"cpu_profile\":null"), std::string::npos);
}

// ---------------------------------------------------------------------------
// StatsServer: the live /profile endpoints over a real socket
// ---------------------------------------------------------------------------

TEST(ObsCpuProf, ProfileEndpointsServeUnderLiveLoad) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, options);
  ASSERT_TRUE(profiler.Start());

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Span span = tracer.StartSpan("cpuprof.http.work");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  StatsServer server(&registry, /*port=*/0);
  server.set_cpu_profiler(&profiler);
  ASSERT_TRUE(server.Start().ok());

  // Let the cumulative aggregate fill before scraping it.
  for (int tries = 0; tries < 100; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (profiler.Snapshot().CountWithPrefix("cpuprof.http.work") > 0) break;
  }

  // The JSON endpoint captures a fresh 1s window under live load.
  std::string response = HttpGet(server.port(), "/profile/cpu?seconds=1");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"schema\":\"slim-cpuprofile-v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"duration_ms\":1000"), std::string::npos);
  EXPECT_NE(body.find("cpuprof.http.work"), std::string::npos);

  // The collapsed endpoint defaults to the cumulative aggregate (instant).
  response = HttpGet(server.port(), "/profile/cpu.collapsed");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(Body(response).find("cpuprof.http.work "), std::string::npos);

  server.Stop();
  stop.store(true, std::memory_order_release);
  worker.join();
  profiler.Stop();
}

TEST(ObsCpuProf, ProfileEndpointWithoutProfilerIs404) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  std::string response = HttpGet(server.port(), "/profile/cpu");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Watchdog: a stall trip embeds a capture in the flight bundle
// ---------------------------------------------------------------------------

TEST(ObsCpuProf, WatchdogStallTripEmbedsACpuProfile) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions prof_options;
  prof_options.sample_hz = 997;
  CpuProfiler profiler(&registry, &tracer, prof_options);

  WatchdogOptions dog_options;
  dog_options.trip_profile_ms = 100;
  Watchdog dog(&registry, &tracer, dog_options);
  dog.set_cpu_profiler(&profiler);
  dog.SetSpanDeadline("cpuprof.stall.me", 10);
  dog.Arm();

  // The profiler must be sampling before the stalled span starts: frames
  // are pushed at StartSpan time.
  ASSERT_TRUE(profiler.Start());
  DefaultFlightRecorder().SetCpuProfile("");  // start from the null shape

  std::atomic<bool> stop{false};
  std::thread stalled([&] {
    Span span = tracer.StartSpan("cpuprof.stall.me");
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Wait until the span is live in the deadline-filtered registry.
  for (int tries = 0; tries < 100 && tracer.ActiveSpans().empty(); ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(tracer.ActiveSpans().empty());

  // Far past the 10ms deadline on the tracer's clock: a guaranteed stall.
  const uint64_t far_future =
      tracer.ActiveSpans().front().start_ns + 3'600'000'000'000ull;
  EXPECT_GE(dog.CheckSpansAt(far_future), 1u);

  // The fresh trip captured a 100ms window into the default recorder.
  const std::string bundle = DefaultFlightRecorder().RenderBundle();
  EXPECT_EQ(bundle.find("\"cpu_profile\":null"), std::string::npos);
  EXPECT_NE(bundle.find("\"cpu_profile\":{\"schema\":\"slim-cpuprofile-v1\""),
            std::string::npos);
  EXPECT_NE(bundle.find("cpuprof.stall.me"), std::string::npos);

  stop.store(true, std::memory_order_release);
  stalled.join();
  profiler.Stop();
  dog.Disarm();
  DefaultFlightRecorder().SetCpuProfile("");
}

// ---------------------------------------------------------------------------
// Itimer mode: SIGPROF handler -> lock-free ring -> drain thread
// ---------------------------------------------------------------------------

TEST(ObsCpuProf, ItimerModeSamplesCpuBurners) {
  Tracer tracer;
  MetricsRegistry registry;
  CpuProfilerOptions options;
  options.mode = CpuProfilerMode::kItimer;
  options.sample_hz = 250;
  CpuProfiler profiler(&registry, &tracer, options);
  ASSERT_TRUE(profiler.Start());

  // Only one itimer profiler may own SIGPROF at a time.
  CpuProfiler rival(&registry, &tracer, options);
  EXPECT_FALSE(rival.Start());

  // Burn CPU inside a span until the handler has attributed samples
  // (ITIMER_PROF fires on consumed CPU time, so wall deadlines alone
  // would be flaky on loaded machines — spin, then check).
  {
    Span span = tracer.StartSpan("cpuprof.itimer.burn");
    volatile uint64_t sink = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (profiler.Snapshot().CountWithPrefix("cpuprof.itimer.burn") == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 100000; ++i) sink = sink * 33 + 1;
    }
  }
  profiler.Stop();

  const CpuProfile profile = profiler.Snapshot();
  EXPECT_EQ(profile.mode, "itimer");
  EXPECT_GT(profile.CountWithPrefix("cpuprof.itimer.burn"), 0u);

  // The slot freed on Stop: a new itimer profiler can start again.
  ASSERT_TRUE(rival.Start());
  rival.Stop();
}

}  // namespace
}  // namespace slim::obs
