#include <gtest/gtest.h>

#include <set>

#include "trim/interned_store.h"
#include "util/rng.h"

namespace slim::trim {
namespace {

Triple T(const std::string& s, const std::string& p, Object o) {
  return Triple{s, p, std::move(o)};
}

TEST(StringPoolTest, InternDeduplicates) {
  StringPool pool;
  uint32_t a = pool.Intern("hello");
  uint32_t b = pool.Intern("world");
  uint32_t c = pool.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(*pool.Find("world"), b);
  EXPECT_FALSE(pool.Find("absent").has_value());
}

TEST(StringPoolTest, ManyStringsStayStable) {
  StringPool pool;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(pool.Intern("string-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(pool.Get(ids[static_cast<size_t>(i)]),
              "string-" + std::to_string(i));
    EXPECT_EQ(*pool.Find("string-" + std::to_string(i)),
              ids[static_cast<size_t>(i)]);
  }
}

TEST(StringPoolTest, BinaryRoundTrip) {
  StringPool pool;
  pool.Intern("");
  pool.Intern("with \0 null bytes? no, but unicode: \xC3\xA9");
  pool.Intern("plain");
  std::string data;
  pool.AppendTo(&data);
  size_t offset = 0;
  auto back = StringPool::ReadFrom(data, &offset);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(offset, data.size());
  EXPECT_EQ(back->size(), pool.size());
  for (uint32_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(back->Get(i), pool.Get(i));
  }
}

TEST(InternedStoreTest, AddSelectRemove) {
  InternedTripleStore store;
  ASSERT_TRUE(store.AddLiteral("b1", "bundleName", "John").ok());
  ASSERT_TRUE(store.AddResource("b1", "bundleContent", "s1").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "scrapName", "Na 140").ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Contains(T("b1", "bundleName", Object::Literal("John"))));
  EXPECT_FALSE(store.Contains(T("b1", "bundleName", Object::Literal("X"))));
  EXPECT_TRUE(store.AddLiteral("b1", "bundleName", "John").IsAlreadyExists());

  EXPECT_EQ(store.Select(TriplePattern::BySubject("b1")).size(), 2u);
  EXPECT_EQ(store.Select(TriplePattern::ByProperty("scrapName")).size(), 1u);
  EXPECT_EQ(
      store.Select(TriplePattern::ByObject(Object::Resource("s1"))).size(),
      1u);
  EXPECT_EQ(store.Select(TriplePattern{}).size(), 3u);

  ASSERT_TRUE(store.Remove(T("b1", "bundleName", Object::Literal("John"))).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Remove(T("b1", "bundleName", Object::Literal("John")))
                  .IsNotFound());
  EXPECT_TRUE(store.Select(TriplePattern::ByProperty("bundleName")).empty());
}

TEST(InternedStoreTest, LiteralVsResourceDistinct) {
  InternedTripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "x").ok());
  ASSERT_TRUE(store.AddResource("a", "p", "x").ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(
      store.Select(TriplePattern::ByObject(Object::Literal("x"))).size(), 1u);
}

TEST(InternedStoreTest, GetOneAndViewFrom) {
  InternedTripleStore store;
  ASSERT_TRUE(store.AddResource("pad", "rootBundle", "bundle").ok());
  ASSERT_TRUE(store.AddLiteral("bundle", "bundleName", "B").ok());
  ASSERT_TRUE(store.AddResource("bundle", "bundleContent", "scrap").ok());
  ASSERT_TRUE(store.AddLiteral("scrap", "scrapName", "S").ok());
  ASSERT_TRUE(store.AddLiteral("island", "x", "y").ok());
  EXPECT_EQ(store.GetOne("bundle", "bundleName")->text, "B");
  EXPECT_FALSE(store.GetOne("bundle", "nope").has_value());
  EXPECT_EQ(store.ViewFrom("pad").size(), 4u);
  EXPECT_TRUE(store.ViewFrom("ghost").empty());
}

TEST(InternedStoreTest, ViewFromCycleSafe) {
  InternedTripleStore store;
  ASSERT_TRUE(store.AddResource("a", "next", "b").ok());
  ASSERT_TRUE(store.AddResource("b", "next", "a").ok());
  EXPECT_EQ(store.ViewFrom("a").size(), 2u);
}

TEST(InternedStoreTest, CompactDropsTombstones) {
  InternedTripleStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.AddLiteral("s" + std::to_string(i), "p", "v").ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        store.Remove(T("s" + std::to_string(i), "p", Object::Literal("v")))
            .ok());
  }
  size_t before = store.ApproximateBytes();
  store.Compact();
  EXPECT_EQ(store.size(), 50u);
  EXPECT_LE(store.ApproximateBytes(), before);
  EXPECT_EQ(store.Select(TriplePattern::ByProperty("p")).size(), 50u);
}

TEST(InternedStoreTest, BinaryRoundTrip) {
  InternedTripleStore store;
  ASSERT_TRUE(store.AddLiteral("b1", "bundleName", "John <&> \"Smith\"").ok());
  ASSERT_TRUE(store.AddResource("b1", "bundleContent", "s1").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "empty", "").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "scrapName", "line\nbreak").ok());
  // A removed triple must not be persisted.
  ASSERT_TRUE(store.AddLiteral("tmp", "p", "v").ok());
  ASSERT_TRUE(store.Remove(T("tmp", "p", Object::Literal("v"))).ok());

  std::string data = store.SerializeBinary();
  auto back = InternedTripleStore::DeserializeBinary(data);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->size(), store.size());
  store.ForEach([&](const Triple& t) {
    EXPECT_TRUE(back->Contains(t)) << TripleToString(t);
  });
  EXPECT_EQ(back->SerializeBinary().size(), data.size());
}

TEST(InternedStoreTest, DeserializeRejections) {
  EXPECT_FALSE(InternedTripleStore::DeserializeBinary("garbage").ok());
  EXPECT_FALSE(InternedTripleStore::DeserializeBinary("SLIMBIN1").ok());
  InternedTripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  std::string data = store.SerializeBinary();
  EXPECT_FALSE(
      InternedTripleStore::DeserializeBinary(data.substr(0, data.size() - 2))
          .ok());
  EXPECT_FALSE(InternedTripleStore::DeserializeBinary(data + "junk").ok());
}

TEST(InternedStoreTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/interned_store.bin";
  InternedTripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  ASSERT_TRUE(store.SaveBinary(path).ok());
  auto back = InternedTripleStore::LoadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
  std::remove(path.c_str());
  EXPECT_TRUE(InternedTripleStore::LoadBinary(path).status().IsIoError());
}

TEST(InternedStoreTest, CompactnessOnPadShapedData) {
  // The stated point of the alternative implementation: compactness.
  // Realistic pads repeat property names (every scrap has scrapName,
  // scrapPos, ...) and subjects (one per attribute of an instance), which
  // is exactly what interning exploits.
  InternedTripleStore interned;
  TripleStore hashed;
  for (int i = 0; i < 500; ++i) {
    std::string s = "scrap" + std::to_string(i);
    for (const char* prop :
         {"scrapName", "scrapPos", "slim:type", "scrapAnnotation"}) {
      std::string value = prop + std::to_string(i % 40);
      ASSERT_TRUE(interned.AddLiteral(s, prop, value).ok());
      ASSERT_TRUE(hashed.AddLiteral(s, prop, value).ok());
    }
  }
  EXPECT_LT(interned.ApproximateBytes(), hashed.ApproximateBytes());
  // The binary wire form is denser still than the in-memory layout.
  EXPECT_LT(interned.SerializeBinary().size(), interned.ApproximateBytes());
}

// Property test: the interned store agrees with the hash store under
// identical random op sequences.
class StoreEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreEquivalence, InternedMatchesHashed) {
  Rng rng(GetParam());
  InternedTripleStore interned;
  TripleStore hashed;
  std::vector<std::string> subjects = {"s1", "s2", "s3"};
  std::vector<std::string> properties = {"p1", "p2"};
  std::vector<std::string> values = {"a", "b", "c"};

  for (int op = 0; op < 300; ++op) {
    Triple t{rng.Pick(subjects), rng.Pick(properties),
             rng.Chance(0.5) ? Object::Literal(rng.Pick(values))
                             : Object::Resource(rng.Pick(subjects))};
    if (rng.Chance(0.6)) {
      EXPECT_EQ(interned.Add(t).ok(), hashed.Add(t).ok());
    } else {
      EXPECT_EQ(interned.Remove(t).ok(), hashed.Remove(t).ok());
    }
    ASSERT_EQ(interned.size(), hashed.size());
  }
  // Every selection path agrees (as sets).
  auto as_set = [](std::vector<Triple> v) {
    return std::set<Triple>(v.begin(), v.end());
  };
  for (const std::string& s : subjects) {
    EXPECT_EQ(as_set(interned.Select(TriplePattern::BySubject(s))),
              as_set(hashed.Select(TriplePattern::BySubject(s))));
    EXPECT_EQ(as_set(interned.ViewFrom(s)), as_set(hashed.ViewFrom(s)));
  }
  for (const std::string& p : properties) {
    EXPECT_EQ(as_set(interned.Select(TriplePattern::ByProperty(p))),
              as_set(hashed.Select(TriplePattern::ByProperty(p))));
  }
  // Binary round trip preserves equivalence.
  auto loaded =
      InternedTripleStore::DeserializeBinary(interned.SerializeBinary());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(as_set(loaded->Select(TriplePattern{})),
            as_set(hashed.Select(TriplePattern{})));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalence,
                         ::testing::Values(2, 4, 6, 10, 16, 26));

}  // namespace
}  // namespace slim::trim
