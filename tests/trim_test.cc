#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trim/persistence.h"
#include "trim/triple_store.h"
#include "util/rng.h"

namespace slim::trim {
namespace {

Triple T(const std::string& s, const std::string& p, Object o) {
  return Triple{s, p, std::move(o)};
}

TEST(TripleStoreTest, AddAndContains) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("b1", "bundleName", "John Smith").ok());
  ASSERT_TRUE(store.AddResource("b1", "bundleContent", "s1").ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(
      T("b1", "bundleName", Object::Literal("John Smith"))));
  // Literal vs resource with the same text are distinct statements.
  EXPECT_FALSE(store.Contains(
      T("b1", "bundleContent", Object::Literal("s1"))));
  EXPECT_TRUE(store.Contains(
      T("b1", "bundleContent", Object::Resource("s1"))));
}

TEST(TripleStoreTest, DuplicatesRejectedByDefault) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  EXPECT_TRUE(store.AddLiteral("a", "p", "v").IsAlreadyExists());
  EXPECT_TRUE(store.Add(T("a", "p", Object::Literal("v")), true).ok());
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreTest, EmptyFieldsRejected) {
  TripleStore store;
  EXPECT_TRUE(store.AddLiteral("", "p", "v").IsInvalidArgument());
  EXPECT_TRUE(store.AddLiteral("s", "", "v").IsInvalidArgument());
  // Empty literal object is fine.
  EXPECT_TRUE(store.AddLiteral("s", "p", "").ok());
}

TEST(TripleStoreTest, RemoveExact) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "1").ok());
  ASSERT_TRUE(store.AddLiteral("a", "p", "2").ok());
  ASSERT_TRUE(store.Remove(T("a", "p", Object::Literal("1"))).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Remove(T("a", "p", Object::Literal("1"))).IsNotFound());
  EXPECT_FALSE(store.Contains(T("a", "p", Object::Literal("1"))));
  EXPECT_TRUE(store.Contains(T("a", "p", Object::Literal("2"))));
}

TEST(TripleStoreTest, SlotReuseAfterRemove) {
  TripleStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AddLiteral("s" + std::to_string(i), "p", "v").ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        store.Remove(T("s" + std::to_string(i), "p", Object::Literal("v")))
            .ok());
  }
  EXPECT_TRUE(store.empty());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AddLiteral("t" + std::to_string(i), "p", "v").ok());
  }
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.Select(TriplePattern::ByProperty("p")).size(), 10u);
}

TEST(TripleStoreTest, SelectionByEachField) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("b1", "bundleName", "X").ok());
  ASSERT_TRUE(store.AddLiteral("b2", "bundleName", "Y").ok());
  ASSERT_TRUE(store.AddResource("b1", "bundleContent", "s1").ok());
  ASSERT_TRUE(store.AddResource("b2", "bundleContent", "s1").ok());

  EXPECT_EQ(store.Select(TriplePattern::BySubject("b1")).size(), 2u);
  EXPECT_EQ(store.Select(TriplePattern::ByProperty("bundleName")).size(), 2u);
  EXPECT_EQ(
      store.Select(TriplePattern::ByObject(Object::Resource("s1"))).size(),
      2u);
  EXPECT_EQ(store
                .Select(TriplePattern::BySubjectProperty("b1",
                                                         "bundleContent"))
                .size(),
            1u);
  // Fully fixed pattern.
  TriplePattern exact{"b2", "bundleName", Object::Literal("Y")};
  EXPECT_EQ(store.Select(exact).size(), 1u);
  // Empty pattern matches everything.
  EXPECT_EQ(store.Select(TriplePattern{}).size(), 4u);
  // Non-matching key short-circuits.
  EXPECT_TRUE(store.Select(TriplePattern::BySubject("zzz")).empty());
}

TEST(TripleStoreTest, ObjectPatternDistinguishesKind) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "x").ok());
  ASSERT_TRUE(store.AddResource("b", "p", "x").ok());
  EXPECT_EQ(
      store.Select(TriplePattern::ByObject(Object::Literal("x"))).size(), 1u);
  EXPECT_EQ(
      store.Select(TriplePattern::ByObject(Object::Resource("x"))).size(),
      1u);
}

TEST(TripleStoreTest, SelectEachEarlyStop) {
  TripleStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AddLiteral("s", "p" + std::to_string(i), "v").ok());
  }
  int count = 0;
  store.SelectEach(TriplePattern::BySubject("s"), [&](const Triple&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3);
}

TEST(TripleStoreTest, GetOneSetOne) {
  TripleStore store;
  EXPECT_FALSE(store.GetOne("pad1", "padName").has_value());
  ASSERT_TRUE(store.SetOne("pad1", "padName", Object::Literal("Rounds")).ok());
  EXPECT_EQ(store.GetOne("pad1", "padName")->text, "Rounds");
  // SetOne replaces.
  ASSERT_TRUE(
      store.SetOne("pad1", "padName", Object::Literal("Evening Rounds")).ok());
  EXPECT_EQ(store.GetOne("pad1", "padName")->text, "Evening Rounds");
  EXPECT_EQ(store.Select(TriplePattern::BySubject("pad1")).size(), 1u);
}

TEST(TripleStoreTest, ViewFromFollowsResourceEdges) {
  TripleStore store;
  // pad -> bundle -> {scrap1, scrap2}; scrap2 -> handle.
  ASSERT_TRUE(store.AddResource("pad", "rootBundle", "bundle").ok());
  ASSERT_TRUE(store.AddLiteral("bundle", "bundleName", "B").ok());
  ASSERT_TRUE(store.AddResource("bundle", "bundleContent", "scrap1").ok());
  ASSERT_TRUE(store.AddResource("bundle", "bundleContent", "scrap2").ok());
  ASSERT_TRUE(store.AddLiteral("scrap1", "scrapName", "S1").ok());
  ASSERT_TRUE(store.AddResource("scrap2", "scrapMark", "handle").ok());
  ASSERT_TRUE(store.AddLiteral("handle", "markId", "mark9").ok());
  // An unrelated island must not appear.
  ASSERT_TRUE(store.AddLiteral("other", "x", "y").ok());

  std::vector<Triple> view = store.ViewFrom("pad");
  EXPECT_EQ(view.size(), 7u);
  std::vector<std::string> reachable = store.ReachableResources("pad");
  std::set<std::string> set(reachable.begin(), reachable.end());
  EXPECT_EQ(set, (std::set<std::string>{"pad", "bundle", "scrap1", "scrap2",
                                        "handle"}));
}

TEST(TripleStoreTest, ViewFromIsCycleSafe) {
  TripleStore store;
  ASSERT_TRUE(store.AddResource("a", "next", "b").ok());
  ASSERT_TRUE(store.AddResource("b", "next", "a").ok());
  EXPECT_EQ(store.ViewFrom("a").size(), 2u);
}

TEST(TripleStoreTest, RemoveMatching) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("s1", "a", "1").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "b", "2").ok());
  ASSERT_TRUE(store.AddLiteral("s2", "a", "3").ok());
  EXPECT_EQ(store.RemoveMatching(TriplePattern::BySubject("s1")), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.RemoveMatching(TriplePattern::BySubject("s1")), 0u);
}

TEST(TripleStoreTest, ClearResetsEverything) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Select(TriplePattern{}).empty());
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, ApproximateBytesGrows) {
  TripleStore store;
  size_t empty = store.ApproximateBytes();
  ASSERT_TRUE(store.AddLiteral("subject", "property", "value").ok());
  EXPECT_GT(store.ApproximateBytes(), empty);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST(TrimPersistenceTest, XmlRoundTrip) {
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("b1", "bundleName", "John <Smith> & Co").ok());
  ASSERT_TRUE(store.AddResource("b1", "bundleContent", "s1").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "scrapName", "Na 140\nnext line").ok());
  ASSERT_TRUE(store.AddLiteral("s1", "empty", "").ok());

  std::string xml_text = StoreToXml(store);
  TripleStore loaded;
  ASSERT_TRUE(StoreFromXml(xml_text, &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
  store.ForEach([&](const Triple& t) {
    EXPECT_TRUE(loaded.Contains(t)) << TripleToString(t);
  });
  // Canonical: second serialization identical.
  EXPECT_EQ(StoreToXml(loaded), xml_text);
}

TEST(TrimPersistenceTest, LoadClearsExisting) {
  TripleStore a, b;
  ASSERT_TRUE(a.AddLiteral("x", "p", "1").ok());
  ASSERT_TRUE(b.AddLiteral("y", "q", "2").ok());
  ASSERT_TRUE(StoreFromXml(StoreToXml(a), &b).ok());
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.Contains(T("x", "p", Object::Literal("1"))));
}

TEST(TrimPersistenceTest, Rejections) {
  TripleStore store;
  EXPECT_FALSE(StoreFromXml("<wrong/>", &store).ok());
  EXPECT_FALSE(StoreFromXml(
                   "<trim:store><trim:statement property=\"p\">"
                   "<trim:literal>v</trim:literal></trim:statement>"
                   "</trim:store>",
                   &store)
                   .ok());
  EXPECT_FALSE(StoreFromXml(
                   "<trim:store><trim:statement subject=\"s\" property=\"p\"/>"
                   "</trim:store>",
                   &store)
                   .ok());
  EXPECT_FALSE(
      StoreFromXml(
          "<trim:store><trim:statement subject=\"s\" property=\"p\">"
          "<trim:literal>v</trim:literal><trim:resource>r</trim:resource>"
          "</trim:statement></trim:store>",
          &store)
          .ok());
}

TEST(TrimPersistenceTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/store_roundtrip.xml";
  TripleStore store;
  ASSERT_TRUE(store.AddLiteral("a", "p", "v").ok());
  ASSERT_TRUE(SaveStore(store, path).ok());
  TripleStore loaded;
  ASSERT_TRUE(LoadStore(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());
  EXPECT_TRUE(LoadStore(path, &loaded).IsIoError());
}

// ---------------------------------------------------------------------------
// Property test: indexes agree with a model set under random op sequences.
// ---------------------------------------------------------------------------

class TripleStoreRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStoreRandomOps, IndexesMatchModel) {
  Rng rng(GetParam());
  TripleStore store;
  std::set<Triple> model;
  std::vector<std::string> subjects = {"s1", "s2", "s3", "s4"};
  std::vector<std::string> properties = {"p1", "p2", "p3"};
  std::vector<std::string> values = {"a", "b", "c", "d", "e"};

  for (int op = 0; op < 400; ++op) {
    Triple t{rng.Pick(subjects), rng.Pick(properties),
             rng.Chance(0.5) ? Object::Literal(rng.Pick(values))
                             : Object::Resource(rng.Pick(subjects))};
    if (rng.Chance(0.6)) {
      Status st = store.Add(t);
      bool was_new = model.insert(t).second;
      EXPECT_EQ(st.ok(), was_new) << TripleToString(t);
    } else {
      Status st = store.Remove(t);
      bool was_present = model.erase(t) > 0;
      EXPECT_EQ(st.ok(), was_present) << TripleToString(t);
    }
    ASSERT_EQ(store.size(), model.size());
  }

  // Every selection path returns exactly the model's matching subset.
  for (const std::string& s : subjects) {
    auto got = store.Select(TriplePattern::BySubject(s));
    size_t expected = std::count_if(model.begin(), model.end(),
                                    [&](const Triple& t) {
                                      return t.subject == s;
                                    });
    EXPECT_EQ(got.size(), expected) << s;
    for (const Triple& t : got) EXPECT_TRUE(model.count(t));
  }
  for (const std::string& p : properties) {
    EXPECT_EQ(store.Select(TriplePattern::ByProperty(p)).size(),
              static_cast<size_t>(std::count_if(
                  model.begin(), model.end(),
                  [&](const Triple& t) { return t.property == p; })));
  }
  // Persistence of the random store round-trips exactly.
  TripleStore loaded;
  ASSERT_TRUE(StoreFromXml(StoreToXml(store), &loaded).ok());
  EXPECT_EQ(loaded.size(), model.size());
  for (const Triple& t : model) EXPECT_TRUE(loaded.Contains(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStoreRandomOps,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace slim::trim
