// MetricsHistory: delta/rate math against an injected fake clock, ring
// eviction accounting, the slim-metrics-history-v1 JSON document, the
// background capture thread, and a real-socket scrape of the StatsServer
// /metrics/history and /vars.json routes.
//
// Like obs_test.cc, everything here is library-level and must pass under
// both SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/prom.h"

namespace slim::obs {
namespace {

// Injectable clock: HistoryOptions::now_ms is a plain function pointer, so
// the fake ticks through a process-wide atomic.
std::atomic<int64_t> g_fake_now_ms{0};
int64_t FakeNowMs() { return g_fake_now_ms.load(std::memory_order_relaxed); }

HistoryOptions FakeClockOptions(size_t capacity = 120) {
  HistoryOptions options;
  options.capacity = capacity;
  options.now_ms = &FakeNowMs;
  return options;
}

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

const HistorySample::CounterEntry* FindCounter(const HistorySample& sample,
                                               const std::string& name) {
  for (const auto& entry : sample.counters) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

TEST(ObsHistory, FirstSampleHasDeltaButNoRate) {
  g_fake_now_ms.store(1000);
  MetricsRegistry registry;
  registry.GetCounter("h.ops")->Increment(7);
  MetricsHistory history(&registry, FakeClockOptions());

  history.CaptureOnce();
  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].seq, 1u);
  EXPECT_EQ(samples[0].t_ms, 1000);
  EXPECT_EQ(samples[0].dt_ms, 0);  // nothing to diff against
  const auto* ops = FindCounter(samples[0], "h.ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value, 7u);
  EXPECT_EQ(ops->delta, 7u);
  EXPECT_EQ(ops->rate_per_s, 0.0);
}

TEST(ObsHistory, DeltaAndRateMath) {
  g_fake_now_ms.store(0);
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("h.ops");
  Gauge* depth = registry.GetGauge("h.depth");
  LatencyHistogram* lat = registry.GetHistogram("h.latency_us");
  ops->Increment(10);
  depth->Set(4);
  lat->Record(100);
  MetricsHistory history(&registry, FakeClockOptions());
  history.CaptureOnce();

  // +100 ops over 500 ms → rate 200/s; histogram gains 2 records, sum 30.
  ops->Increment(100);
  depth->Set(9);
  lat->Record(10);
  lat->Record(20);
  g_fake_now_ms.store(500);
  history.CaptureOnce();

  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 2u);
  const HistorySample& s = samples[1];
  EXPECT_EQ(s.seq, 2u);
  EXPECT_EQ(s.dt_ms, 500);
  const auto* entry = FindCounter(s, "h.ops");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, 110u);
  EXPECT_EQ(entry->delta, 100u);
  EXPECT_DOUBLE_EQ(entry->rate_per_s, 200.0);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].name, "h.depth");
  EXPECT_EQ(s.gauges[0].value, 9);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 3u);
  EXPECT_EQ(s.histograms[0].count_delta, 2u);
  EXPECT_EQ(s.histograms[0].sum, 130u);
  EXPECT_EQ(s.histograms[0].sum_delta, 30u);
}

TEST(ObsHistory, CounterShrinkRestartsDelta) {
  g_fake_now_ms.store(0);
  MetricsRegistry registry;
  registry.GetCounter("h.ops")->Increment(10);
  MetricsHistory history(&registry, FakeClockOptions());
  history.CaptureOnce();

  registry.Reset();  // cumulative value goes backwards
  registry.GetCounter("h.ops")->Increment(3);
  g_fake_now_ms.store(1000);
  history.CaptureOnce();

  std::vector<HistorySample> samples = history.Samples();
  const auto* entry = FindCounter(samples[1], "h.ops");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, 3u);
  EXPECT_EQ(entry->delta, 3u);  // restart, not underflow
}

TEST(ObsHistory, RingEvictsOldestAndCounts) {
  g_fake_now_ms.store(0);
  MetricsRegistry registry;
  MetricsHistory history(&registry, FakeClockOptions(/*capacity=*/3));
  for (int i = 0; i < 5; ++i) {
    g_fake_now_ms.fetch_add(10);
    history.CaptureOnce();
  }
  EXPECT_EQ(history.capture_count(), 5u);
  EXPECT_EQ(history.dropped(), 2u);
  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().seq, 3u);  // 1 and 2 evicted
  EXPECT_EQ(samples.back().seq, 5u);
}

TEST(ObsHistory, ExportJsonSchema) {
  g_fake_now_ms.store(0);
  MetricsRegistry registry;
  registry.GetCounter("h.ops")->Increment(5);
  MetricsHistory history(&registry, FakeClockOptions());
  history.CaptureOnce();
  g_fake_now_ms.store(250);
  registry.GetCounter("h.ops")->Increment(5);
  history.CaptureOnce();

  std::string json = history.ExportJson();
  EXPECT_NE(json.find("\"schema\":\"slim-metrics-history-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"captures\":2"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":2"), std::string::npos);
  EXPECT_NE(json.find("\"h.ops\":{\"value\":10,\"delta\":5,"
                      "\"rate_per_s\":20.000}"),
            std::string::npos);
}

TEST(ObsHistory, BackgroundThreadCapturesAtInterval) {
  MetricsRegistry registry;
  registry.GetCounter("h.ops")->Increment();
  HistoryOptions options;
  options.interval_ms = 5;  // real clock: just prove the thread captures
  MetricsHistory history(&registry, options);
  ASSERT_TRUE(history.Start().ok());
  EXPECT_FALSE(history.Start().ok());  // already running
  for (int i = 0; i < 400 && history.capture_count() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  history.Stop();
  history.Stop();  // idempotent
  EXPECT_GE(history.capture_count(), 3u);
  // Restartable after Stop.
  ASSERT_TRUE(history.Start().ok());
  history.Stop();
}

TEST(ObsHistory, HttpHistoryAndVarsEndpoints) {
  g_fake_now_ms.store(0);
  MetricsRegistry registry;
  registry.GetCounter("h.ops")->Increment(3);
  MetricsHistory history(&registry, FakeClockOptions());
  history.CaptureOnce();
  g_fake_now_ms.store(100);
  registry.GetCounter("h.ops")->Increment(3);
  history.CaptureOnce();

  StatsServer server(&registry, 0);
  server.set_history(&history);
  Status start = server.Start();
  ASSERT_TRUE(start.ok()) << start;

  std::string response = HttpGet(server.port(), "/metrics/history");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("slim-metrics-history-v1"), std::string::npos);
  // At least two delta samples over the wire.
  EXPECT_NE(response.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(response.find("\"seq\":2"), std::string::npos);

  std::string vars = HttpGet(server.port(), "/vars.json");
  EXPECT_NE(vars.find("200 OK"), std::string::npos);
  EXPECT_NE(vars.find("\"h.ops\""), std::string::npos);

  server.Stop();
}

TEST(ObsHistory, HttpHistoryWithoutAttachmentIs404) {
  MetricsRegistry registry;
  StatsServer server(&registry, 0);
  Status start = server.Start();
  ASSERT_TRUE(start.ok()) << start;
  std::string response = HttpGet(server.port(), "/metrics/history");
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("no metrics history attached"), std::string::npos);
  server.Stop();
}

// TSan target: writers mutate the registry while one thread drives manual
// captures and the background thread samples on its own cadence. After the
// join, a final capture must see the exact total.
TEST(ObsHistory, ConcurrentWritersAndCaptures) {
  MetricsRegistry registry;
  HistoryOptions options;
  options.interval_ms = 1;
  options.capacity = 64;
  MetricsHistory history(&registry, options);
  ASSERT_TRUE(history.Start().ok());

  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;
  std::atomic<bool> stop_capturer{false};
  std::thread capturer([&] {
    while (!stop_capturer.load(std::memory_order_acquire)) {
      history.CaptureOnce();
      (void)history.Samples();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("h.stress.ops")->Increment();
        registry.GetHistogram("h.stress.latency_us")->Record(
            static_cast<uint64_t>(i % 512));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop_capturer.store(true, std::memory_order_release);
  capturer.join();
  history.Stop();

  history.CaptureOnce();
  std::vector<HistorySample> samples = history.Samples();
  ASSERT_FALSE(samples.empty());
  const auto* entry = FindCounter(samples.back(), "h.stress.ops");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, uint64_t(kWriters) * kIterations);
}

}  // namespace
}  // namespace slim::obs
