// Threaded + property tests for the sharded, epoch-snapshotted TripleStore
// (trim/triple_store.h, DESIGN.md §10), modeled on obs_stress_test.cc:
// exact post-join totals, invariants checked from reader threads via atomic
// violation counters, everything library-level so it runs in both
// SLIM_ENABLE_OBS legs. This suite is the store's customer of the TSan CI
// job (SLIM_SANITIZE=thread).
//
// Covered contracts:
//  - snapshot isolation: a reader pinned before a writer batch sees none
//    of it, a reader pinned after sees all of it (never a prefix);
//  - readers running concurrently with a writer never observe a torn
//    batch, and post-join totals are exact;
//  - epoch reclamation under churn: retired payloads drain once pins
//    advance, and tombstone debt is compacted instead of growing without
//    bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "trim/store_stats.h"
#include "trim/triple_store.h"

namespace slim::trim {
namespace {

using WriteOp = TripleStore::WriteOp;

Triple Lit(const std::string& s, const std::string& p, const std::string& o) {
  return Triple{s, p, Object::Literal(o)};
}

std::multiset<std::string> Render(const std::vector<Triple>& triples) {
  std::multiset<std::string> out;
  for (const Triple& t : triples) out.insert(TripleToString(t));
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot isolation (single-threaded property test)
// ---------------------------------------------------------------------------

// Rounds of batches against a model set: a snapshot pinned before each
// batch must keep seeing the exact pre-batch state after the batch lands,
// and a snapshot pinned after must see the exact post-batch state. The
// xorshift-driven batches mix adds and removes so both directions of the
// visibility check (birth and death epochs) are exercised.
TEST(StoreConcurrency, SnapshotPinnedBeforeBatchSeesNoneOfIt) {
  TripleStore store;
  std::set<std::string> model;  // object texts currently live
  auto triple_of = [](uint64_t v) {
    return Lit("s" + std::to_string(v % 13), "p", "v" + std::to_string(v));
  };
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t value_counter = 0;
  for (int round = 0; round < 16; ++round) {
    std::vector<Triple> before_triples = store.Select(TriplePattern{});
    ASSERT_EQ(before_triples.size(), model.size());

    // Pin BEFORE the batch.
    TripleStore::Snapshot before(store);

    // Build one batch: a few removes of existing values, a few adds.
    std::vector<WriteOp> ops;
    std::vector<uint64_t> removed;
    std::vector<uint64_t> live_values;
    for (const std::string& v : model) {
      live_values.push_back(std::stoull(v.substr(1)));
    }
    size_t removes = live_values.empty() ? 0 : 1 + next() % 3;
    for (size_t i = 0; i < removes && !live_values.empty(); ++i) {
      size_t pick = next() % live_values.size();
      uint64_t v = live_values[pick];
      live_values.erase(live_values.begin() + pick);
      ops.push_back(WriteOp::RemoveOp(triple_of(v)));
      removed.push_back(v);
    }
    size_t adds = 2 + next() % 4;
    std::vector<uint64_t> added;
    for (size_t i = 0; i < adds; ++i) {
      uint64_t v = value_counter++;
      ops.push_back(WriteOp::AddOp(triple_of(v)));
      added.push_back(v);
    }

    TripleStore::BatchResult result = store.ApplyBatch(std::move(ops));
    ASSERT_EQ(result.applied, removed.size() + added.size());

    // The pre-batch pin is still held by this thread, so reads evaluate at
    // the old epoch: the batch must be entirely invisible.
    EXPECT_EQ(Render(store.Select(TriplePattern{})), Render(before_triples));
    for (uint64_t v : added) EXPECT_FALSE(store.Contains(triple_of(v)));
    for (uint64_t v : removed) EXPECT_TRUE(store.Contains(triple_of(v)));

    // Drop the old pin; a snapshot pinned after the batch sees all of it.
    {
      TripleStore::Snapshot unpin_scope = std::move(before);
    }
    for (uint64_t v : removed) model.erase("v" + std::to_string(v));
    for (uint64_t v : added) model.insert("v" + std::to_string(v));

    TripleStore::Snapshot after(store);
    EXPECT_GT(after.epoch(), 0u);
    std::vector<Triple> now = store.Select(TriplePattern{});
    ASSERT_EQ(now.size(), model.size());
    std::set<std::string> seen;
    for (const Triple& t : now) seen.insert(t.object.text);
    EXPECT_EQ(seen, model);
    for (uint64_t v : added) EXPECT_TRUE(store.Contains(triple_of(v)));
    for (uint64_t v : removed) EXPECT_FALSE(store.Contains(triple_of(v)));
  }
}

TEST(StoreConcurrency, SetOneIsOneAtomicEpoch) {
  TripleStore store;
  ASSERT_TRUE(store.SetOne("s", "p", Object::Literal("v0")).ok());
  TripleStore::Snapshot pinned(store);
  ASSERT_TRUE(store.SetOne("s", "p", Object::Literal("v1")).ok());
  // Pinned reader still sees the old value — not zero values, not two.
  std::vector<Triple> old_view =
      store.Select(TriplePattern::BySubjectProperty("s", "p"));
  ASSERT_EQ(old_view.size(), 1u);
  EXPECT_EQ(old_view[0].object.text, "v0");
}

TEST(StoreConcurrency, ShardAccountingIsDeterministicAndExact) {
  TripleStore store;
  constexpr int kTriples = 400;
  for (int i = 0; i < kTriples; ++i) {
    ASSERT_TRUE(
        store.AddLiteral("subj" + std::to_string(i), "p", "v").ok());
  }
  auto counts = store.ShardLiveCounts();
  uint64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) total += counts[i];
  EXPECT_EQ(total, static_cast<uint64_t>(kTriples));
  for (int i = 0; i < kTriples; ++i) {
    std::string s = "subj" + std::to_string(i);
    EXPECT_EQ(TripleStore::ShardOf(s), TripleStore::ShardOf(std::string(s)));
    EXPECT_LT(TripleStore::ShardOf(s), TripleStore::kNumShards);
  }
}

// ---------------------------------------------------------------------------
// Concurrent readers vs. a batching writer
// ---------------------------------------------------------------------------

// The writer replaces a whole 8-triple "generation" per batch (remove the
// old 8, add the new 8, one ApplyBatch). Any reader, at any moment, must
// see exactly 8 generation triples and all 8 from the SAME generation —
// seeing 0, a mix, or a partial batch means snapshot isolation tore.
TEST(StoreConcurrency, ReadersNeverObserveTornBatches) {
  TripleStore store;
  constexpr int kGenSize = 8;
  constexpr int kGenerations = 300;
  constexpr int kReaders = 4;
  // A static backdrop so queries also cross unrelated shards.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        store.AddLiteral("base" + std::to_string(i), "p.base", "x").ok());
  }
  auto gen_triple = [](int gen, int k) {
    return Lit("gen" + std::to_string(gen) + "." + std::to_string(k),
               "p.batch", "g" + std::to_string(gen));
  };
  // Generation 1 exists before readers start, so "exactly 8" holds
  // unconditionally for the whole reader loop.
  {
    std::vector<WriteOp> ops;
    for (int k = 0; k < kGenSize; ++k) {
      ops.push_back(WriteOp::AddOp(gen_triple(1, k)));
    }
    ASSERT_EQ(store.ApplyBatch(std::move(ops)).applied,
              static_cast<size_t>(kGenSize));
  }

  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn_count{0};
  std::atomic<uint64_t> torn_mix{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      // do-while: on a single-core host the writer can finish all its
      // generations before any reader gets a timeslice; every reader
      // still performs at least one full consistency check (the final
      // generation satisfies the same "exactly one generation" invariant).
      do {
        TripleStore::Snapshot snap(store);
        std::vector<Triple> gen =
            store.Select(TriplePattern::ByProperty("p.batch"));
        if (gen.size() != kGenSize) {
          torn_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          const std::string& tag = gen[0].object.text;
          for (const Triple& t : gen) {
            if (t.object.text != tag) {
              torn_mix.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
        // Same snapshot, second read: must agree exactly (repeatable read).
        std::vector<Triple> again =
            store.Select(TriplePattern::ByProperty("p.batch"));
        if (Render(again) != Render(gen)) {
          torn_mix.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  std::thread writer([&] {
    start.store(true, std::memory_order_release);
    for (int gen = 2; gen <= kGenerations; ++gen) {
      std::vector<WriteOp> ops;
      for (int k = 0; k < kGenSize; ++k) {
        ops.push_back(WriteOp::RemoveOp(gen_triple(gen - 1, k)));
      }
      for (int k = 0; k < kGenSize; ++k) {
        ops.push_back(WriteOp::AddOp(gen_triple(gen, k)));
      }
      TripleStore::BatchResult result = store.ApplyBatch(std::move(ops));
      if (result.applied != static_cast<size_t>(2 * kGenSize)) {
        torn_mix.fetch_add(1, std::memory_order_relaxed);
      }
      // Hand the core to the readers between publications so single-core
      // hosts still interleave reads with live churn.
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn_count.load(), 0u);
  EXPECT_EQ(torn_mix.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  // Exact post-join state: the final generation, nothing else.
  std::vector<Triple> final_gen =
      store.Select(TriplePattern::ByProperty("p.batch"));
  ASSERT_EQ(final_gen.size(), static_cast<size_t>(kGenSize));
  for (const Triple& t : final_gen) {
    EXPECT_EQ(t.object.text, "g" + std::to_string(kGenerations));
  }
  EXPECT_EQ(store.size(), static_cast<size_t>(64 + kGenSize));
}

// ---------------------------------------------------------------------------
// Epoch reclamation under churn
// ---------------------------------------------------------------------------

// A writer churns SetOne over a handful of attributes (every round
// tombstones the previous value) while readers pin snapshots and read the
// attributes back. After the join: every retired object must drain once
// nothing is pinned, and compaction must have kept tombstone debt well
// below the total churn.
TEST(StoreConcurrency, EpochReclamationUnderChurn) {
  TripleStore store;
  // Enough churn that every active shard crosses the compaction dead-floor
  // (kRounds / kAttrs per shard, well above kCompactDeadFloor).
  constexpr int kRounds = 12000;
  constexpr int kAttrs = 4;
  constexpr int kReaders = 2;
  for (int a = 0; a < kAttrs; ++a) {
    ASSERT_TRUE(store
                    .SetOne("node" + std::to_string(a), "value",
                            Object::Literal("r0"))
                    .ok());
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        TripleStore::Snapshot snap(store);
        for (int a = 0; a < kAttrs; ++a) {
          std::optional<Object> v =
              store.GetOne("node" + std::to_string(a), "value");
          // Under the pin there is always exactly one value and it is a
          // well-formed round marker (a torn/reclaimed-under-us read would
          // surface as a missing or corrupt value — or as a TSan report).
          if (!v.has_value() || v->text.empty() || v->text[0] != 'r') {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int round = 1; round <= kRounds; ++round) {
    std::string marker = "r" + std::to_string(round);
    ASSERT_TRUE(store
                    .SetOne("node" + std::to_string(round % kAttrs), "value",
                            Object::Literal(marker))
                    .ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_EQ(store.size(), static_cast<size_t>(kAttrs));

  // With no pins left, everything retired is reclaimable.
  store.ReclaimRetired();
  TripleStore::EpochStats epoch = store.GetEpochStats();
  EXPECT_GT(epoch.retired, 0u);
  EXPECT_EQ(epoch.limbo, 0u);
  EXPECT_EQ(epoch.reclaimed, epoch.retired);
  EXPECT_GE(epoch.current, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(epoch.lag, 0u);

  // Compaction kept the dead-record debt far below the churn volume.
  StoreStats stats = ComputeStats(store);
  EXPECT_LT(stats.tombstoned, static_cast<uint64_t>(kRounds) / 2);
  EXPECT_EQ(stats.live_triples, static_cast<uint64_t>(kAttrs));

  // A pinned reader blocks reclamation (lag reported), an unpinned one
  // releases it.
  {
    TripleStore::Snapshot pin(store);
    ASSERT_TRUE(store.AddLiteral("extra", "value", "r-extra").ok());
    ASSERT_TRUE(store.Remove(Lit("extra", "value", "r-extra")).ok());
    store.ReclaimRetired();
    TripleStore::EpochStats pinned_epoch = store.GetEpochStats();
    EXPECT_GT(pinned_epoch.limbo, 0u);
    EXPECT_GT(pinned_epoch.lag, 0u);
    EXPECT_EQ(pinned_epoch.oldest_pin, pin.epoch());
  }
  store.ReclaimRetired();
  EXPECT_EQ(store.GetEpochStats().limbo, 0u);
}

}  // namespace
}  // namespace slim::trim
