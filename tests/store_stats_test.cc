// Tests for store introspection (trim/store_stats.h): ComputeStats over
// both backends, the predicate-cardinality histogram, the text/JSON
// renderings, and PublishStoreStats refreshing the slim.store.* gauge
// family. Everything here is data-path math, so it must pass under both
// SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "trim/interned_store.h"
#include "trim/store_stats.h"
#include "trim/triple_store.h"

namespace slim::trim {
namespace {

// Shared composition for both backends: subject "a" carries three triples,
// predicate "p" has fanout 3, "q" fanout 1; objects are all distinct.
template <typename Store>
void Populate(Store* store) {
  ASSERT_TRUE(store->AddLiteral("a", "p", "x").ok());
  ASSERT_TRUE(store->AddLiteral("a", "p", "y").ok());
  ASSERT_TRUE(store->AddResource("a", "q", "b").ok());
  ASSERT_TRUE(store->AddLiteral("b", "p", "z").ok());
}

TEST(StoreStatsTest, HashBackendCounts) {
  TripleStore store;
  Populate(&store);
  StoreStats stats = ComputeStats(store);

  EXPECT_EQ(stats.backend, "hash");
  EXPECT_EQ(stats.live_triples, 4u);
  EXPECT_EQ(stats.tombstoned, 0u);
  EXPECT_EQ(stats.subject_keys, 2u);    // a, b
  EXPECT_EQ(stats.property_keys, 2u);   // p, q
  EXPECT_EQ(stats.object_keys, 4u);     // x, y, b, z
  EXPECT_EQ(stats.subject_postings, 4u);
  EXPECT_EQ(stats.property_postings, 4u);
  EXPECT_EQ(stats.object_postings, 4u);

  // Fanouts: q -> 1 (bucket 0: n == 1), p -> 3 (bucket 2: 2 < n <= 4).
  ASSERT_EQ(stats.predicate_cardinality.size(), 3u);
  EXPECT_EQ(stats.predicate_cardinality[0], 1u);
  EXPECT_EQ(stats.predicate_cardinality[1], 0u);
  EXPECT_EQ(stats.predicate_cardinality[2], 1u);
  EXPECT_EQ(stats.predicate_max_fanout, 3u);

  // Hash backend has no interning table.
  EXPECT_EQ(stats.interned_strings, 0u);
  EXPECT_EQ(stats.interned_bytes, 0u);
  EXPECT_EQ(stats.approximate_bytes, store.ApproximateBytes());
  EXPECT_GT(stats.approximate_bytes, 0u);
}

TEST(StoreStatsTest, HashBackendTracksTombstones) {
  TripleStore store;
  Populate(&store);
  ASSERT_TRUE(store.Remove({"a", "q", Object::Resource("b")}).ok());

  StoreStats stats = ComputeStats(store);
  EXPECT_EQ(stats.live_triples, 3u);
  EXPECT_EQ(stats.tombstoned, 1u);
  // The removed triple was predicate q's only posting, so the key is gone.
  EXPECT_EQ(stats.property_keys, 1u);
  EXPECT_EQ(stats.property_postings, 3u);
  EXPECT_EQ(stats.predicate_max_fanout, 3u);
  ASSERT_EQ(stats.predicate_cardinality.size(), 3u);
  EXPECT_EQ(stats.predicate_cardinality[0], 0u);  // no fanout-1 predicate left
}

TEST(StoreStatsTest, InternedBackendCounts) {
  InternedTripleStore store;
  Populate(&store);
  ASSERT_TRUE(store.Remove({"a", "p", Object::Literal("y")}).ok());

  StoreStats stats = ComputeStats(store);
  EXPECT_EQ(stats.backend, "interned");
  EXPECT_EQ(stats.live_triples, 3u);
  EXPECT_EQ(stats.tombstoned, 1u);
  EXPECT_EQ(stats.subject_keys, 2u);
  EXPECT_EQ(stats.property_keys, 2u);
  EXPECT_EQ(stats.object_keys, 3u);  // x, b, z live
  // Columnar postings mirror the live row count per index.
  EXPECT_EQ(stats.subject_postings, 3u);
  EXPECT_EQ(stats.property_postings, 3u);
  EXPECT_EQ(stats.object_postings, 3u);
  // p -> 2 live (bucket 1), q -> 1 (bucket 0).
  ASSERT_EQ(stats.predicate_cardinality.size(), 2u);
  EXPECT_EQ(stats.predicate_cardinality[0], 1u);
  EXPECT_EQ(stats.predicate_cardinality[1], 1u);
  EXPECT_EQ(stats.predicate_max_fanout, 2u);
  // Interning holds every distinct string ever seen: a, p, x, y, q, b, z.
  EXPECT_EQ(stats.interned_strings, 7u);
  EXPECT_GT(stats.interned_bytes, 0u);
  EXPECT_EQ(stats.approximate_bytes, store.ApproximateBytes());
}

TEST(StoreStatsTest, TextAndJsonRenderings) {
  TripleStore store;
  Populate(&store);
  StoreStats stats = ComputeStats(store);

  std::string text = stats.ToText();
  EXPECT_NE(text.find("store backend"), std::string::npos);
  EXPECT_NE(text.find(": hash"), std::string::npos);
  EXPECT_NE(text.find("2 keys / 4 postings"), std::string::npos);
  EXPECT_NE(text.find("max 3"), std::string::npos);
  // The interned-occupancy line only appears for the interned backend.
  EXPECT_EQ(text.find("interned strings"), std::string::npos);

  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"backend\":\"hash\""), std::string::npos);
  EXPECT_NE(json.find("\"live_triples\":4"), std::string::npos);
  EXPECT_NE(json.find("\"predicate_max_fanout\":3"), std::string::npos);
  EXPECT_NE(json.find("\"predicate_cardinality\":[1,0,1]"),
            std::string::npos);

  InternedTripleStore interned;
  Populate(&interned);
  std::string interned_text = ComputeStats(interned).ToText();
  EXPECT_NE(interned_text.find("interned strings"), std::string::npos);
}

TEST(StoreStatsTest, PublishRefreshesGaugeFamily) {
  TripleStore store;
  Populate(&store);
  StoreStats stats = ComputeStats(store);

  obs::MetricsRegistry registry;
  PublishStoreStats(stats, &registry);

  EXPECT_EQ(registry.CounterValue("slim.store.refresh.calls"), 1u);
  EXPECT_EQ(registry.GetGauge("slim.store.live_triples")->value(), 4);
  EXPECT_EQ(registry.GetGauge("slim.store.tombstones")->value(), 0);
  EXPECT_EQ(registry.GetGauge("slim.store.index.subject.keys")->value(), 2);
  EXPECT_EQ(registry.GetGauge("slim.store.index.property.keys")->value(), 2);
  EXPECT_EQ(registry.GetGauge("slim.store.index.object.keys")->value(), 4);
  EXPECT_EQ(registry.GetGauge("slim.store.index.subject.postings")->value(),
            4);
  EXPECT_EQ(registry.GetGauge("slim.store.index.property.postings")->value(),
            4);
  EXPECT_EQ(registry.GetGauge("slim.store.index.object.postings")->value(),
            4);
  EXPECT_EQ(registry.GetGauge("slim.store.predicate.max_fanout")->value(), 3);
  EXPECT_EQ(registry.GetGauge("slim.store.interned.strings")->value(), 0);
  EXPECT_EQ(registry.GetGauge("slim.store.approx_bytes")->value(),
            static_cast<int64_t>(stats.approximate_bytes));

  // Refreshes Set (not Add): republishing after a mutation replaces the
  // values and only the refresh counter accumulates.
  ASSERT_TRUE(store.Remove({"a", "q", Object::Resource("b")}).ok());
  PublishStoreStats(ComputeStats(store), &registry);
  EXPECT_EQ(registry.CounterValue("slim.store.refresh.calls"), 2u);
  EXPECT_EQ(registry.GetGauge("slim.store.live_triples")->value(), 3);
  EXPECT_EQ(registry.GetGauge("slim.store.tombstones")->value(), 1);
  EXPECT_EQ(registry.GetGauge("slim.store.index.property.keys")->value(), 1);
}

}  // namespace
}  // namespace slim::trim
