// Tests for query EXPLAIN / EXPLAIN ANALYZE (slim/query_plan.h) and the
// slow-query sampler (slim/slow_query.h).
//
// The index-path property tests run against a store of fully distinct
// triples, so every posting list has size one: CandidateList's
// strictly-smaller rule then never overrides its consideration order and
// the predicted path must follow the documented preference exactly —
// bound subject > bound object > bound property > scan.
//
// The sampler's ring and counters are plain atomics/mutexes, so those
// tests pass under both SLIM_ENABLE_OBS settings; only the flight-recorder
// bundle test (which rides on SLIM_OBS_LOG / SLIM_OBS_DUMP_ON_ERROR) is
// compiled under OBS=ON.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "slim/query.h"
#include "slim/slow_query.h"
#include "trim/triple_store.h"

namespace slim::store {
namespace {

using trim::TripleStore;
using IndexPath = trim::TripleStore::IndexPath;

// ---------------------------------------------------------------------------
// Index-path preference: all 8 binding shapes of a single clause.
// ---------------------------------------------------------------------------

class ExplainPathPreferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fully distinct fields: every posting list has exactly one entry.
    ASSERT_TRUE(store_.AddLiteral("s0", "p0", "o0").ok());
    ASSERT_TRUE(store_.AddLiteral("s1", "p1", "o1").ok());
    ASSERT_TRUE(store_.AddLiteral("s2", "p2", "o2").ok());
  }

  // One clause with each field either the matching constant or a variable.
  static Query Shape(bool s_const, bool p_const, bool o_const) {
    Query q;
    q.Where(s_const ? QueryTerm::Res("s1") : QueryTerm::Var("s"),
            p_const ? QueryTerm::Res("p1") : QueryTerm::Var("p"),
            o_const ? QueryTerm::Lit("o1") : QueryTerm::Var("o"));
    return q;
  }

  TripleStore store_;
};

TEST_F(ExplainPathPreferenceTest, AllBindingShapesFollowPreferenceOrder) {
  struct Case {
    bool s, p, o;
    IndexPath path;
    const char* bound;
    uint64_t rows;
  };
  const Case kCases[] = {
      // With unit posting lists, subject wins every tie it is part of,
      // object beats property, and no constant at all means a scan.
      {true, false, false, IndexPath::kSubject, "s", 1},
      {false, true, false, IndexPath::kProperty, "p", 1},
      {false, false, true, IndexPath::kObject, "o", 1},
      {true, true, false, IndexPath::kSubject, "sp", 1},
      {true, false, true, IndexPath::kSubject, "so", 1},
      {false, true, true, IndexPath::kObject, "po", 1},
      {true, true, true, IndexPath::kSubject, "spo", 1},
      {false, false, false, IndexPath::kScan, "", 3},
  };
  for (const Case& c : kCases) {
    Query q = Shape(c.s, c.p, c.o);
    auto plan = Explain(store_, q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_EQ(plan->steps.size(), 1u) << q.ToString();
    const PlanStep& step = plan->steps[0];
    EXPECT_EQ(step.predicted_path, c.path) << q.ToString();
    EXPECT_EQ(step.bound_fields, c.bound) << q.ToString();
    EXPECT_EQ(step.estimated_rows, c.rows) << q.ToString();
    // All fixed fields are query constants, so every estimate is exact.
    EXPECT_TRUE(step.estimate_exact) << q.ToString();
    EXPECT_FALSE(plan->analyzed);
  }
}

TEST_F(ExplainPathPreferenceTest, MissingConstantPlansAsEmpty) {
  Query q;
  q.Where(QueryTerm::Res("no-such-subject"), QueryTerm::Var("p"),
          QueryTerm::Var("o"));
  auto plan = Explain(store_, q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].predicted_path, IndexPath::kEmpty);
  EXPECT_EQ(plan->steps[0].estimated_rows, 0u);
  EXPECT_TRUE(plan->steps[0].estimate_exact);
}

TEST_F(ExplainPathPreferenceTest, RejectsEmptyAndMalformedQueries) {
  EXPECT_FALSE(Explain(store_, Query{}).ok());
  EXPECT_FALSE(ExplainAnalyze(store_, Query{}).ok());
  Query literal_subject;
  literal_subject.Where(QueryTerm::Lit("bad"), QueryTerm::Var("p"),
                        QueryTerm::Var("o"));
  EXPECT_FALSE(Explain(store_, literal_subject).ok());
}

// ---------------------------------------------------------------------------
// Multi-clause plans: join order, runtime-bound estimates, ANALYZE actuals.
// ---------------------------------------------------------------------------

class ExplainJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two bundles over three scraps: 6 live triples, 5 distinct subjects.
    ASSERT_TRUE(store_.AddLiteral("s1", "scrapName", "dopamine").ok());
    ASSERT_TRUE(store_.AddLiteral("s2", "scrapName", "Na 140").ok());
    ASSERT_TRUE(store_.AddLiteral("s3", "scrapName", "K 4.2").ok());
    ASSERT_TRUE(store_.AddResource("b1", "bundleContent", "s1").ok());
    ASSERT_TRUE(store_.AddResource("b2", "bundleContent", "s2").ok());
    ASSERT_TRUE(store_.AddResource("b2", "bundleContent", "s3").ok());
  }

  TripleStore store_;
};

TEST_F(ExplainJoinTest, RuntimeBoundSubjectPredictsSubjectPath) {
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  auto plan = Explain(store_, *q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 2u);

  // Step 1: both clauses cost the same (property-only), so source order
  // decides: the bundleContent clause runs first through its exact posting
  // count.
  EXPECT_EQ(plan->steps[0].clause_index, 0u);
  EXPECT_EQ(plan->steps[0].bound_fields, "p");
  EXPECT_EQ(plan->steps[0].predicted_path, IndexPath::kProperty);
  EXPECT_EQ(plan->steps[0].estimated_rows, 3u);
  EXPECT_TRUE(plan->steps[0].estimate_exact);

  // Step 2: ?s is runtime-bound — subject preference, average fanout
  // (ceil(6 live / 5 distinct subjects) = 2), not exact.
  EXPECT_EQ(plan->steps[1].clause_index, 1u);
  EXPECT_EQ(plan->steps[1].bound_fields, "sp");
  EXPECT_EQ(plan->steps[1].predicted_path, IndexPath::kSubject);
  EXPECT_EQ(plan->steps[1].estimated_rows, 2u);
  EXPECT_FALSE(plan->steps[1].estimate_exact);
}

TEST_F(ExplainJoinTest, RuntimeBoundObjectPredictsObjectPath) {
  // The second clause sees ?s bound in *object* position: with no subject
  // key available the predicted path must fall to the object index.
  auto q = Query::Parse("?s scrapName ?n . ?b bundleContent ?s");
  ASSERT_TRUE(q.ok());
  auto plan = Explain(store_, *q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[1].clause_index, 1u);
  EXPECT_EQ(plan->steps[1].bound_fields, "po");
  EXPECT_EQ(plan->steps[1].predicted_path, IndexPath::kObject);
  EXPECT_FALSE(plan->steps[1].estimate_exact);
}

TEST_F(ExplainJoinTest, AnalyzeActualsMatchExecution) {
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  auto analyzed = ExplainAnalyze(store_, *q);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  const QueryPlan& plan = analyzed->plan;

  EXPECT_TRUE(plan.analyzed);
  EXPECT_EQ(plan.solutions, 3u);
  EXPECT_EQ(analyzed->solutions.size(), 3u);

  // Step 1 probes the bundleContent posting list once and emits all three
  // content edges; step 2 probes once per emitted binding.
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].probes, 1u);
  EXPECT_EQ(plan.steps[0].rows_matched, 3u);
  EXPECT_EQ(plan.steps[0].rows_out, 3u);
  EXPECT_EQ(plan.steps[1].probes, 3u);
  EXPECT_EQ(plan.steps[1].rows_matched, 3u);
  // The final step's emitted bindings are exactly the query's solutions.
  EXPECT_EQ(plan.steps.back().rows_out, plan.solutions);

  // ANALYZE must agree with the plain executor.
  auto rows = Execute(store_, *q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), analyzed->solutions.size());
  EXPECT_EQ(*rows, analyzed->solutions);
}

TEST_F(ExplainJoinTest, RenderedTextAndJsonCarryThePlan) {
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  auto analyzed = ExplainAnalyze(store_, *q);
  ASSERT_TRUE(analyzed.ok());

  std::string text = analyzed->plan.ToText();
  EXPECT_NE(text.find("QUERY PLAN (analyzed) for:"), std::string::npos);
  EXPECT_NE(text.find("path=property"), std::string::npos);
  EXPECT_NE(text.find("est_rows=3 (exact)"), std::string::npos);
  EXPECT_NE(text.find("(avg)"), std::string::npos);
  EXPECT_NE(text.find("solutions: 3"), std::string::npos);

  std::string json = analyzed->plan.ToJson();
  EXPECT_NE(json.find("\"analyzed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"property\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"subject\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\":3"), std::string::npos);
  EXPECT_NE(json.find("\"solutions\":3"), std::string::npos);

  // EXPLAIN without ANALYZE renders no actuals.
  auto plain = Explain(store_, *q);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->ToText().find("actual:"), std::string::npos);
  EXPECT_EQ(plain->ToJson().find("\"probes\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Slow-query sampler.
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());  // disarmed by default
  QueryPlan plan;
  plan.query_text = "?s <p> ?o";
  plan.total_us = 10;
  EXPECT_FALSE(log.MaybeRecord(plan));

  log.set_threshold_us(0);  // the sample-everything test hook
  EXPECT_TRUE(log.enabled());
  EXPECT_TRUE(log.MaybeRecord(plan));
  EXPECT_EQ(log.recorded(), 1u);

  log.set_threshold_us(1000);  // plan is under threshold
  EXPECT_FALSE(log.MaybeRecord(plan));
  EXPECT_EQ(log.recorded(), 1u);

  ASSERT_EQ(log.Recent().size(), 1u);
  EXPECT_EQ(log.Recent()[0].query_text, plan.query_text);
  log.Clear();
  EXPECT_TRUE(log.Recent().empty());
}

TEST(SlowQueryLogTest, RingKeepsMostRecentPlans) {
  SlowQueryLog log(/*capacity=*/2);
  log.set_threshold_us(0);
  for (int i = 0; i < 3; ++i) {
    QueryPlan plan;
    plan.query_text = "q" + std::to_string(i);
    EXPECT_TRUE(log.MaybeRecord(plan));
  }
  std::vector<QueryPlan> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);  // oldest plan evicted
  EXPECT_EQ(recent[0].query_text, "q1");
  EXPECT_EQ(recent[1].query_text, "q2");
  EXPECT_EQ(log.recorded(), 3u);
}

// Execute() consults the process-wide sampler, so these tests arm it and
// must always disarm it again — other tests share the singleton.
class SlowQuerySamplerTest : public ExplainJoinTest {
 protected:
  void TearDown() override {
    DefaultSlowQueryLog().set_threshold_us(-1);
    DefaultSlowQueryLog().Clear();
  }
};

TEST_F(SlowQuerySamplerTest, ArmedExecuteRecordsAnalyzedPlan) {
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  uint64_t before = DefaultSlowQueryLog().recorded();
  DefaultSlowQueryLog().set_threshold_us(0);

  auto rows = Execute(store_, *q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);

  EXPECT_EQ(DefaultSlowQueryLog().recorded(), before + 1);
  std::vector<QueryPlan> recent = DefaultSlowQueryLog().Recent();
  ASSERT_FALSE(recent.empty());
  const QueryPlan& plan = recent.back();
  EXPECT_TRUE(plan.analyzed);
  EXPECT_EQ(plan.solutions, rows->size());
  EXPECT_EQ(plan.query_text, q->ToString());
}

TEST_F(SlowQuerySamplerTest, DisarmedExecuteRecordsNothing) {
  auto q = Query::Parse("?b bundleContent ?s");
  ASSERT_TRUE(q.ok());
  uint64_t before = DefaultSlowQueryLog().recorded();
  auto rows = Execute(store_, *q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(DefaultSlowQueryLog().recorded(), before);
}

// The sampler is on the concurrent query path: N threads execute against a
// shared store with sampling armed at 0, so every query funnels through
// ExplainAnalyze + MaybeRecord. Exact totals after the join prove no lost
// updates; TSan (SLIM_SANITIZE=thread) proves no races.
TEST_F(SlowQuerySamplerTest, ConcurrentSamplingKeepsExactTotals) {
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  uint64_t before = DefaultSlowQueryLog().recorded();
  DefaultSlowQueryLog().set_threshold_us(0);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &q] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto rows = Execute(store_, *q);
        EXPECT_TRUE(rows.ok());
        if (rows.ok()) {
          EXPECT_EQ(rows->size(), 3u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(DefaultSlowQueryLog().recorded() - before,
            uint64_t(kThreads) * kQueriesPerThread);
  // The default ring holds 32 plans; 200 recordings keep it exactly full.
  EXPECT_EQ(DefaultSlowQueryLog().Recent().size(), 32u);
}

#if SLIM_OBS_ENABLED
// The recorded plan rides a warn-level log event into the flight recorder,
// and MaybeRecord offers a bundle dump — so a slow query with a dump path
// configured leaves a post-mortem file that explains itself.
TEST_F(SlowQuerySamplerTest, SlowQueryDumpsFlightRecorderBundle) {
  obs::FlightRecorder& recorder = obs::DefaultFlightRecorder();
  ASSERT_TRUE(recorder.Install());
  std::string path = ::testing::TempDir() + "/slim_slow_query_bundle.json";
  std::remove(path.c_str());
  recorder.set_dump_path(path);

  DefaultSlowQueryLog().set_threshold_us(0);
  auto q = Query::Parse("?b bundleContent ?s . ?s scrapName ?n");
  ASSERT_TRUE(q.ok());
  auto rows = Execute(store_, *q);
  ASSERT_TRUE(rows.ok());

  recorder.set_dump_path("");
  recorder.Uninstall();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no bundle at " << path;
  std::string bundle((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  // The bundle names its trigger and carries the analyzed plan JSON
  // (escaped inside the log event's "plan" field).
  EXPECT_NE(bundle.find("slim.query.slow"), std::string::npos);
  EXPECT_NE(bundle.find("slow query"), std::string::npos);
  EXPECT_NE(bundle.find("estimate_exact"), std::string::npos);
  EXPECT_NE(bundle.find("bundleContent"), std::string::npos);

  recorder.Clear();
  std::remove(path.c_str());
}
#endif  // SLIM_OBS_ENABLED

}  // namespace
}  // namespace slim::store
