#include <gtest/gtest.h>

#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "doc/xml/parser.h"

namespace slim::mark {
namespace {

// A full mark-management fixture: every base app + module + manager.
class MarkManagementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Spreadsheet.
    auto wb = std::make_unique<doc::Workbook>("meds.book");
    doc::Worksheet* ws = wb->AddSheet("Meds").ValueOrDie();
    ws->SetValue({0, 0}, std::string("dopamine"));
    ws->SetValue({0, 1}, std::string("5 mg"));
    ws->SetValue({1, 0}, std::string("heparin"));
    ASSERT_TRUE(excel_.RegisterWorkbook(std::move(wb)).ok());
    // XML.
    ASSERT_TRUE(xml_.RegisterDocument(
                       "lab.xml",
                       doc::xml::ParseXml("<r><result name=\"Na\">Na 140"
                                          "</result></r>")
                           .ValueOrDie())
                    .ok());
    // Text.
    auto note = std::make_unique<doc::text::TextDocument>();
    note->AddParagraph("Patient improving steadily.");
    ASSERT_TRUE(text_.RegisterDocument("note.txt", std::move(note)).ok());
    // Slides.
    auto deck = std::make_unique<doc::slides::SlideDeck>("talk.deck");
    auto* slide = deck->GetSlide(deck->AddSlide("Slide one")).ValueOrDie();
    ASSERT_TRUE(slide
                    ->AddShape({"s1", doc::slides::ShapeKind::kTextBox, 0, 0,
                                10, 10, "shape text", {}})
                    .ok());
    ASSERT_TRUE(slides_.RegisterDeck(std::move(deck)).ok());
    // PDF.
    auto pdf = doc::pdf::PdfDocument::BuildFromParagraphs({"pdf body text"});
    pdf->set_file_name("doc.pdf");
    pdf_box_ = pdf->pages()[0].objects[0].box;
    ASSERT_TRUE(pdf_.RegisterDocument(std::move(pdf)).ok());
    // HTML.
    ASSERT_TRUE(
        html_.RegisterPage("http://h/p",
                           "<body><p id=\"x\">web content</p></body>")
            .ok());

    ASSERT_TRUE(manager_.RegisterModule(&excel_module_).ok());
    ASSERT_TRUE(manager_.RegisterModule(&xml_module_).ok());
    ASSERT_TRUE(manager_.RegisterModule(&text_module_).ok());
    ASSERT_TRUE(manager_.RegisterModule(&slide_module_).ok());
    ASSERT_TRUE(manager_.RegisterModule(&pdf_module_).ok());
    ASSERT_TRUE(manager_.RegisterModule(&html_module_).ok());
  }

  baseapp::SpreadsheetApp excel_;
  baseapp::XmlApp xml_;
  baseapp::TextApp text_;
  baseapp::SlideApp slides_;
  baseapp::PdfApp pdf_;
  baseapp::HtmlApp html_;
  ExcelMarkModule excel_module_{&excel_};
  XmlMarkModule xml_module_{&xml_};
  TextMarkModule text_module_{&text_};
  SlideMarkModule slide_module_{&slides_};
  PdfMarkModule pdf_module_{&pdf_};
  HtmlMarkModule html_module_{&html_};
  MarkManager manager_;
  doc::pdf::Rect pdf_box_;
};

TEST_F(MarkManagementTest, SupportedTypes) {
  EXPECT_EQ(manager_.SupportedTypes(),
            (std::vector<std::string>{"excel", "html", "pdf", "slides",
                                      "text", "xml"}));
}

TEST_F(MarkManagementTest, CreateExcelMarkFromSelection) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 1}}).ok());
  auto id = manager_.CreateMarkFromSelection("excel");
  ASSERT_TRUE(id.ok()) << id.status();
  const Mark* m = *manager_.GetMark(*id);
  EXPECT_EQ(m->type(), "excel");
  EXPECT_EQ(m->file_name(), "meds.book");
  EXPECT_EQ(m->address(), "Meds!A1:B1");
  EXPECT_EQ(m->excerpt(), "dopamine\t5 mg");
  const auto* em = dynamic_cast<const ExcelMark*>(m);
  ASSERT_NE(em, nullptr);
  EXPECT_EQ(em->sheet_name(), "Meds");
  EXPECT_EQ(em->range(), (doc::RangeRef{{0, 0}, {0, 1}}));
}

TEST_F(MarkManagementTest, CreateRequiresSelection) {
  EXPECT_TRUE(manager_.CreateMarkFromSelection("excel")
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(manager_.CreateMarkFromSelection("nope").status().IsNotFound());
}

TEST_F(MarkManagementTest, ResolveDrivesBaseApplication) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{1, 0}, {1, 0}}).ok());
  std::string id = *manager_.CreateMarkFromSelection("excel");
  excel_.ClearNavigation();
  ASSERT_TRUE(manager_.ResolveMark(id).ok());
  ASSERT_TRUE(excel_.last_navigation().has_value());
  EXPECT_EQ(excel_.last_navigation()->address, "Meds!A2");
  EXPECT_EQ(excel_.last_navigation()->highlighted_content, "heparin");
}

TEST_F(MarkManagementTest, EveryTypeCreatesAndResolves) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  ASSERT_TRUE(xml_.SelectPath("lab.xml", "/r/result").ok());
  ASSERT_TRUE(text_.Select("note.txt", {0, 0, 7}).ok());
  ASSERT_TRUE(slides_.Select("talk.deck", 0, "s1").ok());
  ASSERT_TRUE(pdf_.SelectRegion("doc.pdf", 0, pdf_box_).ok());
  doc::xml::Element* p = doc::html::FindById(*html_.GetPage("http://h/p"), "x");
  ASSERT_TRUE(html_.SelectElement("http://h/p", p).ok());

  for (const char* type : {"excel", "xml", "text", "slides", "pdf", "html"}) {
    auto id = manager_.CreateMarkFromSelection(type);
    ASSERT_TRUE(id.ok()) << type << ": " << id.status();
    EXPECT_TRUE(manager_.ResolveMark(*id).ok()) << type;
    auto content = manager_.ExtractContent(*id);
    ASSERT_TRUE(content.ok()) << type;
    EXPECT_FALSE(content->empty()) << type;
  }
  EXPECT_EQ(manager_.size(), 6u);
}

TEST_F(MarkManagementTest, ExtractContentSeesLiveData) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  std::string id = *manager_.CreateMarkFromSelection("excel");
  EXPECT_EQ(*manager_.ExtractContent(id), "dopamine");
  // The excerpt is a snapshot; extraction reads through to the base layer.
  doc::Workbook* wb = *excel_.GetWorkbook("meds.book");
  (*wb->GetSheet("Meds"))->SetValue({0, 0}, std::string("dobutamine"));
  EXPECT_EQ(*manager_.ExtractContent(id), "dobutamine");
  EXPECT_EQ((*manager_.GetMark(id))->excerpt(), "dopamine");
}

TEST_F(MarkManagementTest, InPlaceResolverDoesNotNavigate) {
  InPlaceModule inplace(&excel_module_);
  ASSERT_TRUE(manager_.RegisterModule(&inplace).ok());
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  std::string id = *manager_.CreateMarkFromSelection("excel");
  excel_.ClearNavigation();
  ASSERT_TRUE(manager_.ResolveMark(id, "inplace").ok());
  EXPECT_FALSE(excel_.last_navigation().has_value());
  EXPECT_EQ(inplace.last_displayed(), "dopamine");
  // Unknown resolver name.
  EXPECT_TRUE(manager_.ResolveMark(id, "hologram").IsNotFound());
  // In-place modules refuse creation.
  EXPECT_TRUE(inplace.CreateFromSelection("x").status().IsUnsupported());
}

TEST_F(MarkManagementTest, RemoveMark) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  std::string id = *manager_.CreateMarkFromSelection("excel");
  ASSERT_TRUE(manager_.RemoveMark(id).ok());
  EXPECT_TRUE(manager_.GetMark(id).status().IsNotFound());
  EXPECT_TRUE(manager_.RemoveMark(id).IsNotFound());
  EXPECT_TRUE(manager_.ResolveMark(id).IsNotFound());
}

TEST_F(MarkManagementTest, PersistenceRoundTrip) {
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 1}}).ok());
  std::string excel_id = *manager_.CreateMarkFromSelection("excel");
  ASSERT_TRUE(xml_.SelectPath("lab.xml", "/r/result").ok());
  std::string xml_id = *manager_.CreateMarkFromSelection("xml");
  ASSERT_TRUE(text_.Select("note.txt", {0, 8, 17}).ok());
  std::string text_id = *manager_.CreateMarkFromSelection("text");
  ASSERT_TRUE(slides_.Select("talk.deck", 0, "s1").ok());
  std::string slide_id = *manager_.CreateMarkFromSelection("slides");
  ASSERT_TRUE(pdf_.SelectRegion("doc.pdf", 0, pdf_box_).ok());
  std::string pdf_id = *manager_.CreateMarkFromSelection("pdf");
  doc::xml::Element* p = doc::html::FindById(*html_.GetPage("http://h/p"), "x");
  ASSERT_TRUE(html_.SelectElement("http://h/p", p).ok());
  std::string html_id = *manager_.CreateMarkFromSelection("html");

  std::string xml_text = manager_.ToXml();

  // Reload into a second manager wired to the same modules.
  MarkManager reloaded;
  ASSERT_TRUE(reloaded.RegisterModule(&excel_module_).ok());
  ASSERT_TRUE(reloaded.RegisterModule(&xml_module_).ok());
  ASSERT_TRUE(reloaded.RegisterModule(&text_module_).ok());
  ASSERT_TRUE(reloaded.RegisterModule(&slide_module_).ok());
  ASSERT_TRUE(reloaded.RegisterModule(&pdf_module_).ok());
  ASSERT_TRUE(reloaded.RegisterModule(&html_module_).ok());
  ASSERT_TRUE(reloaded.FromXml(xml_text).ok());
  EXPECT_EQ(reloaded.size(), 6u);

  for (const std::string& id :
       {excel_id, xml_id, text_id, slide_id, pdf_id, html_id}) {
    const Mark* original = *manager_.GetMark(id);
    auto loaded = reloaded.GetMark(id);
    ASSERT_TRUE(loaded.ok()) << id;
    EXPECT_EQ((*loaded)->type(), original->type());
    EXPECT_EQ((*loaded)->file_name(), original->file_name());
    EXPECT_EQ((*loaded)->address(), original->address());
    EXPECT_EQ((*loaded)->excerpt(), original->excerpt());
    // Reloaded marks still resolve against the live base layer.
    EXPECT_TRUE(reloaded.ResolveMark(id).ok()) << id;
  }

  // Ids allocated after a reload don't collide with loaded ones.
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{1, 0}, {1, 0}}).ok());
  std::string fresh = *reloaded.CreateMarkFromSelection("excel");
  EXPECT_TRUE(reloaded.GetMark(fresh).ok());
  EXPECT_EQ(reloaded.size(), 7u);
}

TEST_F(MarkManagementTest, FromXmlRejectsGarbage) {
  MarkManager m;
  ASSERT_TRUE(m.RegisterModule(&excel_module_).ok());
  EXPECT_FALSE(m.FromXml("<wrong/>").ok());
  EXPECT_FALSE(m.FromXml("<marks><mark/></marks>").ok());
  EXPECT_FALSE(
      m.FromXml("<marks><mark id=\"m1\" type=\"excel\"></mark></marks>").ok());
  EXPECT_FALSE(
      m.FromXml(
           "<marks><mark id=\"m1\" type=\"unregistered\"></mark></marks>")
          .ok());
}

TEST_F(MarkManagementTest, DanglingMarkResolutionFailsCleanly) {
  // A mark whose document has been closed/deleted resolves with an error
  // rather than crashing — the redundancy-and-staleness reality of §3.
  ASSERT_TRUE(
      excel_.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  std::string id = *manager_.CreateMarkFromSelection("excel");
  ASSERT_TRUE(excel_.CloseDocument("meds.book").ok());
  Status st = manager_.ResolveMark(id);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError()) << st;  // tries to reopen from disk, fails
}

TEST_F(MarkManagementTest, AdoptMarkValidations) {
  auto m = std::make_unique<XmlMark>("custom7", "lab.xml", "/r/result");
  ASSERT_TRUE(manager_.AdoptMark(std::move(m)).ok());
  EXPECT_TRUE(manager_.ResolveMark("custom7").ok());
  EXPECT_TRUE(manager_
                  .AdoptMark(std::make_unique<XmlMark>("custom7", "lab.xml",
                                                       "/r"))
                  .IsAlreadyExists());
  EXPECT_TRUE(manager_.AdoptMark(nullptr).IsInvalidArgument());
}

TEST(MarkDescribeTest, Format) {
  ExcelMark m("m1", "f.book", "Sheet", doc::RangeRef{{0, 0}, {1, 1}});
  EXPECT_EQ(m.Describe(), "excel:f.book!Sheet!A1:B2");
}

}  // namespace
}  // namespace slim::mark
