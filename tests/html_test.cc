#include <gtest/gtest.h>

#include "doc/html/html.h"
#include "doc/xml/path.h"

namespace slim::doc::html {
namespace {

TEST(HtmlParseTest, WellFormedFragment) {
  auto doc = ParseHtml("<html><body><p>hello</p></body></html>");
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->name(), "html");
  auto ps = FindByTag(doc.get(), "p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->InnerText(), "hello");
}

TEST(HtmlParseTest, SyntheticRootWhenMissing) {
  auto doc = ParseHtml("<p>no html element</p>");
  EXPECT_EQ(doc->root()->name(), "html");
  EXPECT_EQ(FindByTag(doc.get(), "p").size(), 1u);
}

TEST(HtmlParseTest, TagNamesLowercased) {
  auto doc = ParseHtml("<DIV CLASS=\"Big\">x</DIV>");
  auto divs = FindByTag(doc.get(), "div");
  ASSERT_EQ(divs.size(), 1u);
  EXPECT_EQ(*divs[0]->FindAttribute("class"), "Big");
}

TEST(HtmlParseTest, VoidElementsDontNest) {
  auto doc = ParseHtml("<p>a<br>b<img src=x>c</p>");
  auto ps = FindByTag(doc.get(), "p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->ChildElements("br").size(), 1u);
  EXPECT_EQ(ps[0]->ChildElements("img").size(), 1u);
  EXPECT_EQ(VisibleText(ps[0]), "a b c");
}

TEST(HtmlParseTest, UnquotedAndBareAttributes) {
  auto doc = ParseHtml("<input type=text disabled>");
  auto inputs = FindByTag(doc.get(), "input");
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(*inputs[0]->FindAttribute("type"), "text");
  ASSERT_NE(inputs[0]->FindAttribute("disabled"), nullptr);
  EXPECT_EQ(*inputs[0]->FindAttribute("disabled"), "");
}

TEST(HtmlParseTest, ImpliedEndTags) {
  auto doc = ParseHtml("<ul><li>one<li>two<li>three</ul><p>a<p>b");
  EXPECT_EQ(FindByTag(doc.get(), "li").size(), 3u);
  auto ps = FindByTag(doc.get(), "p");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(VisibleText(ps[0]), "a");
  EXPECT_EQ(VisibleText(ps[1]), "b");
}

TEST(HtmlParseTest, TableImpliedCells) {
  auto doc = ParseHtml(
      "<table><tr><td>a<td>b<tr><td>c</table>");
  EXPECT_EQ(FindByTag(doc.get(), "tr").size(), 2u);
  EXPECT_EQ(FindByTag(doc.get(), "td").size(), 3u);
}

TEST(HtmlParseTest, StrayCloseTagIgnored) {
  auto doc = ParseHtml("<div>text</span></div>");
  EXPECT_EQ(FindByTag(doc.get(), "div").size(), 1u);
  EXPECT_EQ(VisibleText(doc->root()), "text");
}

TEST(HtmlParseTest, UnclosedElementsAutoCloseAtEof) {
  auto doc = ParseHtml("<div><section><p>dangling");
  EXPECT_EQ(FindByTag(doc.get(), "p").size(), 1u);
  EXPECT_EQ(VisibleText(doc->root()), "dangling");
}

TEST(HtmlParseTest, ScriptAndStyleAreRawText) {
  auto doc = ParseHtml(
      "<script>if (a < b) { x = \"<p>not a tag</p>\"; }</script>"
      "<style>p > span { color: red }</style><p>real</p>");
  EXPECT_EQ(FindByTag(doc.get(), "p").size(), 1u);
  // Script content is preserved but not rendered.
  auto scripts = FindByTag(doc.get(), "script");
  ASSERT_EQ(scripts.size(), 1u);
  EXPECT_NE(scripts[0]->InnerText().find("not a tag"), std::string::npos);
  EXPECT_EQ(VisibleText(doc->root()), "real");
}

TEST(HtmlParseTest, EntitiesTolerant) {
  auto doc = ParseHtml("<p>a &amp; b &nbsp; c &unknown; d &#65;</p>");
  EXPECT_EQ(VisibleText(doc->root()), "a & b c &unknown; d A");
}

TEST(HtmlParseTest, CommentsAndDoctypeSkipped) {
  auto doc = ParseHtml("<!DOCTYPE html><!-- c --><p>x</p>");
  EXPECT_EQ(FindByTag(doc.get(), "p").size(), 1u);
}

TEST(HtmlFindTest, ById) {
  auto doc = ParseHtml(
      "<body><div id=\"a\">first</div><div id=\"b\">second</div></body>");
  ASSERT_NE(FindById(doc.get(), "b"), nullptr);
  EXPECT_EQ(VisibleText(FindById(doc.get(), "b")), "second");
  EXPECT_EQ(FindById(doc.get(), "zzz"), nullptr);
}

TEST(HtmlFindTest, Anchor) {
  auto doc = ParseHtml(
      "<body><a name=\"sec2\">Section 2</a><a id=\"sec3\">Section 3</a>"
      "<div id=\"sec4\">not an anchor</div></body>");
  ASSERT_NE(FindAnchor(doc.get(), "sec2"), nullptr);
  ASSERT_NE(FindAnchor(doc.get(), "sec3"), nullptr);
  EXPECT_EQ(FindAnchor(doc.get(), "sec4"), nullptr);  // <div>, not <a>
}

TEST(HtmlFindTest, XmlPathWorksOnHtmlDom) {
  auto doc = ParseHtml("<html><body><p>one</p><p>two</p></body></html>");
  auto path = xml::XmlPath::Parse("/html/body/p[2]");
  ASSERT_TRUE(path.ok());
  auto elem = path->Resolve(doc.get());
  ASSERT_TRUE(elem.ok()) << elem.status();
  EXPECT_EQ(VisibleText(*elem), "two");
  // PathOf round trip on the HTML DOM too.
  EXPECT_EQ(xml::PathOf(*elem).ToString(), "/html[1]/body[1]/p[2]");
}

TEST(HtmlVisibleTextTest, CollapsesWhitespace) {
  auto doc = ParseHtml("<p>  a\n\n   b\t c  </p>");
  EXPECT_EQ(VisibleText(doc->root()), "a b c");
}

}  // namespace
}  // namespace slim::doc::html
