#include <gtest/gtest.h>

#include "slim/conformance.h"
#include "slim/instance.h"
#include "slim/mapping.h"
#include "slim/model.h"
#include "slim/schema.h"
#include "slim/vocabulary.h"

namespace slim::store {
namespace {

// ---------------------------------------------------------------------------
// ModelDef
// ---------------------------------------------------------------------------

TEST(ModelDefTest, BundleScrapModelShape) {
  ModelDef model = BuildBundleScrapModel();
  EXPECT_EQ(model.name(), "bundle-scrap");
  EXPECT_EQ(*model.FindConstruct("Bundle"), ConstructKind::kConstruct);
  EXPECT_EQ(*model.FindConstruct("String"),
            ConstructKind::kLiteralConstruct);
  EXPECT_EQ(*model.FindConstruct("MarkHandle"),
            ConstructKind::kMarkConstruct);
  EXPECT_FALSE(model.FindConstruct("Nope").has_value());
  const ConnectorDef* c = model.FindConnector("bundleContent");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->domain, "Bundle");
  EXPECT_EQ(c->range, "Scrap");
  EXPECT_EQ(c->max_card, kMany);
  EXPECT_GE(model.ConnectorsFor("Scrap").size(), 3u);
}

TEST(ModelDefTest, Validations) {
  ModelDef model("m");
  ASSERT_TRUE(model.AddConstruct("A", ConstructKind::kConstruct).ok());
  EXPECT_TRUE(model.AddConstruct("A", ConstructKind::kConstruct)
                  .IsAlreadyExists());
  EXPECT_TRUE(model.AddConstruct("", ConstructKind::kConstruct)
                  .IsInvalidArgument());
  EXPECT_TRUE(model.AddConnector({"c", "A", "Missing", 0, 1}).IsNotFound());
  EXPECT_TRUE(model.AddConnector({"c", "Missing", "A", 0, 1}).IsNotFound());
  EXPECT_TRUE(
      model.AddConnector({"c", "A", "A", 2, 1}).IsInvalidArgument());
  EXPECT_TRUE(model.AddConnector({"c", "A", "A", -1, 1}).IsInvalidArgument());
  ASSERT_TRUE(model.AddConnector({"c", "A", "A", 0, kMany}).ok());
  EXPECT_TRUE(model.AddConnector({"c", "A", "A", 0, 1}).IsAlreadyExists());
}

TEST(ModelDefTest, GeneralizationAndIsA) {
  ModelDef model("m");
  ASSERT_TRUE(model.AddConstruct("Mark", ConstructKind::kMarkConstruct).ok());
  ASSERT_TRUE(
      model.AddConstruct("ExcelMark", ConstructKind::kMarkConstruct).ok());
  ASSERT_TRUE(
      model.AddConstruct("XmlMark", ConstructKind::kMarkConstruct).ok());
  ASSERT_TRUE(model.AddConstruct("Str", ConstructKind::kLiteralConstruct).ok());
  ASSERT_TRUE(model.AddGeneralization("ExcelMark", "Mark").ok());
  ASSERT_TRUE(model.AddGeneralization("XmlMark", "Mark").ok());
  EXPECT_TRUE(model.IsA("ExcelMark", "Mark"));
  EXPECT_TRUE(model.IsA("Mark", "Mark"));
  EXPECT_FALSE(model.IsA("Mark", "ExcelMark"));
  EXPECT_FALSE(model.IsA("ExcelMark", "XmlMark"));
  // Cycles rejected.
  EXPECT_TRUE(model.AddGeneralization("Mark", "ExcelMark")
                  .IsInvalidArgument());
  // Literals can't specialize.
  EXPECT_TRUE(model.AddGeneralization("Str", "Mark").IsInvalidArgument());
  EXPECT_TRUE(model.AddGeneralization("Zzz", "Mark").IsNotFound());
  // Connectors declared on the ancestor apply to descendants.
  ASSERT_TRUE(model.AddConnector({"markNote", "Mark", "Str", 0, 1}).ok());
  EXPECT_EQ(model.ConnectorsFor("ExcelMark").size(), 1u);
}

TEST(ModelDefTest, TriplesRoundTrip) {
  ModelDef model = BuildBundleScrapModel();
  trim::TripleStore store;
  ASSERT_TRUE(model.ToTriples(&store).ok());
  auto back = ModelDef::FromTriples(store, "bundle-scrap");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->constructs(), model.constructs());
  EXPECT_EQ(back->connectors().size(), model.connectors().size());
  for (const ConnectorDef& c : model.connectors()) {
    const ConnectorDef* loaded = back->FindConnector(c.name);
    ASSERT_NE(loaded, nullptr) << c.name;
    EXPECT_EQ(loaded->domain, c.domain);
    EXPECT_EQ(loaded->range, c.range);
    EXPECT_EQ(loaded->min_card, c.min_card);
    EXPECT_EQ(loaded->max_card, c.max_card);
  }
}

TEST(ModelDefTest, GeneralizationSurvivesTriples) {
  ModelDef model("marks");
  ASSERT_TRUE(model.AddConstruct("Mark", ConstructKind::kMarkConstruct).ok());
  ASSERT_TRUE(
      model.AddConstruct("ExcelMark", ConstructKind::kMarkConstruct).ok());
  ASSERT_TRUE(model.AddGeneralization("ExcelMark", "Mark").ok());
  trim::TripleStore store;
  ASSERT_TRUE(model.ToTriples(&store).ok());
  auto back = ModelDef::FromTriples(store, "marks");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->IsA("ExcelMark", "Mark"));
}

TEST(ModelDefTest, FromTriplesMissingModel) {
  trim::TripleStore store;
  EXPECT_TRUE(ModelDef::FromTriples(store, "ghost").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// SchemaDef
// ---------------------------------------------------------------------------

TEST(SchemaDefTest, IdentitySchemaCoversModel) {
  ModelDef model = BuildBundleScrapModel();
  auto schema = IdentitySchema(model, "slimpad");
  ASSERT_TRUE(schema.ok()) << schema.status();
  // One element per non-literal construct.
  EXPECT_EQ(schema->elements().size(), 4u);
  EXPECT_EQ(schema->connectors().size(), model.connectors().size());
  EXPECT_EQ(*schema->ConstructOf("Bundle"), "Bundle");
  EXPECT_TRUE(schema->ConstructOf("String").status().IsNotFound());
}

TEST(SchemaDefTest, ElementValidations) {
  ModelDef model = BuildBundleScrapModel();
  SchemaDef schema("s", "bundle-scrap");
  ASSERT_TRUE(schema.AddElement("PatientBundle", "Bundle", model).ok());
  EXPECT_TRUE(schema.AddElement("PatientBundle", "Bundle", model)
                  .IsAlreadyExists());
  EXPECT_TRUE(schema.AddElement("X", "Nope", model).IsNotFound());
  EXPECT_TRUE(schema.AddElement("Y", "String", model).IsInvalidArgument());
  ModelDef other("other");
  EXPECT_TRUE(schema.AddElement("Z", "Bundle", other).IsInvalidArgument());
}

TEST(SchemaDefTest, ConnectorValidations) {
  ModelDef model = BuildBundleScrapModel();
  SchemaDef schema("s", "bundle-scrap");
  ASSERT_TRUE(schema.AddElement("PatientBundle", "Bundle", model).ok());
  ASSERT_TRUE(schema.AddElement("MedScrap", "Scrap", model).ok());

  // A valid refinement of bundleContent.
  ASSERT_TRUE(schema
                  .AddConnector({"meds", "bundleContent", "PatientBundle",
                                 "MedScrap", 0, 20},
                                model)
                  .ok());
  // Unknown model connector.
  EXPECT_TRUE(schema
                  .AddConnector({"x", "noSuch", "PatientBundle", "MedScrap",
                                 0, 1},
                                model)
                  .IsNotFound());
  // Domain element's construct must match the model connector's domain.
  EXPECT_TRUE(schema
                  .AddConnector({"bad", "bundleContent", "MedScrap",
                                 "MedScrap", 0, 1},
                                model)
                  .IsConformance());
  // Range mismatch: scrapName expects String.
  EXPECT_TRUE(schema
                  .AddConnector({"bad2", "scrapName", "MedScrap",
                                 "PatientBundle", 0, 1},
                                model)
                  .IsConformance());
  // Cardinality must narrow: padName is 1..1 in the model.
  ASSERT_TRUE(schema.AddElement("Pad", "SlimPad", model).ok());
  EXPECT_TRUE(schema
                  .AddConnector({"name", "padName", "Pad", "String", 0, 1},
                                model)
                  .IsConformance());
  // Same connector name on two domains is fine.
  ASSERT_TRUE(
      schema.AddConnector({"label", "scrapName", "MedScrap", "String", 1, 1},
                          model)
          .ok());
  ASSERT_TRUE(schema
                  .AddConnector({"label", "bundleName", "PatientBundle",
                                 "String", 1, 1},
                                model)
                  .ok());
}

TEST(SchemaDefTest, TriplesRoundTrip) {
  ModelDef model = BuildBundleScrapModel();
  trim::TripleStore store;
  ASSERT_TRUE(model.ToTriples(&store).ok());
  SchemaDef schema = *IdentitySchema(model, "slimpad");
  ASSERT_TRUE(schema.ToTriples(&store).ok());

  auto back = SchemaDef::FromTriples(store, "slimpad");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->elements(), schema.elements());
  EXPECT_EQ(back->connectors().size(), schema.connectors().size());
  for (const SchemaConnectorDef& c : schema.connectors()) {
    bool found = false;
    for (const SchemaConnectorDef& l : back->connectors()) {
      if (l.name == c.name && l.domain == c.domain) {
        found = true;
        EXPECT_EQ(l.range, c.range);
        EXPECT_EQ(l.model_connector, c.model_connector);
        EXPECT_EQ(l.min_card, c.min_card);
        EXPECT_EQ(l.max_card, c.max_card);
      }
    }
    EXPECT_TRUE(found) << c.domain << "." << c.name;
  }
}

// ---------------------------------------------------------------------------
// InstanceGraph
// ---------------------------------------------------------------------------

TEST(InstanceGraphTest, CreateSetGet) {
  trim::TripleStore store;
  InstanceGraph graph(&store);
  std::string id = *graph.Create("schema:s/Bundle");
  EXPECT_TRUE(graph.Exists(id));
  EXPECT_EQ(*graph.TypeOf(id), "schema:s/Bundle");
  ASSERT_TRUE(graph.SetValue(id, "bundleName", "John").ok());
  EXPECT_EQ(*graph.GetValue(id, "bundleName"), "John");
  ASSERT_TRUE(graph.SetValue(id, "bundleName", "Jane").ok());
  EXPECT_EQ(*graph.GetValue(id, "bundleName"), "Jane");
  EXPECT_TRUE(graph.GetValue(id, "missing").status().IsNotFound());
  EXPECT_TRUE(graph.SetValue("inst:999", "x", "y").IsNotFound());
}

TEST(InstanceGraphTest, ConnectAndQuery) {
  trim::TripleStore store;
  InstanceGraph graph(&store);
  std::string b = *graph.Create("schema:s/Bundle");
  std::string s1 = *graph.Create("schema:s/Scrap");
  std::string s2 = *graph.Create("schema:s/Scrap");
  ASSERT_TRUE(graph.Connect(b, "bundleContent", s1).ok());
  ASSERT_TRUE(graph.Connect(b, "bundleContent", s2).ok());
  EXPECT_EQ(graph.GetConnected(b, "bundleContent"),
            (std::vector<std::string>{s1, s2}));
  EXPECT_TRUE(graph.Connect(b, "bundleContent", "inst:404").IsNotFound());
  ASSERT_TRUE(graph.Disconnect(b, "bundleContent", s1).ok());
  EXPECT_EQ(graph.GetConnected(b, "bundleContent").size(), 1u);
  EXPECT_EQ(graph.InstancesOf("schema:s/Scrap").size(), 2u);
  EXPECT_EQ(graph.AllInstances().size(), 3u);
}

TEST(InstanceGraphTest, DeleteRemovesIncidentTriples) {
  trim::TripleStore store;
  InstanceGraph graph(&store);
  std::string a = *graph.Create("T");
  std::string b = *graph.Create("T");
  ASSERT_TRUE(graph.SetValue(b, "name", "x").ok());
  ASSERT_TRUE(graph.Connect(a, "link", b).ok());
  EXPECT_GT(graph.Delete(b), 0u);
  EXPECT_FALSE(graph.Exists(b));
  // The inbound link from a is gone too.
  EXPECT_TRUE(graph.GetConnected(a, "link").empty());
}

TEST(InstanceGraphTest, CreateWithId) {
  trim::TripleStore store;
  InstanceGraph graph(&store);
  ASSERT_TRUE(graph.CreateWithId("inst:77", "T").ok());
  EXPECT_TRUE(graph.CreateWithId("inst:77", "T").IsAlreadyExists());
  // Generator skips past observed ids.
  std::string next = *graph.Create("T");
  EXPECT_EQ(next, "inst:78");
}

// ---------------------------------------------------------------------------
// Conformance
// ---------------------------------------------------------------------------

class ConformanceTest : public ::testing::Test {
 protected:
  ConformanceTest()
      : model_(BuildBundleScrapModel()),
        schema_(*IdentitySchema(model_, "slimpad")),
        graph_(&store_) {}

  // A minimal conforming bundle+scrap pair.
  std::pair<std::string, std::string> MakeConformingPair() {
    std::string b = *graph_.Create("schema:slimpad/Bundle");
    (void)graph_.SetValue(b, "bundleName", "B");
    (void)graph_.SetValue(b, "bundlePos", "0,0");
    (void)graph_.SetValue(b, "bundleWidth", "10");
    (void)graph_.SetValue(b, "bundleHeight", "10");
    std::string s = *graph_.Create("schema:slimpad/Scrap");
    (void)graph_.SetValue(s, "scrapName", "S");
    (void)graph_.SetValue(s, "scrapPos", "1,1");
    (void)graph_.Connect(b, "bundleContent", s);
    return {b, s};
  }

  ModelDef model_;
  SchemaDef schema_;
  trim::TripleStore store_;
  InstanceGraph graph_;
};

TEST_F(ConformanceTest, ConformingDataPasses) {
  MakeConformingPair();
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  EXPECT_TRUE(report.conforms()) << report.ToString();
  EXPECT_EQ(report.instances_checked, 2u);
}

TEST_F(ConformanceTest, UnknownTypeFlagged) {
  (void)graph_.Create("schema:slimpad/Widget").ValueOrDie();
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kUnknownType);
}

TEST_F(ConformanceTest, UndeclaredPropertyFlagged) {
  auto [b, s] = MakeConformingPair();
  (void)graph_.SetValue(s, "color", "red");
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kUndeclaredProperty);
  EXPECT_EQ(report.violations[0].property, "color");
}

TEST_F(ConformanceTest, WrongObjectKindFlagged) {
  auto [b, s] = MakeConformingPair();
  // bundleName must be a literal; point it at a resource instead.
  (void)store_.SetOne(b, "bundleName", trim::Object::Resource(s));
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  bool seen = false;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kWrongObjectKind) seen = true;
  }
  EXPECT_TRUE(seen) << report.ToString();
}

TEST_F(ConformanceTest, LiteralWhereLinkExpectedFlagged) {
  auto [b, s] = MakeConformingPair();
  (void)store_.Add(
      trim::Triple{b, "nestedBundle", trim::Object::Literal("not a link")});
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWrongObjectKind);
}

TEST_F(ConformanceTest, DanglingLinkFlagged) {
  auto [b, s] = MakeConformingPair();
  (void)store_.Add(
      trim::Triple{b, "nestedBundle", trim::Object::Resource("inst:404")});
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kDanglingLink);
}

TEST_F(ConformanceTest, WrongTargetTypeFlagged) {
  auto [b, s] = MakeConformingPair();
  // nestedBundle must target a Bundle, not a Scrap.
  (void)store_.Add(
      trim::Triple{b, "nestedBundle", trim::Object::Resource(s)});
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWrongTargetType);
}

TEST_F(ConformanceTest, CardinalityViolationsFlagged) {
  std::string b = *graph_.Create("schema:slimpad/Bundle");
  // Missing all four required attributes -> 4 low-cardinality violations.
  ConformanceReport report = CheckConformance(store_, schema_, model_);
  size_t low = 0;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kCardinalityLow) ++low;
  }
  EXPECT_EQ(low, 4u) << report.ToString();

  // Two names -> high violation on the 1..1 connector.
  (void)graph_.AddValue(b, "bundleName", "one");
  (void)graph_.AddValue(b, "bundleName", "two");
  (void)graph_.SetValue(b, "bundlePos", "0,0");
  (void)graph_.SetValue(b, "bundleWidth", "1");
  (void)graph_.SetValue(b, "bundleHeight", "1");
  report = CheckConformance(store_, schema_, model_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kCardinalityHigh);
}

// ---------------------------------------------------------------------------
// Schema-later: induce then check.
// ---------------------------------------------------------------------------

TEST(SchemaLaterTest, InduceFromInstances) {
  trim::TripleStore store;
  InstanceGraph graph(&store);
  // Information-first entry: free type names, no schema yet.
  std::string p1 = *graph.Create("Patient");
  std::string p2 = *graph.Create("Patient");
  std::string m1 = *graph.Create("Med");
  (void)graph.SetValue(p1, "name", "John");
  (void)graph.SetValue(p2, "name", "Mary");
  (void)graph.AddValue(p2, "allergy", "penicillin");
  (void)graph.AddValue(p2, "allergy", "latex");
  (void)graph.Connect(p1, "takes", m1);
  (void)graph.SetValue(m1, "drug", "heparin");

  auto schema = InduceSchema(store, "induced");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->elements().size(), 2u);
  EXPECT_TRUE(schema->elements().count("Patient"));
  EXPECT_TRUE(schema->elements().count("Med"));

  // name: on every patient exactly once -> [1,1] attribute.
  const SchemaConnectorDef* name = nullptr;
  const SchemaConnectorDef* allergy = nullptr;
  const SchemaConnectorDef* takes = nullptr;
  for (const auto& c : schema->connectors()) {
    if (c.name == "name" && c.domain == "Patient") name = &c;
    if (c.name == "allergy") allergy = &c;
    if (c.name == "takes") takes = &c;
  }
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->min_card, 1);
  EXPECT_EQ(name->max_card, 1);
  EXPECT_EQ(name->range, "String");
  ASSERT_NE(allergy, nullptr);
  EXPECT_EQ(allergy->min_card, 0);  // p1 has none
  EXPECT_EQ(allergy->max_card, 2);
  ASSERT_NE(takes, nullptr);
  EXPECT_EQ(takes->range, "Med");
  EXPECT_EQ(takes->model_connector, "link");

  // The instances conform to the schema induced from them.
  ModelDef generic = BuildGenericModel();
  ConformanceReport report = CheckConformance(store, *schema, generic);
  EXPECT_TRUE(report.conforms()) << report.ToString();

  // New nonconforming data is caught by the induced schema.
  std::string p3 = *graph.Create("Patient");
  (void)graph.SetValue(p3, "name", "Bo");
  (void)graph.SetValue(p3, "surprise", "field");
  report = CheckConformance(store, *schema, generic);
  EXPECT_FALSE(report.conforms());
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

TEST(MappingTest, RenamesTypesAndProperties) {
  trim::TripleStore source;
  InstanceGraph graph(&source);
  std::string b = *graph.Create("schema:slimpad/Bundle");
  (void)graph.SetValue(b, "bundleName", "John");
  std::string s = *graph.Create("schema:slimpad/Scrap");
  (void)graph.SetValue(s, "scrapName", "Na 140");
  (void)graph.Connect(b, "bundleContent", s);

  Mapping mapping("pad-to-topicmap");
  ASSERT_TRUE(mapping.AddRule({"schema:slimpad/Bundle", "schema:tm/Topic",
                               {{"bundleName", "topicName"},
                                {"bundleContent", "occurrence"}},
                               false})
                  .ok());
  ASSERT_TRUE(mapping.AddRule({"schema:slimpad/Scrap", "schema:tm/Occurrence",
                               {{"scrapName", "label"}},
                               false})
                  .ok());

  trim::TripleStore target;
  auto stats = mapping.Apply(source, &target);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->instances_mapped, 2u);
  EXPECT_EQ(stats->instances_dropped, 0u);

  InstanceGraph out(&target);
  EXPECT_EQ(*out.TypeOf(b), "schema:tm/Topic");
  EXPECT_EQ(*out.GetValue(b, "topicName"), "John");
  EXPECT_EQ(out.GetConnected(b, "occurrence"),
            (std::vector<std::string>{s}));
  EXPECT_EQ(*out.GetValue(s, "label"), "Na 140");
  // Old property names are gone.
  EXPECT_TRUE(out.GetValue(b, "bundleName").status().IsNotFound());
}

TEST(MappingTest, UnmappedTypesCopiedOrDropped) {
  trim::TripleStore source;
  InstanceGraph graph(&source);
  std::string known = *graph.Create("A");
  std::string stranger = *graph.Create("B");
  (void)graph.SetValue(stranger, "x", "1");

  Mapping copy_mapping("m1");
  ASSERT_TRUE(copy_mapping.AddRule({"A", "A2", {}, false}).ok());
  trim::TripleStore target1;
  auto stats1 = copy_mapping.Apply(source, &target1);
  ASSERT_TRUE(stats1.ok());
  EXPECT_EQ(stats1->instances_mapped, 1u);
  EXPECT_EQ(stats1->instances_copied, 1u);
  InstanceGraph out1(&target1);
  EXPECT_EQ(*out1.TypeOf(stranger), "B");

  Mapping drop_mapping("m2");
  ASSERT_TRUE(drop_mapping.AddRule({"A", "A2", {}, false}).ok());
  drop_mapping.set_drop_unmapped_types(true);
  trim::TripleStore target2;
  auto stats2 = drop_mapping.Apply(source, &target2);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->instances_dropped, 1u);
  InstanceGraph out2(&target2);
  EXPECT_FALSE(out2.Exists(stranger));
}

TEST(MappingTest, DropUnmappedProperties) {
  trim::TripleStore source;
  InstanceGraph graph(&source);
  std::string a = *graph.Create("A");
  (void)graph.SetValue(a, "keep", "1");
  (void)graph.SetValue(a, "drop", "2");

  Mapping mapping("m");
  ASSERT_TRUE(mapping.AddRule({"A", "A", {{"keep", "kept"}}, true}).ok());
  trim::TripleStore target;
  auto stats = mapping.Apply(source, &target);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->properties_dropped, 1u);
  InstanceGraph out(&target);
  EXPECT_EQ(*out.GetValue(a, "kept"), "1");
  EXPECT_TRUE(out.GetValue(a, "drop").status().IsNotFound());
}

TEST(MappingTest, RuleValidations) {
  Mapping mapping("m");
  ASSERT_TRUE(mapping.AddRule({"A", "B", {}, false}).ok());
  EXPECT_TRUE(mapping.AddRule({"A", "C", {}, false}).IsAlreadyExists());
  EXPECT_TRUE(mapping.AddRule({"", "C", {}, false}).IsInvalidArgument());
  trim::TripleStore source;
  EXPECT_TRUE(mapping.Apply(source, nullptr).status().IsInvalidArgument());
}

TEST(MappingTest, ModelToModelMappingOverConstructLayer) {
  // The same machinery maps *model-level* resources: rename every instance
  // typed by one model's construct into another model's construct space.
  trim::TripleStore source;
  InstanceGraph graph(&source);
  std::string e = *graph.Create("model:er/EntityType");
  (void)graph.SetValue(e, "name", "Patient");

  Mapping mapping("er-to-oo");
  ASSERT_TRUE(
      mapping.AddRule({"model:er/EntityType", "model:oo/Class", {}, false})
          .ok());
  trim::TripleStore target;
  ASSERT_TRUE(mapping.Apply(source, &target).ok());
  InstanceGraph out(&target);
  EXPECT_EQ(*out.TypeOf(e), "model:oo/Class");
  EXPECT_EQ(*out.GetValue(e, "name"), "Patient");
}

}  // namespace
}  // namespace slim::store
