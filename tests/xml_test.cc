#include <gtest/gtest.h>

#include "doc/xml/dom.h"
#include "doc/xml/parser.h"
#include "doc/xml/path.h"
#include "doc/xml/writer.h"

namespace slim::doc::xml {
namespace {

std::unique_ptr<Document> MustParse(std::string_view text,
                                    const ParseOptions& opts = {}) {
  auto r = ParseXml(text, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(*r) : nullptr;
}

TEST(XmlParseTest, MinimalDocument) {
  auto doc = MustParse("<root/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_TRUE(doc->root()->children().empty());
  EXPECT_EQ(doc->ElementCount(), 1u);
}

TEST(XmlParseTest, NestedElementsAndText) {
  auto doc = MustParse("<a><b>hello</b><b>world</b><c/></a>");
  ASSERT_NE(doc, nullptr);
  std::vector<Element*> bs = doc->root()->ChildElements("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->InnerText(), "hello");
  EXPECT_EQ(bs[1]->InnerText(), "world");
  EXPECT_EQ(doc->root()->InnerText(), "helloworld");
  EXPECT_EQ(doc->ElementCount(), 4u);
}

TEST(XmlParseTest, Attributes) {
  auto doc = MustParse(
      "<result name=\"Na\" value='142' units=\"mmol/L\"/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(*doc->root()->FindAttribute("name"), "Na");
  EXPECT_EQ(*doc->root()->FindAttribute("value"), "142");
  EXPECT_EQ(doc->root()->FindAttribute("missing"), nullptr);
  EXPECT_EQ(doc->root()->attributes().size(), 3u);
}

TEST(XmlParseTest, EntitiesDecoded) {
  auto doc = MustParse("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</t>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(*doc->root()->FindAttribute("a"), "<&>");
  EXPECT_EQ(doc->root()->InnerText(), "\"x' AB");
}

TEST(XmlParseTest, Utf8CharacterReference) {
  auto doc = MustParse("<t>&#233;</t>");  // é
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->InnerText(), "\xC3\xA9");
}

TEST(XmlParseTest, CData) {
  auto doc = MustParse("<t><![CDATA[<not><parsed> & raw]]></t>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->InnerText(), "<not><parsed> & raw");
}

TEST(XmlParseTest, CommentsSkippedByDefault) {
  auto doc = MustParse("<t><!-- hidden -->visible</t>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->children().size(), 1u);
  ParseOptions keep;
  keep.keep_comments = true;
  auto doc2 = MustParse("<t><!-- hidden -->visible</t>", keep);
  EXPECT_EQ(doc2->root()->children().size(), 2u);
}

TEST(XmlParseTest, PrologAndDoctypeSkipped) {
  auto doc = MustParse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE labReport [ <!ELEMENT x (y)> ]>\n"
      "<!-- header -->\n"
      "<labReport/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->name(), "labReport");
}

TEST(XmlParseTest, WhitespaceStrippingOption) {
  const char* src = "<a>\n  <b>x</b>\n</a>";
  auto stripped = MustParse(src);
  EXPECT_EQ(stripped->root()->children().size(), 1u);
  ParseOptions keep;
  keep.strip_whitespace_text = false;
  auto kept = MustParse(src, keep);
  EXPECT_EQ(kept->root()->children().size(), 3u);
}

TEST(XmlParseTest, Rejections) {
  for (const char* bad :
       {"", "<a>", "<a></b>", "<a", "<a x></a>", "<a x=\"1></a>", "<a>&nope;</a>",
        "<a></a><b></b>", "<a x=\"1\" x=\"2\"/>", "<a>&#xZZ;</a>",
        "plain text", "<a><b></a></b>"}) {
    EXPECT_FALSE(ParseXml(bad).ok()) << bad;
  }
}

TEST(XmlParseTest, ErrorIncludesLineAndColumn) {
  Status st = ParseXml("<a>\n<b></c>\n</a>").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("2:"), std::string::npos) << st;
}

TEST(XmlWriteTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute("x\"y\nz"), "x&quot;y&#10;z");
}

TEST(XmlWriteTest, ParseWriteFixpoint) {
  const char* src =
      "<report mrn=\"MRN1\"><panel name=\"lytes\"><result name=\"Na\" "
      "value=\"140\">Na 140</result><result name=\"K\" value=\"4.2\">K "
      "4.2</result></panel><note>watch &amp; wait</note></report>";
  auto doc1 = MustParse(src);
  std::string printed1 = WriteXml(*doc1);
  auto doc2 = MustParse(printed1);
  std::string printed2 = WriteXml(*doc2);
  EXPECT_EQ(printed1, printed2);
  EXPECT_EQ(doc1->ElementCount(), doc2->ElementCount());
  EXPECT_EQ(doc2->root()->InnerText().find("watch & wait") !=
                std::string::npos,
            true);
}

TEST(XmlDomTest, BuildProgrammatically) {
  auto doc = Document::Create("labReport");
  Element* panel = doc->root()->AddElement("panel");
  panel->SetAttribute("name", "electrolytes");
  Element* result = panel->AddElement("result");
  result->SetAttribute("name", "Na");
  result->AddText("Na 141");
  EXPECT_EQ(doc->ElementCount(), 3u);
  EXPECT_EQ(result->parent(), panel);
  EXPECT_EQ(panel->parent(), doc->root());
  EXPECT_EQ(doc->root()->parent(), nullptr);
  EXPECT_EQ(panel->FirstChild("result"), result);
  EXPECT_EQ(panel->FirstChild("nope"), nullptr);
}

TEST(XmlDomTest, SetAttributeOverwrites) {
  Element e("x");
  e.SetAttribute("a", "1");
  e.SetAttribute("a", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(*e.FindAttribute("a"), "2");
  EXPECT_TRUE(e.RemoveAttribute("a"));
  EXPECT_FALSE(e.RemoveAttribute("a"));
}

TEST(XmlDomTest, RemoveChild) {
  Element e("x");
  e.AddElement("a");
  e.AddElement("b");
  ASSERT_TRUE(e.RemoveChild(0).ok());
  EXPECT_EQ(e.ChildElements().size(), 1u);
  EXPECT_EQ(e.ChildElements()[0]->name(), "b");
  EXPECT_TRUE(e.RemoveChild(5).IsOutOfRange());
}

TEST(XmlDomTest, OrdinalAmongSiblings) {
  auto doc = MustParse("<a><b/><c/><b/><b/></a>");
  std::vector<Element*> bs = doc->root()->ChildElements("b");
  EXPECT_EQ(bs[0]->OrdinalAmongSiblings(), 1);
  EXPECT_EQ(bs[1]->OrdinalAmongSiblings(), 2);
  EXPECT_EQ(bs[2]->OrdinalAmongSiblings(), 3);
  EXPECT_EQ(doc->root()->ChildElements("c")[0]->OrdinalAmongSiblings(), 1);
  EXPECT_EQ(doc->root()->OrdinalAmongSiblings(), 1);
}

// ---------------------------------------------------------------------------
// XmlPath
// ---------------------------------------------------------------------------

TEST(XmlPathTest, ParseAndToString) {
  auto p = XmlPath::Parse("/report/patient[2]/labs/result[5]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps().size(), 4u);
  EXPECT_EQ(p->steps()[1].name, "patient");
  EXPECT_EQ(p->steps()[1].ordinal, 2);
  EXPECT_EQ(p->steps()[2].ordinal, 0);
  EXPECT_EQ(p->ToString(), "/report/patient[2]/labs/result[5]");
}

TEST(XmlPathTest, ParseRejections) {
  for (const char* bad : {"", "relative/path", "/", "/a//b", "/a[0]", "/a[x]",
                          "/a[1", "/a]1["}) {
    EXPECT_FALSE(XmlPath::Parse(bad).ok()) << bad;
  }
}

TEST(XmlPathTest, ResolveWalksOrdinals) {
  auto doc = MustParse("<r><p><x>one</x></p><p><x>two</x><x>three</x></p></r>");
  auto path = XmlPath::Parse("/r/p[2]/x[2]");
  ASSERT_TRUE(path.ok());
  auto elem = path->Resolve(doc.get());
  ASSERT_TRUE(elem.ok()) << elem.status();
  EXPECT_EQ((*elem)->InnerText(), "three");
}

TEST(XmlPathTest, ResolveDefaultsOrdinalToOne) {
  auto doc = MustParse("<r><p>first</p><p>second</p></r>");
  auto elem = XmlPath::Parse("/r/p")->Resolve(doc.get());
  ASSERT_TRUE(elem.ok());
  EXPECT_EQ((*elem)->InnerText(), "first");
}

TEST(XmlPathTest, ResolveFailures) {
  auto doc = MustParse("<r><p/></r>");
  EXPECT_TRUE(XmlPath::Parse("/other/p")->Resolve(doc.get()).status()
                  .IsNotFound());
  EXPECT_TRUE(XmlPath::Parse("/r/q")->Resolve(doc.get()).status()
                  .IsNotFound());
  EXPECT_TRUE(XmlPath::Parse("/r/p[2]")->Resolve(doc.get()).status()
                  .IsNotFound());
  EXPECT_TRUE(XmlPath::Parse("/r/*")->Resolve(doc.get()).status()
                  .IsInvalidArgument());
}

TEST(XmlPathTest, FindAllWildcardsAndUnspecifiedOrdinals) {
  auto doc = MustParse(
      "<r><p><x/><x/></p><q><x/></q><p><x/></p></r>");
  EXPECT_EQ(XmlPath::Parse("/r/p/x")->FindAll(doc.get()).size(), 3u);
  EXPECT_EQ(XmlPath::Parse("/r/*/x")->FindAll(doc.get()).size(), 4u);
  EXPECT_EQ(XmlPath::Parse("/r/p[2]/x")->FindAll(doc.get()).size(), 1u);
  EXPECT_EQ(XmlPath::Parse("/r/nope/x")->FindAll(doc.get()).size(), 0u);
}

TEST(XmlPathTest, PathOfIsInverseOfResolve) {
  auto doc = MustParse(
      "<report><panel><result/><result/></panel>"
      "<panel><result/><result/><result/></panel></report>");
  // Every element's canonical path resolves back to that element.
  doc->root()->Visit([&](Element* e) {
    XmlPath path = PathOf(e);
    auto back = path.Resolve(doc.get());
    ASSERT_TRUE(back.ok()) << path.ToString() << ": " << back.status();
    EXPECT_EQ(*back, e) << path.ToString();
  });
}

// Property sweep: PathOf/Resolve inverse over generated trees of varying
// shape.
class XmlPathRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(XmlPathRoundTrip, EveryElementAddressable) {
  int n = GetParam();
  auto doc = Document::Create("root");
  // Deterministic tree: breadth n%4+1, depth 3, duplicated names.
  Element* level1 = doc->root();
  for (int i = 0; i <= n % 4; ++i) {
    Element* child = level1->AddElement(i % 2 ? "a" : "b");
    for (int j = 0; j <= (n + i) % 3; ++j) {
      Element* grand = child->AddElement("a");
      if ((n + j) % 2) grand->AddElement("leaf");
    }
  }
  size_t count = 0;
  doc->root()->Visit([&](Element* e) {
    ++count;
    auto back = PathOf(e).Resolve(doc.get());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, e);
  });
  EXPECT_EQ(count, doc->ElementCount());
}

INSTANTIATE_TEST_SUITE_P(Sweep, XmlPathRoundTrip, ::testing::Range(0, 24));

}  // namespace
}  // namespace slim::doc::xml
