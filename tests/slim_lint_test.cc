// Golden-fixture tests for tools/slim_lint: every rule is proven by a
// seeded-violation fixture under tools/slim_lint/testdata/tree, asserting
// the exact diagnostics and the non-zero exit code, plus unit tests over
// the catalog matcher and the per-file scanners.

#include "lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace slim::lint {
namespace {

// Injected by tests/CMakeLists.txt.
#ifndef SLIM_LINT_TESTDATA
#error "SLIM_LINT_TESTDATA must be defined"
#endif
#ifndef SLIM_REPO_ROOT
#error "SLIM_REPO_ROOT must be defined"
#endif

std::filesystem::path Testdata() { return SLIM_LINT_TESTDATA; }

Catalog FixtureCatalog() {
  Catalog catalog;
  Status st = LoadCatalog(Testdata() / "catalog.md", &catalog);
  EXPECT_TRUE(st.ok()) << st;
  return catalog;
}

// ---------------------------------------------------------------------------
// Catalog parsing and matching
// ---------------------------------------------------------------------------

TEST(LintCatalog, ParsesOnlyTypedTableRows) {
  Catalog catalog = FixtureCatalog();
  // 3 (brace) + 2 + 1 + 1 + 1 + 1 + 1 + 2 (brace) + 1 + 2 (store)
  // + 3 (nested brace) + 2 (cpuprof brace) + 1 (evicted) = 21; the
  // untyped `not.a.metric` row is skipped.
  EXPECT_EQ(catalog.size(), 21u);
  EXPECT_TRUE(catalog.MatchesExact("obs.cpuprof.samples"));
  EXPECT_TRUE(catalog.MatchesExact("obs.profile.evicted"));
  EXPECT_FALSE(catalog.MatchesExact("obs.profile.evicted.total"));
  EXPECT_FALSE(catalog.MatchesExact("not.a.metric"));
}

TEST(LintCatalog, StoreShardAndEpochFamilies) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(catalog.MatchesExact("slim.store.shard.skew_x100"));
  EXPECT_TRUE(catalog.MatchesExact("slim.store.epoch.oldest_pin"));
  EXPECT_FALSE(catalog.MatchesExact("slim.store.shard"));
}

TEST(LintCatalog, BraceExpansion) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(catalog.MatchesExact("trim.add.ok"));
  EXPECT_TRUE(catalog.MatchesExact("trim.add.duplicate"));
  EXPECT_TRUE(catalog.MatchesExact("trim.add.invalid"));
  EXPECT_FALSE(catalog.MatchesExact("trim.add"));
  EXPECT_FALSE(catalog.MatchesExact("trim.add.bogus"));
}

TEST(LintCatalog, SegmentWildcards) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(catalog.MatchesExact("mark.resolve.module.xml.context"));
  EXPECT_TRUE(catalog.MatchesExact("mark.resolve.module.excel.cell"));
  // <type> is exactly one segment.
  EXPECT_FALSE(catalog.MatchesExact("mark.resolve.module.xml"));
}

TEST(LintCatalog, StarSuffix) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(catalog.MatchesExact("workload.open_all_scraps.calls"));
  EXPECT_TRUE(catalog.MatchesExact("workload.open_all_scraps.latency_us"));
  EXPECT_FALSE(catalog.MatchesExact("workload.open_all"));
}

TEST(LintCatalog, PrefixMatching) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(catalog.MatchesPrefix("mark.resolve.module."));
  EXPECT_TRUE(catalog.MatchesPrefix("trim.add."));
  EXPECT_FALSE(catalog.MatchesPrefix("slimpad.gesture."));
}

TEST(LintCatalog, NestedBracesWithWordSegment) {
  Catalog catalog = FixtureCatalog();
  // `pad.{open,{save,load}.disk}.<kind>` expands to pad.open.<kind>,
  // pad.save.disk.<kind> and pad.load.disk.<kind>: the inner alternative's
  // comma must split the inner brace only.
  EXPECT_TRUE(catalog.MatchesExact("pad.open.scrap"));
  EXPECT_TRUE(catalog.MatchesExact("pad.save.disk.scrap"));
  EXPECT_TRUE(catalog.MatchesExact("pad.load.disk.bundle"));
  EXPECT_FALSE(catalog.MatchesExact("pad.save.scrap"));
  EXPECT_FALSE(catalog.MatchesExact("pad.open"));
  EXPECT_FALSE(catalog.MatchesExact("pad.open.two.segments"));
}

TEST(LintCatalog, EmptySegmentsNeverMatchExactly) {
  Catalog catalog = FixtureCatalog();
  EXPECT_FALSE(catalog.MatchesExact("trim.add."));
  EXPECT_FALSE(catalog.MatchesExact(".trim.add.ok"));
  EXPECT_FALSE(catalog.MatchesExact("trim..ok"));
  EXPECT_FALSE(catalog.MatchesExact(""));
}

TEST(LintCatalog, TrailingDotPrefixRequiresMoreSegments) {
  Catalog catalog = FixtureCatalog();
  // "name." means "some metric continues under name": true where a pattern
  // has further segments, false where the pattern ends at the same spot.
  EXPECT_TRUE(catalog.MatchesPrefix("trim.add."));
  EXPECT_TRUE(catalog.MatchesPrefix("slim.store.shard."));
  EXPECT_FALSE(catalog.MatchesPrefix("mark.create."));
  EXPECT_FALSE(catalog.MatchesPrefix("trim.add.ok."));
  // A partial final segment still prefix-matches textually.
  EXPECT_TRUE(catalog.MatchesPrefix("trim.vi"));
  EXPECT_FALSE(catalog.MatchesPrefix("trim.vx"));
}

TEST(LintCatalog, MissingFileIsAnError) {
  Catalog catalog;
  Status st = LoadCatalog(Testdata() / "does_not_exist.md", &catalog);
  EXPECT_TRUE(st.IsIoError());
}

TEST(LintCatalog, RealCatalogLoadsAndCoversKnownNames) {
  Catalog catalog;
  Status st = LoadCatalog(std::filesystem::path(SLIM_REPO_ROOT) / "DESIGN.md",
                          &catalog);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_GT(catalog.size(), 40u);
  EXPECT_TRUE(catalog.MatchesExact("trim.add.ok"));
  EXPECT_TRUE(catalog.MatchesExact("slim.query.execute"));
  EXPECT_TRUE(catalog.MatchesExact("log.events.error"));
  EXPECT_TRUE(catalog.MatchesExact("obs.cpuprof.samples_idle"));
  EXPECT_TRUE(catalog.MatchesExact("obs.profile.evicted"));
  EXPECT_TRUE(catalog.MatchesPrefix("mark.create.module."));
}

// ---------------------------------------------------------------------------
// Per-rule scanning (inline sources)
// ---------------------------------------------------------------------------

std::vector<std::string> Lint(const std::string& path,
                              const std::string& source,
                              const Catalog& catalog) {
  std::vector<Diagnostic> diags;
  LintFile(path, source, catalog, &diags);
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.push_back(FormatDiagnostic(d));
  return out;
}

TEST(LintLayerDag, UtilIncludesNothingAbove) {
  Catalog catalog = FixtureCatalog();
  auto diags =
      Lint("src/util/x.h", "#include \"obs/metrics.h\"\n", catalog);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0],
            "src/util/x.h:1: [layer-dag] layer 'util' must not include "
            "\"obs/metrics.h\" (allowed layers: util)");
}

TEST(LintLayerDag, TrimNeverReachesUp) {
  Catalog catalog = FixtureCatalog();
  for (const char* bad :
       {"slim/model.h", "dmi/dynamic_dmi.h", "slimpad/slimpad_app.h"}) {
    auto diags = Lint("src/trim/x.cc",
                      "#include \"" + std::string(bad) + "\"\n", catalog);
    EXPECT_EQ(diags.size(), 1u) << bad;
  }
  // Its own layer and everything it links stay allowed.
  for (const char* good :
       {"trim/triple.h", "doc/xml/dom.h", "obs/obs.h", "util/status.h"}) {
    auto diags = Lint("src/trim/x.cc",
                      "#include \"" + std::string(good) + "\"\n", catalog);
    EXPECT_TRUE(diags.empty()) << good;
  }
}

TEST(LintLayerDag, SystemAndTestFilesUnconstrained) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(Lint("src/util/x.h", "#include <vector>\n", catalog).empty());
  EXPECT_TRUE(
      Lint("tests/x_test.cc", "#include \"slimpad/slimpad_app.h\"\n", catalog)
          .empty());
}

TEST(LintMacroArgs, FlagsIncrementDecrementAndAssignment) {
  Catalog catalog = FixtureCatalog();
  EXPECT_EQ(Lint("tests/t.cc", "void f(int n){SLIM_OBS_COUNT_N(\"a.b\", ++n);}",
                 catalog)
                .size(),
            1u);
  EXPECT_EQ(Lint("tests/t.cc", "void f(int n){SLIM_OBS_COUNT_N(\"a.b\", n--);}",
                 catalog)
                .size(),
            1u);
  EXPECT_EQ(Lint("tests/t.cc",
                 "void f(int n){SLIM_OBS_HISTOGRAM(\"a.b\", n = n + 1);}",
                 catalog)
                .size(),
            1u);
  EXPECT_EQ(Lint("tests/t.cc",
                 "void f(int n){SLIM_OBS_HISTOGRAM(\"a.b\", n += 1);}", catalog)
                .size(),
            1u);
}

TEST(LintMacroArgs, ComparisonsAndStringsAreClean) {
  Catalog catalog = FixtureCatalog();
  EXPECT_TRUE(Lint("tests/t.cc",
                   "void f(int n){SLIM_OBS_HISTOGRAM(\"a.b\", n <= 1);}",
                   catalog)
                  .empty());
  EXPECT_TRUE(Lint("tests/t.cc",
                   "void f(int n){SLIM_OBS_HISTOGRAM(\"a.b\", n == 1);}",
                   catalog)
                  .empty());
  EXPECT_TRUE(
      Lint("tests/t.cc",
           "void f(){SLIM_OBS_LOG(kWarn, \"trim\", \"a = b ++ c\");}", catalog)
          .empty());
}

TEST(LintMacroArgs, MacroDefinitionsDoNotFire) {
  Catalog catalog = FixtureCatalog();
  // The #define in obs/obs.h must not be scanned as a call site.
  EXPECT_TRUE(Lint("src/obs/obs.h",
                   "#define SLIM_OBS_COUNT(name)  \\\n"
                   "  do { reg().GetCounter(name)->Increment(); } while (0)\n",
                   catalog)
                  .empty());
}

TEST(LintNames, LiteralRequiredForCachedMacros) {
  Catalog catalog = FixtureCatalog();
  auto diags =
      Lint("tests/t.cc", "void f(const char* n){SLIM_OBS_COUNT(n);}", catalog);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("must be a string literal"), std::string::npos);
}

TEST(LintNames, CharsetCheckedEverywhereCatalogOnlyInSrc) {
  Catalog catalog = FixtureCatalog();
  // Bad charset fires even in tests/.
  EXPECT_EQ(
      Lint("tests/t.cc", "void f(){SLIM_OBS_COUNT(\"BadName\");}", catalog)
          .size(),
      1u);
  // A name outside the catalog is fine in tests/ but not in src/.
  EXPECT_TRUE(
      Lint("tests/t.cc", "void f(){SLIM_OBS_COUNT(\"foo.bar\");}", catalog)
          .empty());
  EXPECT_EQ(
      Lint("src/trim/t.cc", "void f(){SLIM_OBS_COUNT(\"foo.bar\");}", catalog)
          .size(),
      1u);
}

TEST(LintNames, EmissionHelpersAreChecked) {
  Catalog catalog = FixtureCatalog();
  EXPECT_EQ(Lint("src/slimpad/t.cc",
                 "void f(){CountGesture(\"slimpad.not.in.catalog\");}", catalog)
                .size(),
            1u);
  EXPECT_TRUE(Lint("src/workload/t.cc",
                   "void f(){Count(\"workload.open_all_scraps.calls\");}",
                   catalog)
                  .empty());
  // Non-literal helper arguments (declarations, forwarding) are skipped.
  EXPECT_TRUE(Lint("src/obs/t.cc",
                   "Counter* GetCounter(const std::string& name);", catalog)
                  .empty());
}

// ---------------------------------------------------------------------------
// raw-mutex rule
// ---------------------------------------------------------------------------

TEST(LintRawMutex, FlagsDeclarationsAndHonorsSuppression) {
  Catalog catalog = FixtureCatalog();
  std::vector<Diagnostic> diags;
  LintFile("src/obs/x.cc",
           "std::mutex a;\n"
           "mutable std::shared_mutex b;\n"
           "std::mutex c;  // slim-lint: allow(raw-mutex)\n"
           "util::InstrumentedMutex d{\"obs.x\"};\n"
           "std::lock_guard<std::mutex> lock(a);\n"
           "std::mutex* borrowed = &a;\n",
           catalog, &diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[0].rule, "raw-mutex");
  EXPECT_EQ(diags[1].line, 2);
}

TEST(LintRawMutex, CommentedDeclarationsDoNotFire) {
  Catalog catalog = FixtureCatalog();
  std::vector<Diagnostic> diags;
  LintFile("src/trim/x.cc", "// std::mutex old_way;\n", catalog, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(LintRawMutex, OnlyInstrumentedLayers) {
  Catalog catalog = FixtureCatalog();
  std::vector<Diagnostic> diags;
  // util *implements* the instrumentation; tests and bench are free to use
  // plain mutexes.
  LintFile("src/util/x.cc", "std::mutex a;\n", catalog, &diags);
  LintFile("tests/x.cc", "std::mutex a;\n", catalog, &diags);
  LintFile("bench/x.cc", "std::mutex a;\n", catalog, &diags);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Golden fixture tree: exact diagnostics, non-zero exit
// ---------------------------------------------------------------------------

TEST(LintTreeFixtures, ExactDiagnosticsAndExitCode) {
  Options options;
  options.root = Testdata() / "tree";
  options.catalog_path = Testdata() / "catalog.md";
  std::vector<Diagnostic> diags;
  Status st = LintTree(options, &diags);
  ASSERT_TRUE(st.ok()) << st;

  std::vector<std::string> got;
  got.reserve(diags.size());
  for (const Diagnostic& d : diags) got.push_back(FormatDiagnostic(d));

  const std::vector<std::string> want = {
      "src/obs/bad_cpuprof_names.cc:8: [obs-name] SLIM_OBS_COUNT name "
      "\"obs.cpuprof.flamegraphs\" is not in the DESIGN.md metric-name "
      "catalog",
      "src/obs/bad_cpuprof_names.cc:10: [obs-name] SLIM_OBS_COUNT name "
      "\"obs.profile.evicted.total\" is not in the DESIGN.md metric-name "
      "catalog",
      "src/obs/bad_mutex.cc:9: [raw-mutex] raw std::mutex declared in "
      "instrumented layer 'obs'; use util::InstrumentedMutex with a named "
      "lock site, or annotate the line with '// slim-lint: "
      "allow(raw-mutex)'",
      "src/obs/bad_mutex.cc:10: [raw-mutex] raw std::mutex declared in "
      "instrumented layer 'obs'; use util::InstrumentedMutex with a named "
      "lock site, or annotate the line with '// slim-lint: "
      "allow(raw-mutex)'",
      "src/obs/bad_slo_names.cc:7: [obs-name] SLIM_OBS_COUNT name "
      "\"slim.slo.bogus.metric\" is not in the DESIGN.md metric-name "
      "catalog",
      "src/obs/bad_slo_names.cc:9: [obs-name] SLIM_OBS_HEARTBEAT name "
      "\"obs.bogus_subsystem\" is not in the DESIGN.md metric-name "
      "catalog",
      "src/trim/bad_layering.cc:3: [layer-dag] layer 'trim' must not "
      "include \"slim/model.h\" (allowed layers: doc, obs, trim, util)",
      "src/trim/bad_macro_args.cc:8: [obs-macro-arg] SLIM_OBS_COUNT_N "
      "argument '++retries' uses '++' (obs macros compile out under "
      "SLIM_ENABLE_OBS=OFF; arguments must be side-effect free)",
      "src/trim/bad_macro_args.cc:9: [obs-macro-arg] SLIM_OBS_HISTOGRAM "
      "argument 'total = total + 1' uses '=' (obs macros compile out under "
      "SLIM_ENABLE_OBS=OFF; arguments must be side-effect free)",
      "src/trim/bad_names.cc:7: [obs-name] SLIM_OBS_COUNT name "
      "\"Trim.Add.OK\" does not match [a-z0-9._]+",
      "src/trim/bad_names.cc:8: [obs-name] SLIM_OBS_COUNT name "
      "\"trim.nonexistent.metric\" is not in the DESIGN.md metric-name "
      "catalog",
      "src/trim/bad_names.cc:9: [obs-name] SLIM_OBS_COUNT name "
      "'runtime_name.c_str()' must be a string literal (the "
      "Counter*/Histogram* is cached per call site; use SLIM_OBS_COUNT_DYN "
      "for runtime names)",
      "src/trim/bad_names.cc:10: [obs-name] SLIM_OBS_COUNT_DYN name "
      "'runtime_name + \".ok\"' should start with a string-literal prefix "
      "so the catalog can be checked",
      "src/util/bad_layering.h:6: [layer-dag] layer 'util' must not "
      "include \"obs/metrics.h\" (allowed layers: util)",
      "src/obs/bad_blocking.cc:21: [lock-across-blocking] lock on "
      "'obs.bad.flusher' held across blocking call 'sleep_for()' — every "
      "contender stalls on the site; release the lock before blocking or "
      "add '// slim-lint: allow(lock-across-blocking) -- <why>'",
      "src/trim/bad_unguarded.cc:19: [guarded-by-coverage] mutable field "
      "'hits_' of 'BadCache' (which owns InstrumentedMutex "
      "'trim.bad.cache') lacks GUARDED_BY(...); name the guarding mutex or "
      "add '// slim-lint: allow(unguarded) -- <why>'",
      "src/trim/bad_unguarded.cc:20: [guarded-by-coverage] mutable field "
      "'entries_' of 'BadCache' (which owns InstrumentedMutex "
      "'trim.bad.cache') lacks GUARDED_BY(...); name the guarding mutex or "
      "add '// slim-lint: allow(unguarded) -- <why>'",
      "src/slim/bad_snapshot.cc:12: [snapshot-discipline] read path "
      "'SelectEach' is reachable without a live TripleStore::Snapshot (no "
      "pin, snapshot parameter, BeginRead or writer lock on any call "
      "path); pin a snapshot before reading or add '// slim-lint: "
      "allow(snapshot-discipline) -- <why>'",
      "src/slim/bad_snapshot.cc:23: [snapshot-discipline] "
      "TripleStore::Snapshot taken at line 22 is still live around "
      "ApplyBatch — a live pin stalls epoch reclamation; end the snapshot "
      "first or add '// slim-lint: allow(snapshot-discipline) -- <why>'",
      "src/trim/bad_lock_order.cc:21: [lock-order] lock-order cycle "
      "trim.bad.alpha -> trim.bad.beta -> trim.bad.alpha — two threads "
      "taking these sites in opposite orders deadlock; witnesses: "
      "trim.bad.alpha -> trim.bad.beta at src/trim/bad_lock_order.cc:21 "
      "(OrderPair::Forward); trim.bad.beta -> trim.bad.alpha at "
      "src/trim/bad_lock_order.cc:26 (OrderPair::Backward)",
  };
  EXPECT_EQ(got, want);

  // The CLI wrapper reports findings through its exit code.
  EXPECT_EQ(RunLint(options), 1);
}

TEST(LintTreeFixtures, RuleFilterSelectsOneRule) {
  Options options;
  options.root = Testdata() / "tree";
  options.catalog_path = Testdata() / "catalog.md";
  std::vector<Diagnostic> diags;
  ASSERT_TRUE(LintTree(options, &diags).ok());

  // --rule filtering happens in RunLint; the seeded tree has exactly one
  // lock-order finding and none for an unknown rule name.
  options.rules = {"lock-order"};
  EXPECT_EQ(RunLint(options), 1);
  options.rules = {"no-such-rule"};
  EXPECT_EQ(RunLint(options), 0);
}

TEST(LintExitCodes, MissingRootIsAnIoError) {
  Options options;
  options.root = Testdata() / "no_such_dir";
  options.catalog_path = Testdata() / "catalog.md";
  EXPECT_EQ(RunLint(options), 2);
}

TEST(LintExitCodes, FileAsRootIsAnIoError) {
  Options options;
  options.root = Testdata() / "catalog.md";  // a file, not a directory
  options.catalog_path = Testdata() / "catalog.md";
  EXPECT_EQ(RunLint(options), 2);
}

TEST(LintExitCodes, MissingCatalogIsAnIoError) {
  Options options;
  options.root = Testdata() / "tree";
  options.catalog_path = Testdata() / "no_such_catalog.md";
  EXPECT_EQ(RunLint(options), 2);
}

TEST(LintJson, EscapesAndShapesDiagnostics) {
  std::vector<Diagnostic> diags;
  diags.push_back({"src/a.cc", 3, "raw-mutex", "say \"hi\" to a\\b"});
  diags.push_back({"src/b.cc", 7, "lock-order", "plain"});
  EXPECT_EQ(DiagnosticsToJson(diags),
            "[\n"
            "  {\"file\": \"src/a.cc\", \"line\": 3, \"rule\": \"raw-mutex\","
            " \"message\": \"say \\\"hi\\\" to a\\\\b\"},\n"
            "  {\"file\": \"src/b.cc\", \"line\": 7, \"rule\": "
            "\"lock-order\", \"message\": \"plain\"}\n"
            "]\n");
  EXPECT_EQ(DiagnosticsToJson({}), "[]\n");
}

TEST(LintTreeFixtures, RealTreeIsClean) {
  Options options;
  options.root = SLIM_REPO_ROOT;
  std::vector<Diagnostic> diags;
  Status st = LintTree(options, &diags);
  ASSERT_TRUE(st.ok()) << st;
  for (const Diagnostic& d : diags) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
  EXPECT_EQ(RunLint(options), 0);
}

}  // namespace
}  // namespace slim::lint
