// Tests for the diagnostics layer built on the obs substrate: shared JSON
// escaping, structured logging, the span profiler, the failure flight
// recorder (incl. the util::Status error hook and the persistence error
// path), Prometheus exposition and a real-socket StatsServer scrape. Like
// obs_test.cc, everything here is library-level and must pass under both
// SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "trim/persistence.h"
#include "trim/triple_store.h"

namespace slim::obs {
namespace {

// ---------------------------------------------------------------------------
// Shared JSON escaping
// ---------------------------------------------------------------------------

TEST(EscapeJson, ControlCharactersAndQuotes) {
  EXPECT_EQ(EscapeJson("plain"), "plain");
  EXPECT_EQ(EscapeJson("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(EscapeJson("line\nbreak\tand\rmore"),
            "line\\nbreak\\tand\\rmore");
  EXPECT_EQ(EscapeJson(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonQuote("x"), "\"x\"");
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

TEST(Log, DeliversEventsWithFieldsAndCountsPerLevel) {
  MetricsRegistry registry;
  Logger logger;
  logger.set_registry(&registry);
  RingBufferLogSink sink;
  logger.AddSink(&sink);

  logger.Log(LogLevel::kInfo, "trim", "store loaded",
             {{"path", "/tmp/x"}, {"triples", "42"}});
  logger.Log(LogLevel::kError, "mark", "resolve failed");

  std::vector<LogEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].layer, "trim");
  EXPECT_EQ(events[0].message, "store loaded");
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_EQ(events[0].fields[0].first, "path");
  EXPECT_EQ(events[0].fields[1].second, "42");
  EXPECT_EQ(events[1].level, LogLevel::kError);
  EXPECT_GE(events[1].timestamp_ns, events[0].timestamp_ns);

  EXPECT_EQ(registry.CounterValue("log.events.info"), 1u);
  EXPECT_EQ(registry.CounterValue("log.events.error"), 1u);
  EXPECT_EQ(logger.events_logged(), 2u);
  logger.RemoveSink(&sink);
}

TEST(Log, MinLevelFiltersBeforeCountingAndSinks) {
  MetricsRegistry registry;
  Logger logger;
  logger.set_registry(&registry);
  RingBufferLogSink sink;
  logger.AddSink(&sink);
  logger.set_min_level(LogLevel::kWarn);

  logger.Log(LogLevel::kDebug, "slim", "noise");
  logger.Log(LogLevel::kInfo, "slim", "still noise");
  logger.Log(LogLevel::kWarn, "slim", "kept");

  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(registry.CounterValue("log.events.debug"), 0u);
  EXPECT_EQ(registry.CounterValue("log.events.warn"), 1u);
  EXPECT_EQ(logger.events_logged(), 1u);
}

TEST(Log, RingBufferEvictsOldest) {
  Logger logger;
  logger.set_registry(nullptr);
  RingBufferLogSink sink(/*capacity=*/2);
  logger.AddSink(&sink);
  for (int i = 0; i < 5; ++i) {
    logger.Log(LogLevel::kInfo, "t", "m" + std::to_string(i));
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.Events()[0].message, "m3");
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Log, JsonlSinkEscapesControlCharacters) {
  std::string path = ::testing::TempDir() + "obs_diag_log.jsonl";
  std::remove(path.c_str());
  {
    Logger logger;
    logger.set_registry(nullptr);
    JsonlFileLogSink sink(path);
    ASSERT_TRUE(sink.ok());
    logger.AddSink(&sink);
    logger.Log(LogLevel::kWarn, "trim", "multi\nline\tmessage",
               {{"k", "quote\"value"}});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("multi\\nline\\tmessage"), std::string::npos);
  EXPECT_NE(line.find("quote\\\"value"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one line
  std::remove(path.c_str());
}

TEST(Log, UnopenablePathDiscardsWithoutCrashing) {
  JsonlFileLogSink sink("/nonexistent-dir-xyz/log.jsonl");
  EXPECT_FALSE(sink.ok());
  LogEvent event;
  event.message = "dropped";
  sink.OnLogEvent(event);  // no crash
}

#if SLIM_OBS_ENABLED
TEST(Log, MacroRoutesThroughDefaultLogger) {
  RingBufferLogSink sink;
  DefaultLogger().AddSink(&sink);
  SLIM_OBS_LOG(kInfo, "test", "no fields");
  SLIM_OBS_LOG(kWarn, "test", "with fields", {{"a", "1"}, {"b", "2"}});
  DefaultLogger().RemoveSink(&sink);
  std::vector<LogEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].fields.size(), 0u);
  ASSERT_EQ(events[1].fields.size(), 2u);
  EXPECT_EQ(events[1].fields[1].first, "b");
}
#endif

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

SpanRecord MakeSpan(uint64_t id, uint64_t parent, int depth,
                    const std::string& name, uint64_t duration_ns) {
  SpanRecord r;
  r.id = id;
  r.parent_id = parent;
  r.depth = depth;
  r.name = name;
  r.duration_ns = duration_ns;
  return r;
}

TEST(SpanProfiler, SelfTimeSubtractsChildren) {
  SpanProfiler profiler;
  // parent(id=1) wraps child(id=2) and child(id=3); children end first.
  profiler.OnSpanEnd(MakeSpan(2, 1, 1, "child", 300));
  profiler.OnSpanEnd(MakeSpan(3, 1, 1, "child", 200));
  profiler.OnSpanEnd(MakeSpan(1, 0, 0, "parent", 1000));

  std::vector<SpanStats> stats = profiler.HotSpots();
  ASSERT_EQ(stats.size(), 2u);
  std::map<std::string, SpanStats> by_name;
  for (const SpanStats& s : stats) by_name[s.name] = s;
  EXPECT_EQ(by_name["parent"].count, 1u);
  EXPECT_EQ(by_name["parent"].total_ns, 1000u);
  EXPECT_EQ(by_name["parent"].self_ns, 500u);  // 1000 - (300 + 200)
  EXPECT_EQ(by_name["child"].count, 2u);
  EXPECT_EQ(by_name["child"].total_ns, 500u);
  EXPECT_EQ(by_name["child"].self_ns, 500u);  // leaves keep everything
  EXPECT_EQ(profiler.span_count(), 3u);
}

TEST(SpanProfiler, ChildLongerThanParentClampsToZero) {
  SpanProfiler profiler;
  profiler.OnSpanEnd(MakeSpan(2, 1, 1, "child", 150));
  profiler.OnSpanEnd(MakeSpan(1, 0, 0, "parent", 100));
  std::vector<SpanStats> stats = profiler.HotSpots();
  for (const SpanStats& s : stats) {
    if (s.name == "parent") {
      EXPECT_EQ(s.self_ns, 0u);
    }
  }
}

TEST(SpanProfiler, CollapsedStacksJoinAncestry) {
  SpanProfiler profiler;
  // a -> b -> c, plus a second root-level a.
  profiler.OnSpanEnd(MakeSpan(3, 2, 2, "c", 100'000));
  profiler.OnSpanEnd(MakeSpan(2, 1, 1, "b", 300'000));
  profiler.OnSpanEnd(MakeSpan(1, 0, 0, "a", 1'000'000));
  profiler.OnSpanEnd(MakeSpan(4, 0, 0, "a", 50'000));

  std::string stacks = profiler.CollapsedStacks();
  // self times in us: c=100, b=200, a(root1)=700, a(root2)=50 → a line 750.
  EXPECT_NE(stacks.find("a;b;c 100\n"), std::string::npos);
  EXPECT_NE(stacks.find("a;b 200\n"), std::string::npos);
  EXPECT_NE(stacks.find("a 750\n"), std::string::npos);
}

TEST(SpanProfiler, AggregatesFromRealTracerNesting) {
  Tracer tracer;
  SpanProfiler profiler;
  tracer.AddSink(&profiler);
  {
    Span outer = tracer.StartSpan("outer");
    { Span inner = tracer.StartSpan("inner"); }
  }
  std::vector<SpanStats> stats = profiler.HotSpots();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t outer_total = 0, outer_self = 0, inner_total = 0;
  for (const SpanStats& s : stats) {
    if (s.name == "outer") {
      outer_total = s.total_ns;
      outer_self = s.self_ns;
    } else {
      inner_total = s.total_ns;
    }
  }
  // outer_self == outer_total - inner_total (exactly, same records).
  EXPECT_EQ(outer_self, outer_total - inner_total);
  std::string table = profiler.HotSpotTable();
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);
  tracer.RemoveSink(&profiler);
}

TEST(SpanProfiler, BoundedRecordsStillAggregateExactly) {
  SpanProfiler profiler(/*max_records=*/1);
  for (uint64_t i = 1; i <= 10; ++i) {
    profiler.OnSpanEnd(MakeSpan(i, 0, 0, "hot", 100));
  }
  EXPECT_EQ(profiler.records_dropped(), 9u);
  std::vector<SpanStats> stats = profiler.HotSpots();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 10u);      // aggregation unaffected by eviction
  EXPECT_EQ(stats[0].total_ns, 1000u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, StatusHookRecordsEveryError) {
  FlightRecorder recorder;
  ASSERT_TRUE(recorder.Install());
  EXPECT_TRUE(recorder.installed());

  uint64_t before = recorder.statuses_recorded();
  Status st = Status::IoError("disk on fire");
  Status copy = st;  // copies must not re-fire the hook
  (void)copy;
  EXPECT_EQ(recorder.statuses_recorded(), before + 1);

  std::vector<LogEvent> events = recorder.RecentEvents();
  ASSERT_FALSE(events.empty());
  const LogEvent& event = events.back();
  EXPECT_EQ(event.level, LogLevel::kError);
  EXPECT_EQ(event.layer, "status");
  EXPECT_EQ(event.message, "disk on fire");
  ASSERT_EQ(event.fields.size(), 1u);
  EXPECT_EQ(event.fields[0].second, "IoError");

  recorder.Uninstall();
  EXPECT_FALSE(recorder.installed());
  Status after = Status::NotFound("unrecorded");
  EXPECT_EQ(recorder.statuses_recorded(), before + 1);
}

TEST(FlightRecorder, OnlyOneRecorderInstallsAtATime) {
  FlightRecorder first;
  FlightRecorder second;
  ASSERT_TRUE(first.Install());
  EXPECT_FALSE(second.Install());
  EXPECT_TRUE(first.Install());  // re-install of the owner is fine
  first.Uninstall();
  EXPECT_TRUE(second.Install());
  second.Uninstall();
}

TEST(FlightRecorder, PersistenceIoErrorProducesFullBundle) {
  FlightRecorder& recorder = DefaultFlightRecorder();
  recorder.Clear();
  ASSERT_TRUE(recorder.Install());
  std::string bundle_path = ::testing::TempDir() + "obs_diag_bundle.json";
  std::remove(bundle_path.c_str());
  recorder.set_dump_path(bundle_path);

  // Some span activity so the bundle has a trace window (the recorder is a
  // sink of the default tracer while installed).
  { Span s = DefaultTracer().StartSpan("pre_crash_work"); }

  // Inject the failure: loading a store from a path that cannot exist.
  trim::TripleStore store;
  Status st = trim::LoadStore("/nonexistent-dir-xyz/store.xml", &store);
  ASSERT_TRUE(st.IsIoError());

#if SLIM_OBS_ENABLED
  // The persistence error path triggered the dump itself.
  std::ifstream dumped(bundle_path);
  ASSERT_TRUE(dumped.good())
      << "expected the trim error path to write " << bundle_path;
#else
  // Instrumentation is compiled out; dump explicitly.
  ASSERT_TRUE(recorder.DumpDiagnostics(bundle_path).ok());
#endif

  std::ifstream in(bundle_path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string bundle = buf.str();

  // The status event (via the hook), the recent spans and the metrics JSON
  // are all present.
  EXPECT_NE(bundle.find("\"code\":\"IoError\""), std::string::npos);
  EXPECT_NE(bundle.find("cannot open '/nonexistent-dir-xyz/store.xml'"),
            std::string::npos);
  EXPECT_NE(bundle.find("\"spans\":["), std::string::npos);
  EXPECT_NE(bundle.find("\"name\":\"pre_crash_work\""), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\":{\"counters\":{"), std::string::npos);

  recorder.set_dump_path("");
  recorder.Uninstall();
  std::remove(bundle_path.c_str());
}

TEST(FlightRecorder, MaybeDumpIsFreeWithoutAPath) {
  FlightRecorder recorder;
  EXPECT_EQ(recorder.MaybeDumpOnError("test"), 0u);
  EXPECT_TRUE(recorder.RecentEvents().empty());  // no trigger event either
}

TEST(FlightRecorder, BoundedRings) {
  FlightRecorder recorder(/*event_capacity=*/2, /*span_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    LogEvent event;
    event.message = "e" + std::to_string(i);
    recorder.OnLogEvent(event);
    recorder.OnSpanEnd(MakeSpan(uint64_t(i + 1), 0, 0,
                                "s" + std::to_string(i), 1));
  }
  std::vector<LogEvent> events = recorder.RecentEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "e3");
  std::vector<SpanRecord> spans = recorder.RecentSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "s4");
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(Prom, MetricNameMapping) {
  EXPECT_EQ(PromMetricName("trim.add.ok"), "trim_add_ok");
  EXPECT_EQ(PromMetricName("trim.view.latency_us"), "trim_view_latency_us");
  EXPECT_EQ(PromMetricName("weird-name with/stuff"), "weird_name_with_stuff");
  EXPECT_EQ(PromMetricName("0starts.with.digit"), "_0starts_with_digit");
}

TEST(Prom, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("trim.add.ok")->Increment(7);
  registry.GetGauge("docs.open")->Set(-2);
  LatencyHistogram* h = registry.GetHistogram("trim.view.latency_us");
  h->Record(1);    // bucket 0
  h->Record(2);    // bucket 1
  h->Record(9);    // bucket 3 (<=10)
  std::string text = ExportPrometheus(registry);

  EXPECT_NE(text.find("# TYPE trim_add_ok counter\ntrim_add_ok 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE docs_open gauge\ndocs_open -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE trim_view_latency_us histogram"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("trim_view_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trim_view_latency_us_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("trim_view_latency_us_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("trim_view_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("trim_view_latency_us_sum 12\n"), std::string::npos);
  EXPECT_NE(text.find("trim_view_latency_us_count 3\n"), std::string::npos);
}

TEST(Registry, MetricNameValidation) {
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("trim.add.ok"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("trim.view.latency_us"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("log.events.error"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("Has.Upper"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("with space"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("dash-ed"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("brace{le}"));
}

// ---------------------------------------------------------------------------
// StatsServer: scrape over a real socket
// ---------------------------------------------------------------------------

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(StatsServer, ServesValidPrometheusOverARealSocket) {
  MetricsRegistry registry;
  registry.GetCounter("trim.add.ok")->Increment(13);
  LatencyHistogram* h = registry.GetHistogram("slim.query.latency_us");
  h->Record(3);
  h->Record(40);
  h->Record(2'000'000);  // overflow bucket

  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  std::string response = HttpGet(server.port(), "/metrics");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  std::string body = Body(response);

  // Parse the exposition: every sample line is `name[{le="..."}] value`,
  // histogram buckets must be cumulative (non-decreasing) and end at +Inf
  // == _count, with _sum matching the registry.
  std::istringstream lines(body);
  std::string line;
  std::vector<uint64_t> buckets;
  uint64_t count = 0, sum = 0, counter_value = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (name.rfind("slim_query_latency_us_bucket", 0) == 0) {
      buckets.push_back(std::stoull(value));
      if (name.find("+Inf") != std::string::npos) saw_inf = true;
    } else if (name == "slim_query_latency_us_count") {
      count = std::stoull(value);
    } else if (name == "slim_query_latency_us_sum") {
      sum = std::stoull(value);
    } else if (name == "trim_add_ok") {
      counter_value = std::stoull(value);
    }
  }
  ASSERT_EQ(buckets.size(), LatencyHistogram::kBucketCount);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]) << "buckets must be cumulative";
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(buckets.back(), count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 2'000'043u);
  EXPECT_EQ(counter_value, 13u);

  // The scrape is reflected in the server's own accounting.
  EXPECT_GE(server.requests_served(), 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatsServer, HealthzAndNotFound) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(health), "ok\n");
  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  server.Stop();
}

TEST(StatsServer, StopIsIdempotentAndRestartable) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
  server.Stop();
  server.Stop();  // no-op
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace slim::obs
