// Tests for the observability substrate (src/obs): metric math, registry
// lifetime guarantees, JSON round-trips, span nesting/sink delivery and the
// Disabled() fast path. Instrumentation *call sites* are covered by
// slimpad_test.cc; this file tests the substrate itself, which builds under
// both SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace slim::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-15);
  EXPECT_EQ(g.value(), -5);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketingMath) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty → 0, not UINT64_MAX
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  // Bounds are inclusive: 1 lands in bucket 0, 2 in bucket 1, 3 in the
  // 5-bucket, 10000001 overflows the 10M top bound.
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(10000001);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10000007u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000001u);
  EXPECT_EQ(h.BucketValue(0), 1u);  // <= 1
  EXPECT_EQ(h.BucketValue(1), 1u);  // <= 2
  EXPECT_EQ(h.BucketValue(2), 1u);  // <= 5
  EXPECT_EQ(h.BucketValue(LatencyHistogram::kBucketCount - 1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(
      LatencyHistogram::BucketUpperBound(LatencyHistogram::kBucketCount - 1),
      UINT64_MAX);
}

TEST(Histogram, BucketBoundariesPinned) {
  // The 1-2-5 ladder from 1 µs to 10 s. Exporters (Prometheus `le=` labels)
  // and merged JSON snapshots bake these bounds into persisted data, so a
  // change here is a telemetry schema change: it must be deliberate, and
  // old/new bench or dump comparisons across it are suspect. The top bound
  // is 10M because second-scale operations (whole-pad rebuilds, 100k-triple
  // persistence) must land in finite buckets, not the overflow — otherwise
  // ApproxPercentile saturates at the last finite bound for those series.
  static constexpr uint64_t kExpected[] = {
      1,      2,      5,       10,      25,      50,      100,     250,
      500,    1000,   2500,    5000,    10000,   25000,   50000,   100000,
      250000, 500000, 1000000, 2500000, 5000000, 10000000};
  ASSERT_EQ(LatencyHistogram::kBucketBounds.size(), std::size(kExpected));
  for (size_t i = 0; i < std::size(kExpected); ++i) {
    EXPECT_EQ(LatencyHistogram::kBucketBounds[i], kExpected[i]) << i;
  }
  EXPECT_EQ(LatencyHistogram::kBucketCount, std::size(kExpected) + 1);

  // Values past the old 1M ceiling now resolve to distinct buckets.
  LatencyHistogram h;
  h.Record(2000000);   // 2 s -> <=2.5M bucket
  h.Record(4000000);   // 4 s -> <=5M bucket
  h.Record(9000000);   // 9 s -> <=10M bucket
  EXPECT_EQ(h.BucketValue(19), 1u);
  EXPECT_EQ(h.BucketValue(20), 1u);
  EXPECT_EQ(h.BucketValue(21), 1u);
  EXPECT_EQ(h.BucketValue(LatencyHistogram::kBucketCount - 1), 0u);
}

TEST(Histogram, ApproxPercentile) {
  LatencyHistogram h;
  EXPECT_EQ(h.ApproxPercentile(0.5), 0u);
  // 90 values <= 10, 10 values in the 25-bucket.
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(20);
  EXPECT_EQ(h.ApproxPercentile(0.5), 10u);
  EXPECT_EQ(h.ApproxPercentile(0.90), 10u);
  EXPECT_EQ(h.ApproxPercentile(0.95), 25u);  // bucket upper bound
  EXPECT_EQ(h.ApproxPercentile(1.0), 25u);
}

TEST(Histogram, MergeAndReset) {
  LatencyHistogram a;
  a.Record(5);
  LatencyHistogram b;
  b.Record(100);
  b.Record(7);

  std::vector<uint64_t> buckets(LatencyHistogram::kBucketCount);
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] = b.BucketValue(i);
  a.Merge(b.count(), b.sum(), b.min(), b.max(), buckets);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 112u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 100u);

  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(Registry, CreateOnFirstUseWithStablePointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("trim.add.ok");
  EXPECT_EQ(reg.GetCounter("trim.add.ok"), c);  // same object, no dup
  c->Increment(3);
  EXPECT_EQ(reg.CounterValue("trim.add.ok"), 3u);
  EXPECT_EQ(reg.CounterValue("never.created"), 0u);

  reg.GetGauge("docs.open")->Set(2);
  reg.GetHistogram("trim.view.latency_us")->Record(12);
  EXPECT_EQ(reg.MetricCount(), 3u);

  // Reset zeroes values but keeps the metrics (cached pointers stay valid).
  reg.Reset();
  EXPECT_EQ(reg.MetricCount(), 3u);
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  EXPECT_EQ(reg.CounterValue("trim.add.ok"), 1u);
}

TEST(Registry, ExportTextListsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("mark.resolve.ok")->Increment(7);
  reg.GetGauge("pads.open")->Set(1);
  reg.GetHistogram("slim.query.latency_us")->Record(42);
  std::string text = reg.ExportText();
  EXPECT_NE(text.find("mark.resolve.ok"), std::string::npos);
  EXPECT_NE(text.find("pads.open"), std::string::npos);
  EXPECT_NE(text.find("slim.query.latency_us"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Registry, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("trim.add.ok")->Increment(11);
  reg.GetGauge("docs.open")->Set(-3);
  LatencyHistogram* h = reg.GetHistogram("trim.view.latency_us");
  h->Record(4);
  h->Record(900);

  std::string json = reg.ExportJson();
  MetricsRegistry loaded;
  std::string error;
  ASSERT_TRUE(loaded.ImportJson(json, &error)) << error;
  EXPECT_EQ(loaded.CounterValue("trim.add.ok"), 11u);
  EXPECT_EQ(loaded.GetGauge("docs.open")->value(), -3);
  LatencyHistogram* lh = loaded.GetHistogram("trim.view.latency_us");
  EXPECT_EQ(lh->count(), 2u);
  EXPECT_EQ(lh->sum(), 904u);
  EXPECT_EQ(lh->min(), 4u);
  EXPECT_EQ(lh->max(), 900u);
  // Export of the import is byte-identical: nothing was lost.
  EXPECT_EQ(loaded.ExportJson(), json);
}

TEST(Registry, ImportMergesAcrossSessions) {
  MetricsRegistry session;
  session.GetCounter("workload.scraps_opened")->Increment(5);
  session.GetHistogram("workload.open_all_scraps.latency_us")->Record(100);
  std::string json = session.ExportJson();

  MetricsRegistry fleet;
  ASSERT_TRUE(fleet.ImportJson(json));
  ASSERT_TRUE(fleet.ImportJson(json));  // second session's summary
  EXPECT_EQ(fleet.CounterValue("workload.scraps_opened"), 10u);
  EXPECT_EQ(
      fleet.GetHistogram("workload.open_all_scraps.latency_us")->count(), 2u);
}

TEST(Registry, MalformedJsonLeavesRegistryUntouched) {
  MetricsRegistry reg;
  reg.GetCounter("trim.add.ok")->Increment(2);
  std::string error;
  EXPECT_FALSE(reg.ImportJson("{\"counters\":{\"x\":", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(reg.ImportJson("not json at all"));
  EXPECT_EQ(reg.CounterValue("trim.add.ok"), 2u);
  EXPECT_EQ(reg.MetricCount(), 1u);
}

TEST(Tracer, SpanNestingParentChild) {
  Tracer tracer;
  RingBufferSink sink;
  tracer.AddSink(&sink);

  {
    Span parent = tracer.StartSpan("slimpad.open_scrap");
    parent.AddTag("style", "independent");
    {
      Span child = tracer.StartSpan("mark.resolve");
      EXPECT_NE(child.id(), parent.id());
    }  // child ends first
  }

  std::vector<SpanRecord> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Delivery is in *end* order: innermost first.
  EXPECT_EQ(spans[0].name, "mark.resolve");
  EXPECT_EQ(spans[1].name, "slimpad.open_scrap");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[1].parent_id, 0u);
  ASSERT_EQ(spans[1].tags.size(), 1u);
  EXPECT_EQ(spans[1].tags[0].first, "style");
  EXPECT_EQ(spans[1].tags[0].second, "independent");
  EXPECT_EQ(tracer.finished_spans(), 2u);

  tracer.RemoveSink(&sink);
  EXPECT_FALSE(tracer.active());
}

TEST(Tracer, InertWithoutSinks) {
  Tracer tracer;
  EXPECT_FALSE(tracer.active());
  Span s = tracer.StartSpan("unobserved");
  EXPECT_FALSE(s.active());
  s.AddTag("k", "v");  // no-op, no crash
  s.End();
  EXPECT_EQ(tracer.finished_spans(), 0u);
}

TEST(Tracer, EndIsIdempotentAndMoveSafe) {
  Tracer tracer;
  RingBufferSink sink;
  tracer.AddSink(&sink);
  Span a = tracer.StartSpan("once");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  b.End();
  b.End();
  EXPECT_EQ(sink.size(), 1u);
}

TEST(RingBufferSink, EvictsOldestAndCountsDrops) {
  Tracer tracer;
  RingBufferSink sink(/*capacity=*/2);
  tracer.AddSink(&sink);
  for (int i = 0; i < 5; ++i) {
    Span s = tracer.StartSpan("s" + std::to_string(i));
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  std::vector<SpanRecord> spans = sink.Spans();
  EXPECT_EQ(spans[0].name, "s3");
  EXPECT_EQ(spans[1].name, "s4");
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(JsonlFileSink, WritesOneObjectPerSpan) {
  std::string path = ::testing::TempDir() + "obs_test_spans.jsonl";
  {
    Tracer tracer;
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    tracer.AddSink(&sink);
    Span s = tracer.StartSpan("persisted");
    s.AddTag("k", "v\"with quote");
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"persisted\""), std::string::npos);
  EXPECT_NE(line.find("\\\"with quote"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one line
  std::remove(path.c_str());
}

class DisabledGuard {
 public:
  DisabledGuard() { SetDisabled(true); }
  ~DisabledGuard() { SetDisabled(false); }
};

TEST(Disabled, FastPathRecordsNothing) {
  DisabledGuard guard;
  EXPECT_TRUE(Disabled());

  // ScopedOpTimer never touches the histogram while disabled.
  LatencyHistogram h;
  { ScopedOpTimer t(&h); }
  EXPECT_EQ(h.count(), 0u);

  // StartSpan is inert even with a sink attached.
  Tracer tracer;
  RingBufferSink sink;
  tracer.AddSink(&sink);
  EXPECT_FALSE(tracer.active());
  { Span s = tracer.StartSpan("never"); }
  EXPECT_EQ(sink.size(), 0u);

#if SLIM_OBS_ENABLED
  // The macros consult Disabled() before touching the default registry.
  uint64_t before = DefaultRegistry().CounterValue("obs_test.disabled");
  SLIM_OBS_COUNT("obs_test.disabled");
  SLIM_OBS_COUNT_DYN(std::string("obs_test.disabled"));
  EXPECT_EQ(DefaultRegistry().CounterValue("obs_test.disabled"), before);
#endif
}

TEST(JsonlFileSink, UnopenablePathDiscardsSpansWithoutCrashing) {
  Tracer tracer;
  JsonlFileSink sink("/nonexistent-dir-xyz/spans.jsonl");
  EXPECT_FALSE(sink.ok());
  tracer.AddSink(&sink);
  { Span s = tracer.StartSpan("discarded"); }
  EXPECT_EQ(tracer.finished_spans(), 1u);  // delivered, silently dropped
}

TEST(JsonlFileSink, EscapesControlCharactersInNamesAndTags) {
  std::string path = ::testing::TempDir() + "obs_test_escapes.jsonl";
  std::remove(path.c_str());
  {
    Tracer tracer;
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    tracer.AddSink(&sink);
    Span s = tracer.StartSpan("multi\nline");
    s.AddTag("key", std::string("tab\there\x01", 9));
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"multi\\nline\""), std::string::npos);
  EXPECT_NE(line.find("tab\\there\\u0001"), std::string::npos);
  EXPECT_EQ(line.find('\t'), std::string::npos);  // one parseable line
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Tracer, OutOfOrderEndKeepsNestingConsistent) {
  Tracer tracer;
  RingBufferSink sink;
  tracer.AddSink(&sink);

  Span parent = tracer.StartSpan("parent");
  Span child = tracer.StartSpan("child");
  parent.End();  // out of order: the parent ends while the child is open
  // The still-open child remains the innermost open span.
  Span sibling = tracer.StartSpan("nested_after");
  sibling.End();
  child.End();

  std::vector<SpanRecord> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "parent");
  EXPECT_EQ(spans[1].name, "nested_after");
  EXPECT_EQ(spans[2].name, "child");
  EXPECT_EQ(spans[1].parent_id, spans[2].id);  // child was still open
  EXPECT_EQ(spans[2].parent_id, spans[0].id);
  EXPECT_EQ(tracer.finished_spans(), 3u);

  // The open-span stack drained completely: a new span is a root again.
  {
    Span fresh = tracer.StartSpan("fresh_root");
  }
  EXPECT_EQ(sink.Spans().back().parent_id, 0u);
  EXPECT_EQ(sink.Spans().back().depth, 0);
}

#if SLIM_OBS_ENABLED
TEST(Macros, WriteToDefaultRegistry) {
  uint64_t before = DefaultRegistry().CounterValue("obs_test.macro");
  SLIM_OBS_COUNT("obs_test.macro");
  SLIM_OBS_COUNT_N("obs_test.macro", 4);
  EXPECT_EQ(DefaultRegistry().CounterValue("obs_test.macro"), before + 5);

  LatencyHistogram* h = DefaultRegistry().GetHistogram("obs_test.hist");
  uint64_t count_before = h->count();
  SLIM_OBS_HISTOGRAM("obs_test.hist", 7);
  EXPECT_EQ(h->count(), count_before + 1);

  {
    SLIM_OBS_TIMER(timer, "obs_test.timer_us");
  }
  EXPECT_GE(DefaultRegistry().GetHistogram("obs_test.timer_us")->count(), 1u);
}
#endif

}  // namespace
}  // namespace slim::obs
