#include <gtest/gtest.h>

#include "slim/query.h"
#include "slimpad/slimpad_dmi.h"

namespace slim::store {
namespace {

TEST(QueryParseTest, TermsAndClauses) {
  auto q = Query::Parse(
      "?s slim:type <schema:slimpad/Scrap> . ?s scrapName \"Na 140\"");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->clauses().size(), 2u);
  EXPECT_EQ(q->clauses()[0].subject, QueryTerm::Var("s"));
  EXPECT_EQ(q->clauses()[0].property, QueryTerm::Res("slim:type"));
  EXPECT_EQ(q->clauses()[0].object,
            QueryTerm::Res("schema:slimpad/Scrap"));
  EXPECT_EQ(q->clauses()[1].object, QueryTerm::Lit("Na 140"));
  EXPECT_EQ(q->Variables(), (std::vector<std::string>{"s"}));
}

TEST(QueryParseTest, EscapedLiteralAndRoundTrip) {
  auto q = Query::Parse("?x note \"he said \\\"hi\\\"\"");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses()[0].object.text, "he said \"hi\"");
  // ToString -> Parse -> ToString is a fixpoint.
  auto q2 = Query::Parse(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
}

TEST(QueryParseTest, Rejections) {
  for (const char* bad :
       {"", "?s", "?s p", "?s p \"unterminated", "? p o", "?s <unclosed o",
        "?s p o x p2 o2", ". . ."}) {
    EXPECT_FALSE(Query::Parse(bad).ok()) << bad;
  }
}

class QueryExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small pad: two bundles, three scraps, one handle.
    InstanceGraph graph(&store_);
    b1_ = *graph.Create("schema:slimpad/Bundle");
    (void)graph.SetValue(b1_, "bundleName", "John Smith");
    b2_ = *graph.Create("schema:slimpad/Bundle");
    (void)graph.SetValue(b2_, "bundleName", "Electrolyte");
    s1_ = *graph.Create("schema:slimpad/Scrap");
    (void)graph.SetValue(s1_, "scrapName", "dopamine");
    s2_ = *graph.Create("schema:slimpad/Scrap");
    (void)graph.SetValue(s2_, "scrapName", "Na 140");
    s3_ = *graph.Create("schema:slimpad/Scrap");
    (void)graph.SetValue(s3_, "scrapName", "K 4.2");
    (void)graph.Connect(b1_, "bundleContent", s1_);
    (void)graph.Connect(b2_, "bundleContent", s2_);
    (void)graph.Connect(b2_, "bundleContent", s3_);
    (void)graph.Connect(b1_, "nestedBundle", b2_);
    h1_ = *graph.Create("schema:slimpad/MarkHandle");
    (void)graph.SetValue(h1_, "markId", "mark7");
    (void)graph.Connect(s2_, "scrapMark", h1_);
  }

  trim::TripleStore store_;
  std::string b1_, b2_, s1_, s2_, s3_, h1_;
};

TEST_F(QueryExecTest, SingleClauseByType) {
  auto rows = ExecuteText(store_, "?s slim:type <schema:slimpad/Scrap>");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(QueryExecTest, LiteralFilter) {
  auto rows = ExecuteText(store_, "?s scrapName \"Na 140\"");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("s").text, s2_);
}

TEST_F(QueryExecTest, JoinAcrossClauses) {
  // Scraps in the bundle named "Electrolyte", with their names.
  auto rows = ExecuteText(store_,
                          "?b bundleName \"Electrolyte\" . "
                          "?b bundleContent ?s . "
                          "?s scrapName ?name");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  std::set<std::string> names;
  for (const Binding& row : *rows) names.insert(row.at("name").text);
  EXPECT_EQ(names, (std::set<std::string>{"Na 140", "K 4.2"}));
}

TEST_F(QueryExecTest, ThreeHopNavigation) {
  // From the top bundle through nesting to a marked scrap's mark id —
  // the "which marks does John Smith's worksheet reference?" question.
  auto rows = ExecuteText(store_,
                          "?top bundleName \"John Smith\" . "
                          "?top nestedBundle ?nested . "
                          "?nested bundleContent ?s . "
                          "?s scrapMark ?h . "
                          "?h markId ?m");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("m").text, "mark7");
  EXPECT_EQ((*rows)[0].at("s").text, s2_);
}

TEST_F(QueryExecTest, PropertyVariable) {
  // What does s2 say about itself? Property position is a variable.
  auto rows = ExecuteText(store_, "<" + s2_ + "> ?p ?o");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // type, scrapName, scrapMark
}

TEST_F(QueryExecTest, RepeatedVariableMustAgree) {
  InstanceGraph graph(&store_);
  (void)graph.Connect(s1_, "scrapLink", s1_);  // self link
  (void)graph.Connect(s1_, "scrapLink", s2_);
  auto rows = ExecuteText(store_, "?x scrapLink ?x");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("x").text, s1_);
}

TEST_F(QueryExecTest, NoSolutions) {
  auto rows = ExecuteText(store_, "?s scrapName \"not present\"");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  rows = ExecuteText(store_, "?s neverAProperty ?o");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryExecTest, LiteralInSubjectPositionRejected) {
  auto rows = ExecuteText(store_, "\"lit\" p ?o");
  EXPECT_TRUE(rows.status().IsInvalidArgument());
}

TEST_F(QueryExecTest, ObjectsDistinguishLiteralFromResource) {
  // bundleContent links are resources; a literal with the same text must
  // not match.
  auto rows = ExecuteText(store_, "?b bundleContent \"" + s1_ + "\"");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  rows = ExecuteText(store_, "?b bundleContent <" + s1_ + ">");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(QueryExecTest, ProgrammaticBuilder) {
  Query q;
  q.Where(QueryTerm::Var("s"), QueryTerm::Res("scrapName"),
          QueryTerm::Var("n"));
  auto rows = Execute(store_, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(QueryExecTest, QueryOverRealPad) {
  // Query data written by the actual SLIMPad DMI, not hand-rolled triples.
  trim::TripleStore store;
  pad::SlimPadDmi dmi(&store);
  const pad::Bundle* bundle = *dmi.Create_Bundle("Meds", {0, 0}, 10, 10);
  const pad::Scrap* scrap = *dmi.Create_Scrap("heparin", {1, 1});
  (void)dmi.AddScrapToBundle(bundle->id(), scrap->id());

  auto rows = ExecuteText(store,
                          "?b bundleName \"Meds\" . ?b bundleContent ?s . "
                          "?s scrapName ?n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("n").text, "heparin");
  EXPECT_EQ((*rows)[0].at("s").text, scrap->id());
}

}  // namespace
}  // namespace slim::store
