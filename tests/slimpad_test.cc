#include <gtest/gtest.h>

#include "obs/obs.h"
#include "slim/conformance.h"
#include "slimpad/slimpad_dmi.h"
#include "trim/persistence.h"
#include "util/rng.h"
#include "workload/icu.h"
#include "workload/session.h"

namespace slim::pad {
namespace {

TEST(CoordinateTest, RoundTrip) {
  Coordinate c{12.5, -3};
  auto back = Coordinate::Parse(c.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, c);
  EXPECT_FALSE(Coordinate::Parse("1").ok());
  EXPECT_FALSE(Coordinate::Parse("1,x").ok());
}

class SlimPadDmiTest : public ::testing::Test {
 protected:
  trim::TripleStore store_;
  SlimPadDmi dmi_{&store_};
};

TEST_F(SlimPadDmiTest, CreateEntitiesMirrorsTriples) {
  const SlimPad* pad = *dmi_.Create_SlimPad("Rounds");
  EXPECT_EQ(pad->pad_name(), "Rounds");
  // The triple layer holds the same fact.
  EXPECT_EQ(store_.GetOne(pad->id(), "padName")->text, "Rounds");

  const Bundle* bundle = *dmi_.Create_Bundle("John", {10, 20}, 300, 200);
  EXPECT_EQ(store_.GetOne(bundle->id(), "bundleName")->text, "John");
  EXPECT_EQ(store_.GetOne(bundle->id(), "bundlePos")->text, "10,20");
  EXPECT_EQ(store_.GetOne(bundle->id(), "bundleWidth")->text, "300");

  const Scrap* scrap = *dmi_.Create_Scrap("Na 140", {1, 2});
  EXPECT_EQ(store_.GetOne(scrap->id(), "scrapName")->text, "Na 140");

  const MarkHandle* handle = *dmi_.Create_MarkHandle("mark7");
  EXPECT_EQ(handle->mark_id(), "mark7");
  EXPECT_EQ(store_.GetOne(handle->id(), "markId")->text, "mark7");
  EXPECT_TRUE(dmi_.Create_MarkHandle("").status().IsInvalidArgument());
}

TEST_F(SlimPadDmiTest, UpdatesKeepBothRepresentationsInSync) {
  const Bundle* b = *dmi_.Create_Bundle("Old", {0, 0}, 10, 10);
  ASSERT_TRUE(dmi_.Update_bundleName(b->id(), "New").ok());
  ASSERT_TRUE(dmi_.Update_bundlePos(b->id(), {5, 6}).ok());
  ASSERT_TRUE(dmi_.Update_bundleSize(b->id(), 42, 24).ok());
  EXPECT_EQ(b->name(), "New");
  EXPECT_EQ(b->pos(), (Coordinate{5, 6}));
  EXPECT_EQ(b->width(), 42);
  EXPECT_EQ(store_.GetOne(b->id(), "bundleName")->text, "New");
  EXPECT_EQ(store_.GetOne(b->id(), "bundlePos")->text, "5,6");
  EXPECT_EQ(store_.GetOne(b->id(), "bundleWidth")->text, "42");
  EXPECT_TRUE(dmi_.Update_bundleName("inst:404", "x").IsNotFound());
}

TEST_F(SlimPadDmiTest, StructureEditsAndInvariants) {
  const SlimPad* pad = *dmi_.Create_SlimPad("P");
  const Bundle* root = *dmi_.Create_Bundle("root", {0, 0}, 10, 10);
  const Bundle* child = *dmi_.Create_Bundle("child", {0, 0}, 5, 5);
  const Scrap* scrap = *dmi_.Create_Scrap("s", {1, 1});

  ASSERT_TRUE(dmi_.Update_rootBundle(pad->id(), root->id()).ok());
  EXPECT_EQ(pad->root_bundle(), root->id());
  ASSERT_TRUE(dmi_.AddNestedBundle(root->id(), child->id()).ok());
  EXPECT_EQ(child->parent(), root->id());
  // No double parenting.
  const Bundle* other = *dmi_.Create_Bundle("other", {0, 0}, 5, 5);
  ASSERT_TRUE(dmi_.AddNestedBundle(root->id(), other->id()).ok());
  EXPECT_TRUE(
      dmi_.AddNestedBundle(other->id(), child->id()).IsFailedPrecondition());
  // No cycles.
  EXPECT_TRUE(
      dmi_.AddNestedBundle(child->id(), root->id()).IsInvalidArgument());

  ASSERT_TRUE(dmi_.AddScrapToBundle(child->id(), scrap->id()).ok());
  // A scrap lives in one bundle only.
  EXPECT_TRUE(dmi_.AddScrapToBundle(root->id(), scrap->id())
                  .IsFailedPrecondition());
  ASSERT_TRUE(dmi_.RemoveScrapFromBundle(child->id(), scrap->id()).ok());
  ASSERT_TRUE(dmi_.AddScrapToBundle(root->id(), scrap->id()).ok());

  ASSERT_TRUE(dmi_.RemoveNestedBundle(root->id(), child->id()).ok());
  EXPECT_EQ(child->parent(), "");
  EXPECT_TRUE(
      dmi_.RemoveNestedBundle(root->id(), child->id()).IsFailedPrecondition());
}

TEST_F(SlimPadDmiTest, MarkHandlesAndExtensions) {
  const Scrap* scrap = *dmi_.Create_Scrap("med", {0, 0});
  const MarkHandle* handle = *dmi_.Create_MarkHandle("mark1");
  ASSERT_TRUE(dmi_.SetScrapMark(scrap->id(), handle->id()).ok());
  EXPECT_EQ(scrap->mark_handles(), (std::vector<std::string>{handle->id()}));

  // §6 extensions.
  ASSERT_TRUE(dmi_.AddScrapAnnotation(scrap->id(), "verify dose").ok());
  ASSERT_TRUE(dmi_.AddScrapAnnotation(scrap->id(), "check renal fn").ok());
  EXPECT_EQ(scrap->annotations().size(), 2u);
  const Scrap* other = *dmi_.Create_Scrap("lab", {0, 0});
  ASSERT_TRUE(dmi_.LinkScraps(scrap->id(), other->id()).ok());
  EXPECT_EQ(scrap->linked_scraps(), (std::vector<std::string>{other->id()}));
  ASSERT_TRUE(dmi_.UnlinkScraps(scrap->id(), other->id()).ok());
  EXPECT_TRUE(scrap->linked_scraps().empty());
}

TEST_F(SlimPadDmiTest, DeleteBundleCascades) {
  const SlimPad* pad = *dmi_.Create_SlimPad("P");
  const Bundle* root = *dmi_.Create_Bundle("root", {0, 0}, 10, 10);
  ASSERT_TRUE(dmi_.Update_rootBundle(pad->id(), root->id()).ok());
  const Bundle* nested = *dmi_.Create_Bundle("nested", {0, 0}, 5, 5);
  ASSERT_TRUE(dmi_.AddNestedBundle(root->id(), nested->id()).ok());
  const Scrap* scrap = *dmi_.Create_Scrap("s", {0, 0});
  ASSERT_TRUE(dmi_.AddScrapToBundle(nested->id(), scrap->id()).ok());
  const MarkHandle* handle = *dmi_.Create_MarkHandle("m1");
  ASSERT_TRUE(dmi_.SetScrapMark(scrap->id(), handle->id()).ok());

  std::string root_id = root->id(), nested_id = nested->id(),
              scrap_id = scrap->id(), handle_id = handle->id();
  ASSERT_TRUE(dmi_.Delete_Bundle(root_id).ok());
  EXPECT_TRUE(dmi_.GetBundle(root_id).status().IsNotFound());
  EXPECT_TRUE(dmi_.GetBundle(nested_id).status().IsNotFound());
  EXPECT_TRUE(dmi_.GetScrap(scrap_id).status().IsNotFound());
  EXPECT_TRUE(dmi_.GetMarkHandle(handle_id).status().IsNotFound());
  EXPECT_EQ(pad->root_bundle(), "");
  // Triples for the cascade are gone too.
  EXPECT_TRUE(store_.Select(trim::TriplePattern::BySubject(nested_id)).empty());
  EXPECT_TRUE(store_.Select(trim::TriplePattern::BySubject(scrap_id)).empty());
}

TEST_F(SlimPadDmiTest, DeleteScrapDropsHandlesAndBackLinks) {
  const Bundle* b = *dmi_.Create_Bundle("b", {0, 0}, 1, 1);
  const Scrap* s1 = *dmi_.Create_Scrap("s1", {0, 0});
  const Scrap* s2 = *dmi_.Create_Scrap("s2", {0, 0});
  ASSERT_TRUE(dmi_.AddScrapToBundle(b->id(), s1->id()).ok());
  ASSERT_TRUE(dmi_.AddScrapToBundle(b->id(), s2->id()).ok());
  ASSERT_TRUE(dmi_.LinkScraps(s2->id(), s1->id()).ok());
  std::string s1_id = s1->id();
  ASSERT_TRUE(dmi_.Delete_Scrap(s1_id).ok());
  EXPECT_EQ(b->scraps(), (std::vector<std::string>{s2->id()}));
  EXPECT_TRUE(s2->linked_scraps().empty());
}

TEST_F(SlimPadDmiTest, PadDataConformsToBundleScrapSchema) {
  const SlimPad* pad = *dmi_.Create_SlimPad("Rounds");
  const Bundle* root = *dmi_.Create_Bundle("root", {0, 0}, 800, 600);
  ASSERT_TRUE(dmi_.Update_rootBundle(pad->id(), root->id()).ok());
  const Scrap* s = *dmi_.Create_Scrap("scrap", {1, 1});
  ASSERT_TRUE(dmi_.AddScrapToBundle(root->id(), s->id()).ok());
  const MarkHandle* h = *dmi_.Create_MarkHandle("mark1");
  ASSERT_TRUE(dmi_.SetScrapMark(s->id(), h->id()).ok());

  store::ConformanceReport report =
      store::CheckConformance(store_, dmi_.schema(), dmi_.model());
  EXPECT_TRUE(report.conforms()) << report.ToString();
}

TEST_F(SlimPadDmiTest, SaveLoadRebuildsIdenticalPad) {
  std::string path = ::testing::TempDir() + "/pad_roundtrip.xml";
  const SlimPad* pad = *dmi_.Create_SlimPad("Rounds");
  const Bundle* root = *dmi_.Create_Bundle("John Smith", {20, 20}, 640, 160);
  ASSERT_TRUE(dmi_.Update_rootBundle(pad->id(), root->id()).ok());
  const Bundle* lytes = *dmi_.Create_Bundle("Electrolyte", {320, 10}, 280, 140);
  ASSERT_TRUE(dmi_.AddNestedBundle(root->id(), lytes->id()).ok());
  const Scrap* s = *dmi_.Create_Scrap("Na 141", {20, 40});
  ASSERT_TRUE(dmi_.AddScrapToBundle(lytes->id(), s->id()).ok());
  const MarkHandle* h = *dmi_.Create_MarkHandle("mark3");
  ASSERT_TRUE(dmi_.SetScrapMark(s->id(), h->id()).ok());
  ASSERT_TRUE(dmi_.AddScrapAnnotation(s->id(), "trending up").ok());
  ASSERT_TRUE(dmi_.save(path).ok());

  trim::TripleStore store2;
  SlimPadDmi dmi2(&store2);
  ASSERT_TRUE(dmi2.load(path).ok());
  const SlimPad* pad2 = *dmi2.GetPad(pad->id());
  EXPECT_EQ(pad2->pad_name(), "Rounds");
  EXPECT_EQ(pad2->root_bundle(), root->id());
  const Bundle* root2 = *dmi2.GetBundle(root->id());
  EXPECT_EQ(root2->name(), "John Smith");
  EXPECT_EQ(root2->pos(), (Coordinate{20, 20}));
  EXPECT_EQ(root2->nested_bundles(), (std::vector<std::string>{lytes->id()}));
  const Bundle* lytes2 = *dmi2.GetBundle(lytes->id());
  EXPECT_EQ(lytes2->parent(), root->id());
  EXPECT_EQ(lytes2->scraps(), (std::vector<std::string>{s->id()}));
  const Scrap* s2 = *dmi2.GetScrap(s->id());
  EXPECT_EQ(s2->name(), "Na 141");
  EXPECT_EQ(s2->mark_handles(), (std::vector<std::string>{h->id()}));
  EXPECT_EQ(s2->annotations(), (std::vector<std::string>{"trending up"}));
  const MarkHandle* h2 = *dmi2.GetMarkHandle(h->id());
  EXPECT_EQ(h2->mark_id(), "mark3");
  // Ids minted after a load don't collide.
  const Scrap* fresh = *dmi2.Create_Scrap("new", {0, 0});
  EXPECT_TRUE(dmi2.GetScrap(fresh->id()).ok());
  EXPECT_NE(fresh->id(), s->id());
  std::remove(path.c_str());
}

// Property test: random pads survive the triple round trip bit-exactly.
class PadRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PadRoundTrip, RandomPadSurvivesTripleRebuild) {
  Rng rng(GetParam());
  trim::TripleStore store;
  SlimPadDmi dmi(&store);

  const SlimPad* pad = *dmi.Create_SlimPad("pad" + std::to_string(GetParam()));
  const Bundle* root = *dmi.Create_Bundle("root", {0, 0}, 800, 600);
  ASSERT_TRUE(dmi.Update_rootBundle(pad->id(), root->id()).ok());

  std::vector<std::string> bundles{root->id()};
  std::vector<std::string> scraps;
  int ops = 30 + static_cast<int>(rng.Below(40));
  for (int i = 0; i < ops; ++i) {
    switch (rng.Below(4)) {
      case 0: {
        const Bundle* b = *dmi.Create_Bundle(
            rng.Word(6), {rng.NextDouble() * 500, rng.NextDouble() * 500},
            rng.NextDouble() * 300 + 1, rng.NextDouble() * 300 + 1);
        ASSERT_TRUE(dmi.AddNestedBundle(rng.Pick(bundles), b->id()).ok());
        bundles.push_back(b->id());
        break;
      }
      case 1: {
        const Scrap* s = *dmi.Create_Scrap(
            rng.Word(8), {rng.NextDouble() * 100, rng.NextDouble() * 100});
        ASSERT_TRUE(dmi.AddScrapToBundle(rng.Pick(bundles), s->id()).ok());
        scraps.push_back(s->id());
        break;
      }
      case 2: {
        if (scraps.empty()) break;
        const MarkHandle* h =
            *dmi.Create_MarkHandle("mark" + std::to_string(i));
        ASSERT_TRUE(dmi.SetScrapMark(rng.Pick(scraps), h->id()).ok());
        break;
      }
      case 3: {
        if (scraps.empty()) break;
        ASSERT_TRUE(
            dmi.AddScrapAnnotation(rng.Pick(scraps), rng.Word(12)).ok());
        break;
      }
    }
  }

  // Round trip through the triple store's XML form.
  std::string xml_text = trim::StoreToXml(store);
  trim::TripleStore store2;
  ASSERT_TRUE(trim::StoreFromXml(xml_text, &store2).ok());
  SlimPadDmi dmi2(&store2);
  ASSERT_TRUE(dmi2.RebuildFromTriples().ok());

  // Every bundle/scrap matches field by field.
  ASSERT_EQ(dmi2.Bundles().size(), bundles.size());
  for (const std::string& id : bundles) {
    const Bundle* a = *dmi.GetBundle(id);
    const Bundle* b = *dmi2.GetBundle(id);
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(a->pos(), b->pos());
    EXPECT_EQ(a->width(), b->width());
    EXPECT_EQ(a->height(), b->height());
    EXPECT_EQ(a->parent(), b->parent());
    EXPECT_EQ(a->scraps(), b->scraps());
    EXPECT_EQ(a->nested_bundles(), b->nested_bundles());
  }
  for (const std::string& id : scraps) {
    const Scrap* a = *dmi.GetScrap(id);
    const Scrap* b = *dmi2.GetScrap(id);
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(a->pos(), b->pos());
    EXPECT_EQ(a->mark_handles(), b->mark_handles());
    EXPECT_EQ(a->annotations(), b->annotations());
  }
  // And the rebuilt store re-serializes identically.
  EXPECT_EQ(trim::StoreToXml(store2), xml_text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PadRoundTrip,
                         ::testing::Values(1, 7, 42, 99, 1234, 777));

#if SLIM_OBS_ENABLED

/// Attaches a fresh ring buffer to the default tracer for one test.
class ScopedSpanCapture {
 public:
  ScopedSpanCapture() { obs::DefaultTracer().AddSink(&sink_); }
  ~ScopedSpanCapture() { obs::DefaultTracer().RemoveSink(&sink_); }
  obs::RingBufferSink& sink() { return sink_; }

 private:
  obs::RingBufferSink sink_;
};

TEST(SlimPadObsTest, OpenScrapEmitsNestedSpansAndGestureCounters) {
  workload::Session session;
  workload::IcuOptions options;
  options.patients = 1;
  ASSERT_TRUE(session.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
  ASSERT_TRUE(session.BuildRoundsPad(1).ok());
  SlimPadApp& app = session.app();
  app.set_viewing_style(ViewingStyle::kIndependent);

  // One marked scrap to open.
  std::vector<const Scrap*> scraps = app.dmi().Scraps();
  const Scrap* marked = nullptr;
  for (const Scrap* s : scraps) {
    if (!s->mark_handles().empty()) marked = s;
  }
  ASSERT_NE(marked, nullptr);

  ScopedSpanCapture capture;
  uint64_t opened_before =
      app.metrics().CounterValue("slimpad.open_scrap.independent");
  ASSERT_TRUE(app.OpenScrap(marked->id()).ok());

  // Independent viewing extracts content, so the gesture span nests a
  // mark.extract child; delivery is in end order (child first, parent
  // last) with the parent/child ids linked.
  std::vector<obs::SpanRecord> spans = capture.sink().Spans();
  ASSERT_GE(spans.size(), 2u);
  const obs::SpanRecord& parent = spans.back();
  EXPECT_EQ(parent.name, "slimpad.open_scrap");
  EXPECT_EQ(parent.depth, 0);
  bool found_child = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "mark.extract" && span.parent_id == parent.id) {
      EXPECT_EQ(span.depth, 1);
      EXPECT_LE(span.duration_ns, parent.duration_ns);
      found_child = true;
    }
  }
  EXPECT_TRUE(found_child);

  // The style tag names the viewing style that served the gesture.
  bool found_style_tag = false;
  for (const auto& [key, value] : parent.tags) {
    if (key == "style") {
      EXPECT_EQ(value, "independent");
      found_style_tag = true;
    }
  }
  EXPECT_TRUE(found_style_tag);

  // The per-app gesture counter moved too.
  EXPECT_EQ(app.metrics().CounterValue("slimpad.open_scrap.independent"),
            opened_before + 1);
}

TEST(SlimPadObsTest, SimultaneousOpenNestsMarkResolve) {
  workload::Session session;
  workload::IcuOptions options;
  options.patients = 1;
  ASSERT_TRUE(session.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
  ASSERT_TRUE(session.BuildRoundsPad(1).ok());
  SlimPadApp& app = session.app();
  app.set_viewing_style(ViewingStyle::kSimultaneous);

  const Scrap* marked = nullptr;
  for (const Scrap* s : app.dmi().Scraps()) {
    if (!s->mark_handles().empty()) marked = s;
  }
  ASSERT_NE(marked, nullptr);

  ScopedSpanCapture capture;
  ASSERT_TRUE(app.OpenScrap(marked->id()).ok());

  std::vector<obs::SpanRecord> spans = capture.sink().Spans();
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans.back().name, "slimpad.open_scrap");
  bool found_resolve = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "mark.resolve" && span.parent_id == spans.back().id) {
      found_resolve = true;
    }
  }
  EXPECT_TRUE(found_resolve);
}

#endif  // SLIM_OBS_ENABLED

}  // namespace
}  // namespace slim::pad
