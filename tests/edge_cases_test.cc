#include <gtest/gtest.h>

#include "baseapp/spreadsheet_app.h"
#include "dmi/dynamic_dmi.h"
#include "doc/spreadsheet/a1.h"
#include "slim/instance.h"
#include "slimpad/slimpad_app.h"
#include "slim/topic_map.h"
#include "trim/persistence.h"
#include "trim/triple_store.h"

// Edge-case sweeps for corners the main suites exercise only lightly:
// extreme addresses, empty structures, boundary cardinalities, aliasing
// operations, and self-referential graphs.

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// A1 extremes
// ---------------------------------------------------------------------------

TEST(A1EdgeTest, HugeButBoundedCoordinates) {
  // XFD1048576 is Excel's real corner; we go further but stay bounded.
  auto corner = doc::ParseCell("XFD1048576");
  ASSERT_TRUE(corner.ok());
  EXPECT_EQ(corner->col, 16383);
  EXPECT_EQ(corner->row, 1048575);
  // Column names beyond the guard are rejected, not wrapped.
  EXPECT_TRUE(doc::ParseColumnName("AAAAAAA").status().IsOutOfRange());
  // Row numbers beyond the guard are rejected.
  EXPECT_FALSE(doc::ParseCell("A99999999999").ok());
}

TEST(A1EdgeTest, SingleCellRangeIdentities) {
  doc::RangeRef r{{5, 5}, {5, 5}};
  EXPECT_EQ(r.size(), 1);
  EXPECT_TRUE(r.Contains({5, 5}));
  EXPECT_EQ(r.Normalized(), r);
}

// ---------------------------------------------------------------------------
// Empty structures round trip
// ---------------------------------------------------------------------------

TEST(EmptyStructuresTest, EmptyWorkbook) {
  doc::Workbook wb("empty.book");
  auto back = doc::Workbook::Deserialize(wb.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->sheet_count(), 0u);
}

TEST(EmptyStructuresTest, EmptySheetInWorkbook) {
  doc::Workbook wb("b");
  (void)wb.AddSheet("Empty");
  auto back = doc::Workbook::Deserialize(wb.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->GetSheet("Empty").ok());
  EXPECT_EQ((*(*back)->GetSheet("Empty"))->cell_count(), 0u);
}

TEST(EmptyStructuresTest, EmptyTripleStoreToXmlAndBack) {
  trim::TripleStore store;
  trim::TripleStore loaded;
  ASSERT_TRUE(trim::StoreFromXml(trim::StoreToXml(store), &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST(EmptyStructuresTest, EmptyPadSavesAndLoads) {
  mark::MarkManager marks;
  pad::SlimPadApp app(&marks);
  ASSERT_TRUE(app.NewPad("Empty").ok());
  std::string path = ::testing::TempDir() + "/empty_pad.xml";
  ASSERT_TRUE(app.SavePad(path).ok());
  mark::MarkManager marks2;
  pad::SlimPadApp app2(&marks2);
  ASSERT_TRUE(app2.LoadPad(path).ok());
  EXPECT_EQ(app2.pad()->pad_name(), "Empty");
  EXPECT_TRUE(app2.dmi().Scraps().empty());
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
}

// ---------------------------------------------------------------------------
// Self-referential and aliasing graphs
// ---------------------------------------------------------------------------

TEST(GraphEdgeTest, SelfLinkInstance) {
  trim::TripleStore store;
  store::InstanceGraph graph(&store);
  std::string a = *graph.Create("T");
  ASSERT_TRUE(graph.Connect(a, "link", a).ok());
  EXPECT_EQ(graph.GetConnected(a, "link"), (std::vector<std::string>{a}));
  // View from a self-linked node terminates.
  EXPECT_EQ(store.ViewFrom(a).size(), 2u);  // type + link
  // Deleting removes both directions without double counting issues.
  EXPECT_GT(graph.Delete(a), 0u);
  EXPECT_TRUE(store.empty());
}

TEST(GraphEdgeTest, ScrapSelfLinkThroughDmi) {
  trim::TripleStore store;
  pad::SlimPadDmi dmi(&store);
  const pad::Scrap* s = *dmi.Create_Scrap("self", {0, 0});
  std::string id = s->id();  // survives the scrap's deletion below
  ASSERT_TRUE(dmi.LinkScraps(id, id).ok());
  EXPECT_EQ(s->linked_scraps(), (std::vector<std::string>{id}));
  ASSERT_TRUE(dmi.Delete_Scrap(id).ok());
  EXPECT_TRUE(store.Select(trim::TriplePattern::BySubject(id)).empty());
}

TEST(GraphEdgeTest, DuplicateLinkRejected) {
  trim::TripleStore store;
  store::InstanceGraph graph(&store);
  std::string a = *graph.Create("T");
  std::string b = *graph.Create("T");
  ASSERT_TRUE(graph.Connect(a, "link", b).ok());
  EXPECT_TRUE(graph.Connect(a, "link", b).IsAlreadyExists());
}

// ---------------------------------------------------------------------------
// Boundary cardinalities in the dynamic DMI
// ---------------------------------------------------------------------------

TEST(CardinalityEdgeTest, ExactlyTwoMembers) {
  // The topic-map 'member' connector demands >= 2; build an Association
  // and check both sides of the boundary via conformance.
  store::ModelDef model = store::BuildTopicMapModel();
  store::SchemaDef schema = *store::TopicMapSchema();
  trim::TripleStore store;
  dmi::DynamicDmi dmi(&store, schema, model);

  dmi::DynamicObject assoc = *dmi.Create("Association");
  ASSERT_TRUE(assoc.Set("associationType", "treats").ok());
  dmi::DynamicObject t1 = *dmi.Create("Topic");
  ASSERT_TRUE(t1.Set("topicName", "heparin").ok());
  dmi::DynamicObject t2 = *dmi.Create("Topic");
  ASSERT_TRUE(t2.Set("topicName", "DVT").ok());

  ASSERT_TRUE(assoc.Connect("member", t1).ok());
  // One member only: low-cardinality violation.
  auto report = dmi.Check();
  bool low = false;
  for (const auto& v : report.violations) {
    if (v.kind == store::ViolationKind::kCardinalityLow &&
        v.property == "member") {
      low = true;
    }
  }
  EXPECT_TRUE(low) << report.ToString();

  ASSERT_TRUE(assoc.Connect("member", t2).ok());
  report = dmi.Check();
  for (const auto& v : report.violations) {
    EXPECT_NE(v.property, "member") << report.ToString();
  }
}

// ---------------------------------------------------------------------------
// Worksheet aliasing / overwrite behavior
// ---------------------------------------------------------------------------

TEST(WorksheetEdgeTest, FormulaOverwritesValueAndBack) {
  doc::Workbook wb;
  doc::Worksheet* ws = *wb.AddSheet("S");
  ws->SetValue({0, 0}, 5.0);
  ASSERT_TRUE(ws->SetFormula({0, 0}, "=2*3").ok());
  EXPECT_EQ(wb.Evaluate("S", {0, 0}), doc::CellValue(6.0));
  ws->SetValue({0, 0}, 7.0);  // literal clears the formula
  EXPECT_EQ(wb.Evaluate("S", {0, 0}), doc::CellValue(7.0));
  EXPECT_FALSE(ws->GetCell({0, 0})->has_formula());
}

TEST(WorksheetEdgeTest, FormulaReferencingItsOwnRangeCycles) {
  doc::Workbook wb;
  doc::Worksheet* ws = *wb.AddSheet("S");
  // SUM over a range that includes the formula's own cell.
  ASSERT_TRUE(ws->SetFormula({0, 0}, "=SUM(A1:A3)").ok());
  ws->SetValue({1, 0}, 1.0);
  EXPECT_EQ(wb.Evaluate("S", {0, 0}), doc::CellValue(doc::CellError::kCycle));
}

TEST(WorksheetEdgeTest, RemoveSheetInvalidatesDependents) {
  doc::Workbook wb;
  doc::Worksheet* a = *wb.AddSheet("A");
  (void)wb.AddSheet("B");
  (*wb.GetSheet("B"))->SetValue({0, 0}, 3.0);
  ASSERT_TRUE(a->SetFormula({0, 0}, "=B!A1*2").ok());
  EXPECT_EQ(wb.Evaluate("A", {0, 0}), doc::CellValue(6.0));
  ASSERT_TRUE(wb.RemoveSheet("B").ok());
  EXPECT_EQ(wb.Evaluate("A", {0, 0}),
            doc::CellValue(doc::CellError::kRef));
}

// ---------------------------------------------------------------------------
// Spreadsheet app: selection pinned to content, not coordinates
// ---------------------------------------------------------------------------

TEST(SpreadsheetAppEdgeTest, SelectionContentReflectsFormulas) {
  baseapp::SpreadsheetApp app;
  auto wb = std::make_unique<doc::Workbook>("f.book");
  doc::Worksheet* ws = wb->AddSheet("S").ValueOrDie();
  ws->SetValue({0, 0}, 2.0);
  ASSERT_TRUE(ws->SetFormula({0, 1}, "=A1*10").ok());
  ASSERT_TRUE(app.RegisterWorkbook(std::move(wb)).ok());
  ASSERT_TRUE(app.Select("f.book", "S", doc::RangeRef{{0, 0}, {0, 1}}).ok());
  // The selection shows evaluated values, as a real grid would.
  EXPECT_EQ(app.CurrentSelection()->content, "2\t20");
}

}  // namespace
}  // namespace slim
