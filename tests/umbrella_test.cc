#include <gtest/gtest.h>

#include "core/superimposed.h"

// The umbrella header alone must provide everything a superimposed
// application needs: this test builds a minimal one using only it.
namespace slim {
namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughPublicApi) {
  baseapp::XmlApp xml;
  auto doc = doc::xml::Document::Create("r");
  doc->root()->AddElement("x")->AddText("payload");
  ASSERT_TRUE(xml.RegisterDocument("d.xml", std::move(doc)).ok());

  mark::MarkManager marks;
  mark::XmlMarkModule module(&xml);
  ASSERT_TRUE(marks.RegisterModule(&module).ok());

  pad::SlimPadApp app(&marks);
  ASSERT_TRUE(app.NewPad("umbrella").ok());
  ASSERT_TRUE(xml.SelectPath("d.xml", "/r/x").ok());
  auto scrap = app.AddScrapFromSelection(*app.RootBundle(), "xml", "x",
                                         {0, 0});
  ASSERT_TRUE(scrap.ok());
  auto open = app.OpenScrap(*scrap);
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(app.AuditMarks().all_valid());
  auto rows = app.QueryPad("?s scrapName \"x\"");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

}  // namespace
}  // namespace slim
