#include <gtest/gtest.h>

#include "slim/conformance.h"
#include "workload/corpus.h"
#include "workload/session.h"

namespace slim::workload {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IcuOptions options;
    options.patients = 3;
    options.seed = 2026;
    ASSERT_TRUE(session_.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
  }
  Session session_;
};

TEST_F(SessionTest, WorkloadRegistersAllDocuments) {
  EXPECT_TRUE(session_.excel().IsOpen("meds.book"));
  EXPECT_EQ(session_.xml().OpenDocuments().size(), 3u);
  EXPECT_EQ(session_.text().OpenDocuments().size(), 3u);
  EXPECT_TRUE(session_.pdf().IsOpen("guidelines/sepsis.pdf"));
  EXPECT_TRUE(session_.html().IsOpen("http://hospital/protocols/icu"));
}

TEST_F(SessionTest, BuildRoundsPadMirrorsFig4) {
  ASSERT_TRUE(session_.BuildRoundsPad().ok());
  pad::SlimPadApp& app = session_.app();
  ASSERT_NE(app.pad(), nullptr);
  EXPECT_EQ(app.pad()->pad_name(), "Rounds");

  // One patient bundle per patient, nested under the root.
  ASSERT_EQ(session_.patient_bundles().size(), 3u);
  std::string root = *app.RootBundle();
  const pad::Bundle* root_bundle = *app.dmi().GetBundle(root);
  EXPECT_EQ(root_bundle->nested_bundles().size(), 3u);

  // Each patient bundle: med scraps + an 'Electrolyte' nested bundle with
  // the gridlet and seven analyte scraps.
  for (size_t p = 0; p < 3; ++p) {
    const pad::Bundle* patient =
        *app.dmi().GetBundle(session_.patient_bundles()[p]);
    EXPECT_EQ(patient->name(), session_.icu().patients[p].name);
    EXPECT_EQ(static_cast<int>(patient->scraps().size()),
              session_.icu().patients[p].med_count);
    ASSERT_EQ(patient->nested_bundles().size(), 1u);
    const pad::Bundle* lytes =
        *app.dmi().GetBundle(patient->nested_bundles()[0]);
    EXPECT_EQ(lytes->name(), "Electrolyte");
    // Gridlet + 7 analytes.
    EXPECT_EQ(lytes->scraps().size(), 1u + ElectrolyteAnalytes().size());
  }

  // Pad data conforms to the Bundle-Scrap schema.
  store::ConformanceReport report = store::CheckConformance(
      app.store(), app.dmi().schema(), app.dmi().model());
  EXPECT_TRUE(report.conforms()) << report.ToString();
}

TEST_F(SessionTest, ClickScrapOpensMedicationListHighlighted) {
  ASSERT_TRUE(session_.BuildRoundsPad(1).ok());
  pad::SlimPadApp& app = session_.app();
  const pad::Bundle* patient =
      *app.dmi().GetBundle(session_.patient_bundles()[0]);
  ASSERT_FALSE(patient->scraps().empty());

  // "By clicking on the scrap, the mark is de-referenced and the original
  // information source, the medication list, is displayed with the
  // appropriate medication highlighted" (paper §3).
  session_.excel().ClearNavigation();
  auto result = app.OpenScrap(patient->scraps()[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->base_app_navigated);
  ASSERT_TRUE(session_.excel().last_navigation().has_value());
  const auto& nav = *session_.excel().last_navigation();
  EXPECT_EQ(nav.file_name, "meds.book");
  // The highlighted row is the patient's first medication row.
  int row = session_.icu().patients[0].med_row_begin;
  EXPECT_EQ(nav.address,
            "Medications!B" + std::to_string(row + 1) + ":E" +
                std::to_string(row + 1));
  EXPECT_FALSE(nav.highlighted_content.empty());
}

TEST_F(SessionTest, DoubleClickElectrolyteOpensLabReport) {
  ASSERT_TRUE(session_.BuildRoundsPad(1).ok());
  pad::SlimPadApp& app = session_.app();
  const pad::Bundle* patient =
      *app.dmi().GetBundle(session_.patient_bundles()[0]);
  const pad::Bundle* lytes =
      *app.dmi().GetBundle(patient->nested_bundles()[0]);

  // First scrap is the gridlet (graphic, no mark).
  auto graphic = app.OpenScrap(lytes->scraps()[0]);
  EXPECT_TRUE(graphic.status().IsFailedPrecondition());

  // An analyte scrap resolves into the XML lab report.
  auto result = app.OpenScrap(lytes->scraps()[1]);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(session_.xml().last_navigation().has_value());
  EXPECT_EQ(session_.xml().last_navigation()->file_name,
            session_.icu().lab_file(0));
  EXPECT_NE(session_.xml().last_navigation()->address.find("/labReport"),
            std::string::npos);
}

TEST_F(SessionTest, ViewingStylesBehaveDifferently) {
  ASSERT_TRUE(session_.BuildRoundsPad(1).ok());
  pad::SlimPadApp& app = session_.app();
  const pad::Bundle* patient =
      *app.dmi().GetBundle(session_.patient_bundles()[0]);
  const std::string scrap = patient->scraps()[0];

  app.set_viewing_style(pad::ViewingStyle::kSimultaneous);
  auto sim = *app.OpenScrap(scrap);
  EXPECT_TRUE(sim.base_app_navigated);
  EXPECT_TRUE(sim.in_place_content.empty());

  app.set_viewing_style(pad::ViewingStyle::kEnhanced);
  auto enh = *app.OpenScrap(scrap);
  EXPECT_TRUE(enh.base_app_navigated);
  EXPECT_FALSE(enh.in_place_content.empty());

  app.set_viewing_style(pad::ViewingStyle::kIndependent);
  session_.excel().ClearNavigation();
  auto ind = *app.OpenScrap(scrap);
  EXPECT_FALSE(ind.base_app_navigated);
  EXPECT_FALSE(ind.in_place_content.empty());
  // Independent viewing really did not touch the base window.
  EXPECT_FALSE(session_.excel().last_navigation().has_value());
}

TEST_F(SessionTest, OpenAllScrapsResolvesEverything) {
  ASSERT_TRUE(session_.BuildRoundsPad().ok());
  auto opened = session_.OpenAllScraps();
  ASSERT_TRUE(opened.ok()) << opened.status();
  size_t expected = 0;
  for (const Patient& p : session_.icu().patients) {
    expected += static_cast<size_t>(p.med_count) +
                ElectrolyteAnalytes().size();
  }
  EXPECT_EQ(*opened, expected);
}

TEST_F(SessionTest, HandoffSaveLoadPreservesAwareness) {
  // §6: "supporting the transfer of 'current situation' awareness ... when
  // one doctor is taking over rounds for another."
  ASSERT_TRUE(session_.BuildRoundsPad().ok());
  std::string path = ::testing::TempDir() + "/handoff_pad.xml";
  ASSERT_TRUE(session_.app().SavePad(path).ok());

  // The second doctor's session: same base layer, fresh pad + marks.
  Session doctor2;
  IcuOptions options;
  options.patients = 3;
  options.seed = 2026;  // same documents
  ASSERT_TRUE(doctor2.LoadIcuWorkload(GenerateIcuWorkload(options)).ok());
  ASSERT_TRUE(doctor2.app().LoadPad(path).ok());

  EXPECT_EQ(doctor2.app().pad()->pad_name(), "Rounds");
  // Every scrap still opens against the live base layer.
  auto opened = doctor2.OpenAllScraps();
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_GT(*opened, 0u);
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
}

TEST_F(SessionTest, TemplateStampsWorksheetRow) {
  ASSERT_TRUE(session_.app().NewPad("Rounds").ok());
  std::string root = *session_.app().RootBundle();
  auto bundle_id = session_.app().InstantiateTemplate(
      root, pad::ResidentWorksheetTemplate(), {10, 10});
  ASSERT_TRUE(bundle_id.ok());
  const pad::Bundle* b = *session_.app().dmi().GetBundle(*bundle_id);
  EXPECT_EQ(b->scraps().size(), 4u);  // Patient / Problems / Labs / To do
  EXPECT_EQ(b->name(), "Resident worksheet row");
}

TEST(CorpusTest, DeterministicAndZipfish) {
  CorpusOptions options;
  options.seed = 3;
  Corpus a = GenerateCorpus(options);
  Corpus b = GenerateCorpus(options);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i]->Serialize(), b.documents[i]->Serialize());
  }
  // The most frequent word appears far more often than a tail word.
  const std::string& head = a.vocabulary[0];
  const std::string& tail = a.vocabulary.back();
  size_t head_count = 0, tail_count = 0;
  for (const auto& d : a.documents) {
    head_count += d->FindAll(head).size();
    tail_count += d->FindAll(tail).size();
  }
  EXPECT_GT(head_count, tail_count);
}

TEST(IcuWorkloadTest, DeterministicAndConsistent) {
  IcuOptions options;
  options.patients = 5;
  options.seed = 11;
  IcuWorkload a = GenerateIcuWorkload(options);
  IcuWorkload b = GenerateIcuWorkload(options);
  ASSERT_EQ(a.patients.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.patients[i].name, b.patients[i].name);
    EXPECT_EQ(a.patients[i].med_count, b.patients[i].med_count);
  }
  EXPECT_EQ(a.medication_workbook->Serialize(),
            b.medication_workbook->Serialize());

  // Medication rows really belong to their patients.
  doc::Worksheet* meds = *a.medication_workbook->GetSheet("Medications");
  for (const Patient& p : a.patients) {
    for (int m = 0; m < p.med_count; ++m) {
      const doc::Cell* cell =
          meds->GetCell({p.med_row_begin + m, 0});
      ASSERT_NE(cell, nullptr);
      EXPECT_EQ(std::get<std::string>(cell->value), p.name);
    }
  }
  // The TOTAL ORDERS formula counts every med row.
  int total_rows = 0;
  for (const Patient& p : a.patients) total_rows += p.med_count;
  doc::CellValue total = a.medication_workbook->Evaluate(
      "Medications", {1 + total_rows, 1});
  EXPECT_EQ(total, doc::CellValue(static_cast<double>(total_rows)));

  // Lab reports have the advertised panels.
  ASSERT_EQ(a.lab_reports.size(), 5u);
  for (const auto& report : a.lab_reports) {
    EXPECT_EQ(report->root()->ChildElements("panel").size(), 3u);
  }
}

}  // namespace
}  // namespace slim::workload
