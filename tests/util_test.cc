#include <gtest/gtest.h>

#include <set>

#include "util/id_generator.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::ParseError("bad input");
  Status t = s;
  EXPECT_TRUE(t.IsParseError());
  EXPECT_EQ(t.message(), "bad input");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, MovedFromBecomesReusable) {
  Status s = Status::IoError("disk");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIoError());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("x").WithContext("loading pad");
  EXPECT_EQ(s.message(), "loading pad: x");
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  std::set<std::string_view> names;
  for (int c = 0; c <= 10; ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = []() -> Status {
    SLIM_RETURN_NOT_OK(Status::OK());
    SLIM_RETURN_NOT_OK(Status::OutOfRange("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fn().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusNormalizedToError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("no");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    SLIM_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, SplitSkipEmptyDropsEmptyFields) {
  EXPECT_EQ(SplitSkipEmpty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"one", "two", "three"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
  EXPECT_TRUE(EqualsIgnoreCase("TRUE", "true"));
  EXPECT_FALSE(EqualsIgnoreCase("TRUE", "tru"));
}

TEST(StringsTest, ParseIntStrict) {
  long long v = 0;
  EXPECT_TRUE(ParseInt("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(ParseInt(" 42 ", &v));
  EXPECT_FALSE(ParseInt("12x", &v));
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("1.5", &v));
}

TEST(StringsTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, FormatNumberIntegral) {
  EXPECT_EQ(FormatNumber(5), "5");
  EXPECT_EQ(FormatNumber(-3), "-3");
  EXPECT_EQ(FormatNumber(0), "0");
  EXPECT_EQ(FormatNumber(1e6), "1000000");
}

TEST(StringsTest, FormatNumberRoundTrips) {
  for (double v : {0.1, 3.14159, -2.5, 1e-9, 123456.789}) {
    double back = 0;
    ASSERT_TRUE(ParseDouble(FormatNumber(v), &back)) << v;
    EXPECT_DOUBLE_EQ(back, v);
  }
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
  EXPECT_EQ(ReplaceAll("", "x", "y"), "");
  EXPECT_EQ(ReplaceAll("ab", "", "z"), "ab");
}

// ---------------------------------------------------------------------------
// IdGenerator
// ---------------------------------------------------------------------------

TEST(IdGeneratorTest, MonotoneUnique) {
  IdGenerator gen("m");
  EXPECT_EQ(gen.Next(), "m1");
  EXPECT_EQ(gen.Next(), "m2");
  EXPECT_EQ(gen.Next(), "m3");
}

TEST(IdGeneratorTest, ObserveExistingAdvances) {
  IdGenerator gen("mark");
  gen.ObserveExisting("mark17");
  EXPECT_EQ(gen.Next(), "mark18");
}

TEST(IdGeneratorTest, ObserveForeignPrefixIgnored) {
  IdGenerator gen("mark");
  gen.ObserveExisting("bundle99");
  gen.ObserveExisting("marknotanumber");
  EXPECT_EQ(gen.Next(), "mark1");
}

TEST(IdGeneratorTest, ObserveLowerDoesNotRegress) {
  IdGenerator gen("m");
  gen.ReserveAtLeast(10);
  gen.ObserveExisting("m3");
  EXPECT_EQ(gen.Next(), "m11");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next64() != b.Next64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    if (v == 2) saw_lo = true;
    if (v == 5) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, WordHasRequestedLength) {
  Rng rng(11);
  for (size_t len : {1u, 5u, 12u}) {
    std::string w = rng.Word(len);
    EXPECT_EQ(w.size(), len);
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

}  // namespace
}  // namespace slim
