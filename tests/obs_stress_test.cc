// Threaded stress test over the obs substrate: N writer threads hammer a
// shared MetricsRegistry (counters + histograms), the default-style Tracer
// (spans through a ring sink and the profiler) and a Logger, while a
// StatsServer serves real-socket /metrics scrapes and another reader takes
// registry snapshots concurrently. Totals are asserted exactly after the
// join — lost updates, torn reads or crashes fail the test. This is the
// test the TSan CI job exists for (SLIM_SANITIZE=thread).
//
// Like obs_test.cc, everything here is library-level and must pass under
// both SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "obs/trace.h"

namespace slim::obs {
namespace {

constexpr int kWriters = 4;
constexpr int kIterations = 2000;

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsStress, ConcurrentWritersWithLiveScrapes) {
  MetricsRegistry registry;
  Tracer tracer;
  RingBufferSink ring(128);
  SpanProfiler profiler(1024);
  tracer.AddSink(&ring);
  tracer.AddSink(&profiler);

  Logger logger;
  RingBufferLogSink log_ring(128);
  logger.AddSink(&log_ring);
  logger.set_registry(&registry);

  StatsServer server(&registry, 0);
  Status start = server.Start();
  ASSERT_TRUE(start.ok()) << start;

  std::atomic<bool> stop_readers{false};
  std::atomic<uint64_t> scrapes_ok{0};

  // Reader 1: real-socket Prometheus scrapes while writers run.
  std::thread scraper([&] {
    while (!stop_readers.load(std::memory_order_acquire)) {
      std::string response = HttpGet(server.port(), "/metrics");
      if (response.find("200 OK") != std::string::npos) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Reader 2: in-process snapshots and exports (shares the registry lock
  // with writers creating metrics).
  std::thread snapshotter([&] {
    while (!stop_readers.load(std::memory_order_acquire)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        ASSERT_FALSE(name.empty());
        (void)value;
      }
      std::string prom = ExportPrometheus(registry);
      // Empty only before the first writer created a metric.
      if (!snapshot.counters.empty()) {
        ASSERT_FALSE(prom.empty());
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &tracer, &logger, w] {
      // Per-thread metric resolved once (the macro idiom) plus a shared
      // one resolved every iteration, so both paths are exercised.
      Counter* own = registry.GetCounter("stress.writer_" +
                                         std::to_string(w) + ".ops");
      LatencyHistogram* latency = registry.GetHistogram("stress.latency_us");
      for (int i = 0; i < kIterations; ++i) {
        own->Increment();
        registry.GetCounter("stress.shared.ops")->Increment();
        latency->Record(static_cast<uint64_t>(i % 512));
        Span outer = tracer.StartSpan("stress.outer");
        {
          Span inner = tracer.StartSpan("stress.inner");
          inner.AddTag("writer", std::to_string(w));
        }
        outer.End();
        if (i % 256 == 0) {
          logger.Log(LogLevel::kInfo, "stress", "writer tick",
                     {{"writer", std::to_string(w)}});
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop_readers.store(true, std::memory_order_release);
  scraper.join();
  snapshotter.join();
  server.Stop();

  // Exact totals: no lost updates anywhere.
  const uint64_t kTotal = uint64_t(kWriters) * kIterations;
  EXPECT_EQ(registry.CounterValue("stress.shared.ops"), kTotal);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(
        registry.CounterValue("stress.writer_" + std::to_string(w) + ".ops"),
        kIterations);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name == "stress.latency_us") {
      EXPECT_EQ(hist.count, kTotal);
    }
  }
  EXPECT_EQ(tracer.finished_spans(), 2 * kTotal);
  EXPECT_EQ(profiler.span_count(), 2 * kTotal);
  // Per-thread nesting: every inner span must be parented to an outer span
  // from the same thread, never to another writer's span.
  for (const SpanRecord& span : ring.Spans()) {
    if (span.name == "stress.inner") {
      EXPECT_NE(span.parent_id, 0u);
      EXPECT_EQ(span.depth, 1);
    } else {
      EXPECT_EQ(span.parent_id, 0u);
      EXPECT_EQ(span.depth, 0);
    }
  }
  EXPECT_EQ(logger.events_logged(),
            uint64_t(kWriters) * ((kIterations + 255) / 256));
  EXPECT_GT(server.requests_served(), 0u);

  // A final scrape-free export still renders every stress metric.
  std::string prom = ExportPrometheus(registry);
  EXPECT_NE(prom.find("stress_shared_ops"), std::string::npos);
  EXPECT_NE(prom.find("stress_latency_us_count"), std::string::npos);
}

// The disable switch must be safe to flip while writers are mid-flight
// (it is read with relaxed atomics on every macro hit).
TEST(ObsStress, ToggleDisabledWhileWriting) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress.toggle.ops");
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    while (!done.load(std::memory_order_acquire)) {
      SetDisabled(true);
      SetDisabled(false);
    }
  });
  for (int i = 0; i < 50000; ++i) {
    if (!Disabled()) counter->Increment();
  }
  done.store(true, std::memory_order_release);
  toggler.join();
  SetDisabled(false);
  // Scheduling decides how many increments the flag let through (possibly
  // none on a single-core box); the test's contract is only that the
  // concurrent flips are race-free and the flag ends where we put it.
  EXPECT_FALSE(Disabled());
  EXPECT_LE(counter->value(), 50000u);
}

// More live threads than the counter has owner shards (internal::kShards =
// 16): the surplus threads all collapse onto the overflow slot, which must
// stay exact because it uses RMW increments (unlike the owner shards'
// cheaper load+store). Threads are held at a start gate so all 24 genuinely
// coexist — dense shard-id recycling must never hand an owner slot to two
// live threads at once.
TEST(ObsStress, OverflowShardStaysExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress.overflow.ops");
  constexpr int kThreads = 24;
  constexpr int kPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), uint64_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace slim::obs
