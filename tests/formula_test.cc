#include <gtest/gtest.h>

#include <map>

#include "doc/spreadsheet/formula.h"

namespace slim::doc {
namespace {

// A resolver over an in-memory map; unset cells are blank.
class FakeResolver : public CellResolver {
 public:
  void Set(const std::string& sheet, const CellRef& ref, CellValue v) {
    cells_[{sheet, ref.row, ref.col}] = std::move(v);
  }
  CellValue ResolveCell(const std::string& sheet, const CellRef& ref) override {
    auto it = cells_.find({sheet, ref.row, ref.col});
    return it == cells_.end() ? CellValue(std::monostate{}) : it->second;
  }
  std::vector<CellValue> ResolveRange(const std::string& sheet,
                                      const RangeRef& range) override {
    std::vector<CellValue> out;
    for (int32_t r = range.start.row; r <= range.end.row; ++r) {
      for (int32_t c = range.start.col; c <= range.end.col; ++c) {
        out.push_back(ResolveCell(sheet, {r, c}));
      }
    }
    return out;
  }

 private:
  std::map<std::tuple<std::string, int32_t, int32_t>, CellValue> cells_;
};

CellValue Eval(const std::string& src, CellResolver* resolver = nullptr) {
  FakeResolver empty;
  auto parsed = ParseFormula(src);
  EXPECT_TRUE(parsed.ok()) << src << ": " << parsed.status();
  if (!parsed.ok()) return CellError::kValue;
  return EvaluateFormula(**parsed, resolver ? resolver : &empty);
}

double EvalNum(const std::string& src, CellResolver* resolver = nullptr) {
  CellValue v = Eval(src, resolver);
  EXPECT_TRUE(IsNumber(v)) << src << " -> " << CellValueText(v);
  return IsNumber(v) ? std::get<double>(v) : -1e300;
}

TEST(FormulaParseTest, RejectsMalformed) {
  for (const char* bad :
       {"", "1+", "(1", "1)", "SUM(", "1,2", "\"open", "FOO BAR", "@x", "..",
        "A1:", "Sheet!", "1 2"}) {
    EXPECT_FALSE(ParseFormula(bad).ok()) << bad;
  }
}

TEST(FormulaEvalTest, Literals) {
  EXPECT_DOUBLE_EQ(EvalNum("42"), 42);
  EXPECT_DOUBLE_EQ(EvalNum("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(EvalNum("1e3"), 1000);
  EXPECT_EQ(Eval("\"hi\""), CellValue(std::string("hi")));
  EXPECT_EQ(Eval("TRUE"), CellValue(true));
  EXPECT_EQ(Eval("false"), CellValue(false));
  EXPECT_EQ(Eval("\"with \"\"quotes\"\"\""),
            CellValue(std::string("with \"quotes\"")));
}

TEST(FormulaEvalTest, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(EvalNum("1+2*3"), 7);
  EXPECT_DOUBLE_EQ(EvalNum("(1+2)*3"), 9);
  EXPECT_DOUBLE_EQ(EvalNum("10-4-3"), 3);        // left assoc
  EXPECT_DOUBLE_EQ(EvalNum("100/10/2"), 5);      // left assoc
  EXPECT_DOUBLE_EQ(EvalNum("2^3^2"), 512);       // right assoc
  EXPECT_DOUBLE_EQ(EvalNum("-2^2"), 4);          // unary binds the 2 first
  EXPECT_DOUBLE_EQ(EvalNum("2*-3"), -6);
  EXPECT_DOUBLE_EQ(EvalNum("+5"), 5);
}

TEST(FormulaEvalTest, DivisionByZero) {
  EXPECT_EQ(Eval("1/0"), CellValue(CellError::kDivZero));
}

TEST(FormulaEvalTest, Concat) {
  EXPECT_EQ(Eval("\"a\"&\"b\""), CellValue(std::string("ab")));
  EXPECT_EQ(Eval("\"n=\"&5"), CellValue(std::string("n=5")));
  EXPECT_EQ(Eval("1&2"), CellValue(std::string("12")));
}

TEST(FormulaEvalTest, Comparisons) {
  EXPECT_EQ(Eval("1<2"), CellValue(true));
  EXPECT_EQ(Eval("2<=2"), CellValue(true));
  EXPECT_EQ(Eval("3>4"), CellValue(false));
  EXPECT_EQ(Eval("1=1"), CellValue(true));
  EXPECT_EQ(Eval("1<>1"), CellValue(false));
  EXPECT_EQ(Eval("\"abc\"=\"ABC\""), CellValue(true));  // case-insensitive
  EXPECT_EQ(Eval("\"a\"<\"b\""), CellValue(true));
  EXPECT_EQ(Eval("5<\"a\""), CellValue(true));  // numbers sort before text
}

TEST(FormulaEvalTest, CellReferences) {
  FakeResolver r;
  r.Set("", {0, 0}, 10.0);          // A1
  r.Set("", {0, 1}, 4.0);           // B1
  r.Set("Other", {0, 0}, 100.0);    // Other!A1
  EXPECT_DOUBLE_EQ(EvalNum("A1+B1", &r), 14);
  EXPECT_DOUBLE_EQ(EvalNum("Other!A1+A1", &r), 110);
  // Blank cells act as zero in arithmetic.
  EXPECT_DOUBLE_EQ(EvalNum("A1+Z99", &r), 10);
}

TEST(FormulaEvalTest, QuotedSheetName) {
  FakeResolver r;
  r.Set("My Sheet", {0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(EvalNum("'My Sheet'!A1*2", &r), 16);
}

TEST(FormulaEvalTest, AggregateFunctions) {
  FakeResolver r;
  r.Set("", {0, 0}, 1.0);
  r.Set("", {1, 0}, 2.0);
  r.Set("", {2, 0}, 3.0);
  r.Set("", {3, 0}, std::string("not a number"));
  // blank A5
  EXPECT_DOUBLE_EQ(EvalNum("SUM(A1:A5)", &r), 6);
  EXPECT_DOUBLE_EQ(EvalNum("COUNT(A1:A5)", &r), 3);
  EXPECT_DOUBLE_EQ(EvalNum("COUNTA(A1:A5)", &r), 4);
  EXPECT_DOUBLE_EQ(EvalNum("AVERAGE(A1:A5)", &r), 2);
  EXPECT_DOUBLE_EQ(EvalNum("MIN(A1:A5)", &r), 1);
  EXPECT_DOUBLE_EQ(EvalNum("MAX(A1:A5)", &r), 3);
  EXPECT_DOUBLE_EQ(EvalNum("SUM(A1,A2,10)", &r), 13);
}

TEST(FormulaEvalTest, NumericTextCountsInAggregates) {
  FakeResolver r;
  r.Set("", {0, 0}, std::string("5"));
  r.Set("", {1, 0}, 2.0);
  EXPECT_DOUBLE_EQ(EvalNum("SUM(A1:A2)", &r), 7);
}

TEST(FormulaEvalTest, AverageOfNothingIsDivZero) {
  FakeResolver r;
  EXPECT_EQ(Eval("AVERAGE(A1:A3)", &r), CellValue(CellError::kDivZero));
}

TEST(FormulaEvalTest, IfAndBoolFunctions) {
  EXPECT_DOUBLE_EQ(EvalNum("IF(1<2, 10, 20)"), 10);
  EXPECT_DOUBLE_EQ(EvalNum("IF(1>2, 10, 20)"), 20);
  EXPECT_EQ(Eval("IF(FALSE, 1)"), CellValue(false));  // missing else
  EXPECT_EQ(Eval("AND(TRUE, 1<2)"), CellValue(true));
  EXPECT_EQ(Eval("AND(TRUE, FALSE)"), CellValue(false));
  EXPECT_EQ(Eval("OR(FALSE, 1>2)"), CellValue(false));
  EXPECT_EQ(Eval("OR(FALSE, TRUE)"), CellValue(true));
  EXPECT_EQ(Eval("NOT(FALSE)"), CellValue(true));
}

TEST(FormulaEvalTest, ScalarFunctions) {
  EXPECT_DOUBLE_EQ(EvalNum("ABS(-3)"), 3);
  EXPECT_DOUBLE_EQ(EvalNum("SQRT(16)"), 4);
  EXPECT_EQ(Eval("SQRT(-1)"), CellValue(CellError::kValue));
  EXPECT_DOUBLE_EQ(EvalNum("ROUND(2.567, 1)"), 2.6);
  EXPECT_DOUBLE_EQ(EvalNum("ROUND(2.5)"), 3);
  EXPECT_DOUBLE_EQ(EvalNum("LEN(\"hello\")"), 5);
  EXPECT_EQ(Eval("UPPER(\"hi\")"), CellValue(std::string("HI")));
  EXPECT_EQ(Eval("LOWER(\"HI\")"), CellValue(std::string("hi")));
  EXPECT_EQ(Eval("MID(\"abcdef\", 2, 3)"), CellValue(std::string("bcd")));
  EXPECT_EQ(Eval("MID(\"abc\", 10, 3)"), CellValue(std::string("")));
  EXPECT_EQ(Eval("CONCAT(\"a\", 1, TRUE)"),
            CellValue(std::string("a1TRUE")));
}

TEST(FormulaEvalTest, UnknownFunctionIsNameError) {
  EXPECT_EQ(Eval("NOSUCHFN(1)"), CellValue(CellError::kName));
}

TEST(FormulaEvalTest, TypeErrorPropagates) {
  EXPECT_EQ(Eval("\"abc\"+1"), CellValue(CellError::kValue));
  EXPECT_EQ(Eval("ABS(\"abc\")"), CellValue(CellError::kValue));
  // Errors flow through concatenation too.
  EXPECT_EQ(Eval("(1/0) & \"x\""), CellValue(CellError::kDivZero));
}

TEST(FormulaEvalTest, BareRangeInScalarContextIsError) {
  FakeResolver r;
  EXPECT_EQ(Eval("A1:B2+1", &r), CellValue(CellError::kValue));
}

TEST(FormulaFormatTest, RoundTripThroughParser) {
  for (const char* src :
       {"1+2*3", "SUM(A1:B2,C3)", "IF(A1>0,\"pos\",\"neg\")",
        "Sheet2!B3:C9", "-A1", "\"quo\"\"te\"", "2^3^2", "A1&\" \"&B1"}) {
    auto first = ParseFormula(src);
    ASSERT_TRUE(first.ok()) << src;
    std::string printed = FormatFormula(**first);
    auto second = ParseFormula(printed);
    ASSERT_TRUE(second.ok()) << printed;
    // Formatting is canonical: format(parse(format(x))) == format(x).
    EXPECT_EQ(FormatFormula(**second), printed) << src;
  }
}

TEST(FormulaRefsTest, CollectReferences) {
  auto parsed = ParseFormula("SUM(A1:B2) + Sheet2!C3 * IF(D4>0, E5, 1)");
  ASSERT_TRUE(parsed.ok());
  std::vector<FormulaRef> refs = CollectReferences(**parsed);
  ASSERT_EQ(refs.size(), 4u);
  EXPECT_EQ(refs[0].range, (RangeRef{{0, 0}, {1, 1}}));
  EXPECT_EQ(refs[1].sheet, "Sheet2");
  EXPECT_EQ(refs[1].range, (RangeRef{{2, 2}, {2, 2}}));
  EXPECT_EQ(refs[2].range, (RangeRef{{3, 3}, {3, 3}}));
  EXPECT_EQ(refs[3].range, (RangeRef{{4, 4}, {4, 4}}));
}

// Property sweep: algebraic identities hold for many operand values.
class FormulaIdentity : public ::testing::TestWithParam<int> {};

TEST_P(FormulaIdentity, AddCommutes) {
  double a = GetParam() * 1.5 - 7;
  double b = GetParam() * -0.25 + 2;
  std::string sa = FormatNumber(a), sb = FormatNumber(b);
  EXPECT_DOUBLE_EQ(EvalNum(sa + "+" + sb), EvalNum(sb + "+" + sa));
}

TEST_P(FormulaIdentity, MulDistributesOverAdd) {
  double a = GetParam() - 5, b = GetParam() * 2, c = 3 - GetParam();
  std::string sa = FormatNumber(a), sb = FormatNumber(b),
              sc = FormatNumber(c);
  EXPECT_NEAR(EvalNum(sa + "*(" + sb + "+" + sc + ")"),
              EvalNum(sa + "*" + sb + "+" + sa + "*" + sc), 1e-9);
}

TEST_P(FormulaIdentity, SumEqualsFold) {
  FakeResolver r;
  double total = 0;
  int n = GetParam() % 10 + 1;
  for (int i = 0; i < n; ++i) {
    double v = i * 1.25 + GetParam();
    r.Set("", {i, 0}, v);
    total += v;
  }
  EXPECT_NEAR(EvalNum("SUM(A1:A" + std::to_string(n) + ")", &r), total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FormulaIdentity, ::testing::Range(0, 25));

}  // namespace
}  // namespace slim::doc
