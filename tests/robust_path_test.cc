#include <gtest/gtest.h>

#include "baseapp/xml_app.h"
#include "doc/xml/parser.h"
#include "doc/xml/path.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"

namespace slim::doc::xml {

// Shared fixture document (also used by the baseapp tests below).
inline std::unique_ptr<Document> Lab() {
  return ParseXml(
             "<labReport mrn=\"MRN1\">"
             "<panel name=\"electrolytes\">"
             "<result name=\"Na\" value=\"140\">Na 140</result>"
             "<result name=\"K\" value=\"4.2\">K 4.2</result>"
             "</panel>"
             "<panel name=\"cbc\">"
             "<result name=\"WBC\" value=\"9\">WBC 9</result>"
             "</panel>"
             "</labReport>")
      .ValueOrDie();
}

namespace {

TEST(XmlPathPredicateTest, ParseAttributePredicate) {
  auto p = XmlPath::Parse("/labReport/panel[@name='electrolytes']/result[2]");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->steps().size(), 3u);
  EXPECT_TRUE(p->steps()[1].has_attribute_predicate());
  EXPECT_EQ(p->steps()[1].attr_name, "name");
  EXPECT_EQ(p->steps()[1].attr_value, "electrolytes");
  EXPECT_EQ(p->steps()[2].ordinal, 2);
  // Round trip.
  EXPECT_EQ(p->ToString(),
            "/labReport/panel[@name='electrolytes']/result[2]");
}

TEST(XmlPathPredicateTest, DoubleQuotesAccepted) {
  auto p = XmlPath::Parse("/r/x[@a=\"v\"]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps()[1].attr_value, "v");
}

TEST(XmlPathPredicateTest, ParseRejections) {
  for (const char* bad :
       {"/r/x[@]", "/r/x[@a]", "/r/x[@a=v]", "/r/x[@a='v]", "/r/x[@='v']",
        "/r/x[@a='v'", "/r/x[0]"}) {
    EXPECT_FALSE(XmlPath::Parse(bad).ok()) << bad;
  }
}

TEST(XmlPathPredicateTest, ResolveByAttribute) {
  auto doc = Lab();
  auto elem = XmlPath::Parse(
                  "/labReport/panel[@name='electrolytes']/result[@name='K']")
                  ->Resolve(doc.get());
  ASSERT_TRUE(elem.ok()) << elem.status();
  EXPECT_EQ((*elem)->InnerText(), "K 4.2");
}

TEST(XmlPathPredicateTest, ResolveMissingAttributeValue) {
  auto doc = Lab();
  EXPECT_TRUE(XmlPath::Parse("/labReport/panel[@name='micro']")
                  ->Resolve(doc.get())
                  .status()
                  .IsNotFound());
}

TEST(XmlPathPredicateTest, AmbiguousAttributeIsError) {
  auto doc = ParseXml("<r><x a=\"1\"/><x a=\"1\"/></r>").ValueOrDie();
  auto elem = XmlPath::Parse("/r/x[@a='1']")->Resolve(doc.get());
  EXPECT_TRUE(elem.status().IsFailedPrecondition());
  // FindAll is happy to return both.
  EXPECT_EQ(XmlPath::Parse("/r/x[@a='1']")->FindAll(doc.get()).size(), 2u);
}

TEST(XmlPathPredicateTest, RootAttributePredicateChecked) {
  auto doc = Lab();
  EXPECT_TRUE(XmlPath::Parse("/labReport[@mrn='MRN1']/panel")
                  ->Resolve(doc.get())
                  .ok());
  EXPECT_TRUE(XmlPath::Parse("/labReport[@mrn='OTHER']/panel")
                  ->Resolve(doc.get())
                  .status()
                  .IsNotFound());
}

TEST(RobustPathOfTest, PrefersUniqueAttributes) {
  auto doc = Lab();
  Element* k = XmlPath::Parse(
                   "/labReport/panel[1]/result[2]")
                   ->Resolve(doc.get())
                   .ValueOrDie();
  XmlPath robust = RobustPathOf(k);
  EXPECT_EQ(robust.ToString(),
            "/labReport[1]/panel[@name='electrolytes']/result[@name='K']");
  // It resolves back to the same element.
  EXPECT_EQ(*robust.Resolve(doc.get()), k);
}

TEST(RobustPathOfTest, FallsBackToOrdinalWhenNotUnique) {
  auto doc = ParseXml(
                 "<r><x name=\"dup\"/><x name=\"dup\"/><x name=\"solo\"/></r>")
                 .ValueOrDie();
  std::vector<Element*> xs = doc->root()->ChildElements("x");
  EXPECT_EQ(RobustPathOf(xs[1]).ToString(), "/r[1]/x[2]");
  EXPECT_EQ(RobustPathOf(xs[2]).ToString(), "/r[1]/x[@name='solo']");
}

TEST(RobustPathOfTest, CustomAttributePreference) {
  auto doc = ParseXml("<r><x code=\"c7\"/><x code=\"c9\"/></r>").ValueOrDie();
  std::vector<Element*> xs = doc->root()->ChildElements("x");
  // Default preference (id, name) finds nothing -> ordinal.
  EXPECT_EQ(RobustPathOf(xs[1]).ToString(), "/r[1]/x[2]");
  // Asking for "code" produces the robust form.
  EXPECT_EQ(RobustPathOf(xs[1], {"code"}).ToString(), "/r[1]/x[@code='c9']");
}

TEST(RobustPathOfTest, EveryElementRoundTrips) {
  auto doc = Lab();
  doc->root()->Visit([&](Element* e) {
    auto back = RobustPathOf(e).Resolve(doc.get());
    ASSERT_TRUE(back.ok()) << RobustPathOf(e).ToString() << ": "
                           << back.status();
    EXPECT_EQ(*back, e);
  });
}

// The headline property: robust marks survive base-document edits that
// break ordinal marks.
TEST(RobustPathOfTest, SurvivesSiblingInsertion) {
  auto doc = Lab();
  Element* k = XmlPath::Parse("/labReport/panel[1]/result[2]")
                   ->Resolve(doc.get())
                   .ValueOrDie();
  std::string ordinal = PathOf(k).ToString();
  std::string robust = RobustPathOf(k).ToString();

  // The lab regenerates the report with a new result prepended to the
  // panel (a fresh calcium draw).
  auto edited = slim::doc::xml::ParseXml(
                    "<labReport mrn=\"MRN1\">"
                    "<panel name=\"electrolytes\">"
                    "<result name=\"Ca\" value=\"8.9\">Ca 8.9</result>"
                    "<result name=\"Na\" value=\"140\">Na 140</result>"
                    "<result name=\"K\" value=\"4.2\">K 4.2</result>"
                    "</panel>"
                    "<panel name=\"cbc\">"
                    "<result name=\"WBC\" value=\"9\">WBC 9</result>"
                    "</panel>"
                    "</labReport>")
                    .ValueOrDie();

  // The ordinal path now addresses the WRONG element (silent misdirection).
  auto ordinal_hit = XmlPath::Parse(ordinal)->Resolve(edited.get());
  ASSERT_TRUE(ordinal_hit.ok());
  EXPECT_EQ((*ordinal_hit)->InnerText(), "Na 140");  // was K 4.2!

  // The robust path still finds potassium.
  auto robust_hit = XmlPath::Parse(robust)->Resolve(edited.get());
  ASSERT_TRUE(robust_hit.ok()) << robust_hit.status();
  EXPECT_EQ((*robust_hit)->InnerText(), "K 4.2");
}

}  // namespace
}  // namespace slim::doc::xml

namespace slim::baseapp {
namespace {

TEST(XmlAppRobustTest, PolicySwitchesAddressForm) {
  XmlApp app;
  ASSERT_TRUE(app.RegisterDocument("lab.xml", doc::xml::Lab()).ok());
  doc::xml::Document* doc = *app.GetDocument("lab.xml");
  doc::xml::Element* na =
      doc::xml::XmlPath::Parse("/labReport/panel[1]/result[1]")
          ->Resolve(doc)
          .ValueOrDie();

  ASSERT_TRUE(app.SelectElement("lab.xml", na).ok());
  EXPECT_EQ(app.CurrentSelection()->address,
            "/labReport[1]/panel[1]/result[1]");

  app.set_robust_addressing(true);
  ASSERT_TRUE(app.SelectElement("lab.xml", na).ok());
  EXPECT_EQ(app.CurrentSelection()->address,
            "/labReport[1]/panel[@name='electrolytes']/result[@name='Na']");
  // Both address forms navigate.
  ASSERT_TRUE(app.NavigateTo("lab.xml", app.CurrentSelection()->address).ok());
  EXPECT_EQ(app.last_navigation()->highlighted_content, "Na 140");
}

TEST(XmlAppRobustTest, RobustMarkSurvivesEditEndToEnd) {
  // Full stack: a robust XML mark created through the Mark Manager keeps
  // resolving after the lab report is regenerated with an extra result.
  XmlApp app;
  app.set_robust_addressing(true);
  ASSERT_TRUE(app.RegisterDocument("lab.xml", doc::xml::Lab()).ok());

  mark::MarkManager marks;
  mark::XmlMarkModule module(&app);
  ASSERT_TRUE(marks.RegisterModule(&module).ok());

  doc::xml::Document* doc = *app.GetDocument("lab.xml");
  doc::xml::Element* k =
      doc::xml::XmlPath::Parse("/labReport/panel[1]/result[2]")
          ->Resolve(doc)
          .ValueOrDie();
  ASSERT_TRUE(app.SelectElement("lab.xml", k).ok());
  std::string mark_id = *marks.CreateMarkFromSelection("xml");

  // Simulate the lab regenerating the report with a new leading result.
  ASSERT_TRUE(app.CloseDocument("lab.xml").ok());
  ASSERT_TRUE(
      app.RegisterDocument(
             "lab.xml",
             doc::xml::ParseXml(
                 "<labReport mrn=\"MRN1\">"
                 "<panel name=\"electrolytes\">"
                 "<result name=\"Ca\" value=\"8.9\">Ca 8.9</result>"
                 "<result name=\"Na\" value=\"140\">Na 140</result>"
                 "<result name=\"K\" value=\"4.3\">K 4.3</result>"
                 "</panel></labReport>")
                 .ValueOrDie())
          .ok());

  ASSERT_TRUE(marks.ResolveMark(mark_id).ok());
  // Still potassium — the value updated, the identity held.
  EXPECT_EQ(app.last_navigation()->highlighted_content, "K 4.3");
}

}  // namespace
}  // namespace slim::baseapp
