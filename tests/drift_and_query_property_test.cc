#include <gtest/gtest.h>

#include "baseapp/text_app.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "mark/validator.h"
#include "slim/query.h"
#include "util/rng.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Text editing + text-mark drift
// ---------------------------------------------------------------------------

TEST(TextEditTest, ReplaceSpanEditsInPlace) {
  doc::text::TextDocument note;
  note.AddParagraph("patient stable overnight");
  ASSERT_TRUE(note.ReplaceSpan({0, 8, 14}, "deteriorating").ok());
  EXPECT_EQ((*note.GetParagraph(0))->text,
            "patient deteriorating overnight");
  ASSERT_TRUE(note.InsertText(0, 0, ">> ").ok());
  EXPECT_EQ((*note.GetParagraph(0))->text,
            ">> patient deteriorating overnight");
  EXPECT_TRUE(note.ReplaceSpan({5, 0, 1}, "x").IsOutOfRange());
  EXPECT_TRUE(note.ReplaceSpan({0, 0, 9999}, "x").IsOutOfRange());
}

TEST(TextEditTest, EditBeforeMarkCausesDrift) {
  // The §3 staleness scenario for span marks: an insertion earlier in the
  // paragraph shifts the characters a mark's span covers.
  baseapp::TextApp word;
  auto note = std::make_unique<doc::text::TextDocument>();
  note->AddParagraph("assessment: potassium low, replete and recheck");
  ASSERT_TRUE(word.RegisterDocument("note.txt", std::move(note)).ok());

  mark::MarkManager marks;
  mark::TextMarkModule module(&word);
  ASSERT_TRUE(marks.RegisterModule(&module).ok());

  ASSERT_TRUE(word.Select("note.txt", {0, 12, 25}).ok());  // "potassium low"
  std::string id = *marks.CreateMarkFromSelection("text");
  EXPECT_EQ((*marks.GetMark(id))->excerpt(), "potassium low");

  // Edit after the span: mark unaffected.
  doc::text::TextDocument* live = *word.GetDocument("note.txt");
  ASSERT_TRUE(live->ReplaceSpan({0, 27, 34}, "bolus").ok());
  mark::ValidationReport report = mark::ValidateAllMarks(&marks);
  EXPECT_TRUE(report.all_valid()) << report.ToString();

  // Edit before the span: the span now covers shifted characters.
  ASSERT_TRUE(live->InsertText(0, 0, "URGENT ").ok());
  report = mark::ValidateAllMarks(&marks);
  EXPECT_EQ(report.changed, 1u);
  EXPECT_EQ(report.audits[0].health, mark::MarkHealth::kContentChanged);
}

// ---------------------------------------------------------------------------
// Query engine vs brute-force evaluator on random stores/queries
// ---------------------------------------------------------------------------

// Naive reference: enumerate every assignment of triples to clauses.
std::vector<store::Binding> BruteForce(const trim::TripleStore& triples,
                                       const store::Query& query) {
  std::vector<trim::Triple> all = triples.Select(trim::TriplePattern{});
  std::vector<store::Binding> solutions;

  std::function<void(size_t, store::Binding)> recurse =
      [&](size_t clause_idx, store::Binding binding) {
        if (clause_idx == query.clauses().size()) {
          solutions.push_back(std::move(binding));
          return;
        }
        const store::QueryClause& c = query.clauses()[clause_idx];
        for (const trim::Triple& t : all) {
          store::Binding next = binding;
          // Binds a variable (constants are checked by the explicit
          // position tests below); repeated variables must agree.
          auto try_bind = [&](const store::QueryTerm& term,
                              trim::Object value) {
            auto it = next.find(term.text);
            if (it != next.end()) return it->second == value;
            next[term.text] = std::move(value);
            return true;
          };
          // Subject/property positions compare on text only.
          if (!c.subject.is_variable() && c.subject.text != t.subject) {
            continue;
          }
          if (c.subject.is_variable() &&
              !try_bind(c.subject, trim::Object::Resource(t.subject))) {
            continue;
          }
          if (!c.property.is_variable() && c.property.text != t.property) {
            continue;
          }
          if (c.property.is_variable() &&
              !try_bind(c.property, trim::Object::Resource(t.property))) {
            continue;
          }
          // Object position is kind-sensitive.
          if (!c.object.is_variable()) {
            bool want_resource =
                c.object.kind == store::QueryTerm::Kind::kResource;
            if (t.object.is_resource() != want_resource ||
                t.object.text != c.object.text) {
              continue;
            }
          } else if (!try_bind(c.object, t.object)) {
            continue;
          }
          recurse(clause_idx + 1, next);
        }
      };
  recurse(0, {});
  return solutions;
}

std::multiset<std::string> Canonical(const std::vector<store::Binding>& rows) {
  std::multiset<std::string> out;
  for (const store::Binding& row : rows) {
    std::string s;
    for (const auto& [var, val] : row) {
      s += var + "=" + (val.is_resource() ? "<" : "\"") + val.text + ";";
    }
    out.insert(s);
  }
  return out;
}

class QueryEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryEquivalence, EngineMatchesBruteForce) {
  Rng rng(GetParam());
  trim::TripleStore triples;
  std::vector<std::string> subjects = {"inst:1", "inst:2", "inst:3"};
  std::vector<std::string> properties = {"p", "q"};
  std::vector<std::string> literals = {"a", "b"};
  int n = 6 + static_cast<int>(rng.Below(8));
  for (int i = 0; i < n; ++i) {
    trim::Triple t{rng.Pick(subjects), rng.Pick(properties),
                   rng.Chance(0.5)
                       ? trim::Object::Literal(rng.Pick(literals))
                       : trim::Object::Resource(rng.Pick(subjects))};
    (void)triples.Add(t);
  }

  // Random query of 1-3 clauses over variables ?x ?y ?z and constants.
  auto random_term = [&](bool allow_literal) {
    switch (rng.Below(allow_literal ? 4u : 3u)) {
      case 0: return store::QueryTerm::Var(rng.Chance(0.5) ? "x" : "y");
      case 1: return store::QueryTerm::Var("z");
      case 2: return store::QueryTerm::Res(rng.Chance(0.5)
                                               ? rng.Pick(subjects)
                                               : rng.Pick(properties));
      default: return store::QueryTerm::Lit(rng.Pick(literals));
    }
  };
  store::Query query;
  size_t clauses = 1 + rng.Below(3);
  for (size_t i = 0; i < clauses; ++i) {
    query.Where(random_term(false),
                rng.Chance(0.7) ? store::QueryTerm::Res(rng.Pick(properties))
                                : store::QueryTerm::Var("p" + std::to_string(i)),
                random_term(true));
  }

  auto engine = store::Execute(triples, query);
  ASSERT_TRUE(engine.ok()) << query.ToString() << ": " << engine.status();
  std::vector<store::Binding> reference = BruteForce(triples, query);
  EXPECT_EQ(Canonical(*engine), Canonical(reference))
      << query.ToString() << " over " << triples.size() << " triples";
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEquivalence,
                         ::testing::Range<uint64_t>(1, 40));

}  // namespace
}  // namespace slim
