#include <gtest/gtest.h>

#include "dmi/dynamic_dmi.h"

namespace slim::dmi {
namespace {

using store::BuildBundleScrapModel;
using store::IdentitySchema;
using store::ModelDef;
using store::SchemaDef;

class DynamicDmiTest : public ::testing::Test {
 protected:
  DynamicDmiTest()
      : model_(BuildBundleScrapModel()),
        dmi_(&store_, *IdentitySchema(model_, "slimpad"), model_) {}

  ModelDef model_;
  trim::TripleStore store_;
  DynamicDmi dmi_;
};

TEST_F(DynamicDmiTest, CreateTypedObjects) {
  auto bundle = dmi_.Create("Bundle");
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->element(), "Bundle");
  EXPECT_TRUE(bundle->valid());
  EXPECT_TRUE(dmi_.Create("NotAnElement").status().IsNotFound());
}

TEST_F(DynamicDmiTest, AttributesValidatedBySchema) {
  DynamicObject b = *dmi_.Create("Bundle");
  ASSERT_TRUE(b.Set("bundleName", "John Smith").ok());
  EXPECT_EQ(*b.Get("bundleName"), "John Smith");
  // Unknown connector.
  EXPECT_TRUE(b.Set("color", "red").IsConformance());
  EXPECT_TRUE(b.Get("color").status().IsConformance());
  // Link connector misused as attribute.
  EXPECT_TRUE(b.Set("bundleContent", "x").IsConformance());
  // Attribute misused as link.
  DynamicObject s = *dmi_.Create("Scrap");
  EXPECT_TRUE(b.Connect("bundleName", s).IsConformance());
}

TEST_F(DynamicDmiTest, LinksValidatedBySchema) {
  DynamicObject b = *dmi_.Create("Bundle");
  DynamicObject s = *dmi_.Create("Scrap");
  DynamicObject nested = *dmi_.Create("Bundle");
  ASSERT_TRUE(b.Connect("bundleContent", s).ok());
  ASSERT_TRUE(b.Connect("nestedBundle", nested).ok());
  // Wrong target element.
  EXPECT_TRUE(b.Connect("nestedBundle", s).IsConformance());
  auto connected = b.GetConnected("bundleContent");
  ASSERT_TRUE(connected.ok());
  ASSERT_EQ(connected->size(), 1u);
  EXPECT_EQ((*connected)[0], s);
  ASSERT_TRUE(b.Disconnect("bundleContent", s).ok());
  EXPECT_TRUE(b.GetConnected("bundleContent")->empty());
}

TEST_F(DynamicDmiTest, UpperCardinalityEnforcedAtWrite) {
  DynamicObject pad = *dmi_.Create("SlimPad");
  DynamicObject b1 = *dmi_.Create("Bundle");
  DynamicObject b2 = *dmi_.Create("Bundle");
  ASSERT_TRUE(pad.Connect("rootBundle", b1).ok());  // 0..1
  EXPECT_TRUE(pad.Connect("rootBundle", b2).IsConformance());
}

TEST_F(DynamicDmiTest, LookupAndInstancesOf) {
  DynamicObject b = *dmi_.Create("Bundle");
  auto again = dmi_.Lookup(b.id());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->element(), "Bundle");
  EXPECT_TRUE(dmi_.Lookup("inst:404").status().IsNotFound());
  (void)dmi_.Create("Bundle");
  (void)dmi_.Create("Scrap");
  EXPECT_EQ(dmi_.InstancesOf("Bundle")->size(), 2u);
  EXPECT_EQ(dmi_.InstancesOf("Scrap")->size(), 1u);
  EXPECT_TRUE(dmi_.InstancesOf("Nope").status().IsNotFound());
}

TEST_F(DynamicDmiTest, DeleteRemovesInstance) {
  DynamicObject b = *dmi_.Create("Bundle");
  ASSERT_TRUE(b.Set("bundleName", "X").ok());
  ASSERT_TRUE(dmi_.Delete(b).ok());
  EXPECT_TRUE(dmi_.Lookup(b.id()).status().IsNotFound());
  EXPECT_TRUE(dmi_.Delete(b).IsNotFound());
}

TEST_F(DynamicDmiTest, CheckReportsViolations) {
  DynamicObject b = *dmi_.Create("Bundle");
  // Required attributes missing -> violations.
  EXPECT_FALSE(dmi_.Check().conforms());
  ASSERT_TRUE(b.Set("bundleName", "B").ok());
  ASSERT_TRUE(b.Set("bundlePos", "0,0").ok());
  ASSERT_TRUE(b.Set("bundleWidth", "10").ok());
  ASSERT_TRUE(b.Set("bundleHeight", "10").ok());
  EXPECT_TRUE(dmi_.Check().conforms()) << dmi_.Check().ToString();
}

TEST_F(DynamicDmiTest, SaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/dmi_roundtrip.xml";
  DynamicObject b = *dmi_.Create("Bundle");
  ASSERT_TRUE(b.Set("bundleName", "Persisted").ok());
  DynamicObject s = *dmi_.Create("Scrap");
  ASSERT_TRUE(s.Set("scrapName", "Child").ok());
  ASSERT_TRUE(b.Connect("bundleContent", s).ok());
  ASSERT_TRUE(dmi_.Save(path).ok());

  trim::TripleStore store2;
  ModelDef model2 = BuildBundleScrapModel();
  DynamicDmi dmi2(&store2, *IdentitySchema(model2, "slimpad"), model2);
  ASSERT_TRUE(dmi2.Load(path).ok());
  auto loaded = dmi2.Lookup(b.id());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded->Get("bundleName"), "Persisted");
  auto kids = loaded->GetConnected("bundleContent");
  ASSERT_TRUE(kids.ok());
  ASSERT_EQ(kids->size(), 1u);
  EXPECT_EQ(*(*kids)[0].Get("scrapName"), "Child");
  std::remove(path.c_str());
}

TEST_F(DynamicDmiTest, GeneratedDmiForArbitrarySchema) {
  // The §6 automation claim: generate a working typed interface for a
  // schema that never existed before, with zero code.
  ModelDef generic = store::BuildGenericModel();
  SchemaDef schema("todo", "generic");
  ASSERT_TRUE(schema.AddElement("TodoList", "Entity", generic).ok());
  ASSERT_TRUE(schema.AddElement("Item", "Entity", generic).ok());
  ASSERT_TRUE(schema
                  .AddConnector({"title", "attribute", "TodoList", "String",
                                 0, 1},
                                generic)
                  .ok());
  ASSERT_TRUE(
      schema.AddConnector({"items", "link", "TodoList", "Item", 0,
                           store::kMany},
                          generic)
          .ok());
  ASSERT_TRUE(schema
                  .AddConnector({"text", "attribute", "Item", "String", 0, 1},
                                generic)
                  .ok());

  trim::TripleStore store;
  DynamicDmi dmi(&store, schema, generic);
  DynamicObject list = *dmi.Create("TodoList");
  ASSERT_TRUE(list.Set("title", "rounds prep").ok());
  DynamicObject item = *dmi.Create("Item");
  ASSERT_TRUE(item.Set("text", "check electrolytes").ok());
  ASSERT_TRUE(list.Connect("items", item).ok());
  EXPECT_TRUE(dmi.Check().conforms());
  // The schema still guards: Item has no "title".
  EXPECT_TRUE(item.Set("title", "x").IsConformance());
}

TEST(DynamicObjectTest, InvalidHandleFailsCleanly) {
  DynamicObject obj;
  EXPECT_FALSE(obj.valid());
  EXPECT_TRUE(obj.Set("x", "y").IsFailedPrecondition());
  EXPECT_TRUE(obj.Get("x").status().IsFailedPrecondition());
  EXPECT_TRUE(obj.GetConnected("x").status().IsFailedPrecondition());
}

}  // namespace
}  // namespace slim::dmi
