// Tests for the self-diagnosing runtime: SLO spec parsing and burn-rate
// math (with an injected clock), the alert ring's dedup / flap / eviction
// behavior, the watchdog's span-deadline and heartbeat checks, the
// StatsServer's robust request parsing and /healthz verdicts, and the full
// loop (slow ops burn an SLO, a stalled span trips the watchdog, the
// alert stream and health endpoint report it, a flight bundle lands on
// disk). Like obs_test.cc, everything here is library-level and must pass
// under both SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/alert.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "obs/slo.h"
#include "obs/watchdog.h"

namespace slim::obs {
namespace {

// ---------------------------------------------------------------------------
// SLO spec parsing
// ---------------------------------------------------------------------------

TEST(SloSpec, ParsesLatencyForm) {
  auto parsed = SloObjective::Parse("slim.query.latency_us p99 < 5ms");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const SloObjective& obj = parsed.ValueOrDie();
  EXPECT_EQ(obj.kind, SloKind::kLatency);
  EXPECT_EQ(obj.metric, "slim.query.latency_us");
  EXPECT_DOUBLE_EQ(obj.quantile, 0.99);
  EXPECT_EQ(obj.threshold_us, 5000u);
  EXPECT_EQ(obj.window_ms, 60'000);  // default
  EXPECT_EQ(obj.id, "slim_query_latency_us_p99");
  EXPECT_DOUBLE_EQ(obj.budget(), 1.0 - 0.99);
}

TEST(SloSpec, ParsesErrorRateFormBothSpellings) {
  for (const char* spec : {"slim.query.execute error_rate < 0.1%",
                           "slim.query.execute error-rate < 0.001"}) {
    auto parsed = SloObjective::Parse(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status();
    const SloObjective& obj = parsed.ValueOrDie();
    EXPECT_EQ(obj.kind, SloKind::kErrorRate);
    EXPECT_EQ(obj.error_counter, "slim.query.execute.error");
    EXPECT_EQ(obj.total_counter, "slim.query.execute.calls");
    EXPECT_DOUBLE_EQ(obj.max_error_fraction, 0.001);
    EXPECT_EQ(obj.id, "slim_query_execute_error_rate");
    EXPECT_DOUBLE_EQ(obj.budget(), 0.001);
  }
}

TEST(SloSpec, ParsesExplicitCountersIdAndWindow) {
  auto parsed = SloObjective::Parse(
      "adds: errors(trim.add.invalid,trim.add.ok) < 1% window 5s");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const SloObjective& obj = parsed.ValueOrDie();
  EXPECT_EQ(obj.id, "adds");
  EXPECT_EQ(obj.kind, SloKind::kErrorRate);
  EXPECT_EQ(obj.error_counter, "trim.add.invalid");
  EXPECT_EQ(obj.total_counter, "trim.add.ok");
  EXPECT_DOUBLE_EQ(obj.max_error_fraction, 0.01);
  EXPECT_EQ(obj.window_ms, 5000);
}

TEST(SloSpec, QuantileSpellings) {
  EXPECT_DOUBLE_EQ(
      SloObjective::Parse("m.lat p50 < 1ms").ValueOrDie().quantile, 0.50);
  EXPECT_DOUBLE_EQ(
      SloObjective::Parse("m.lat p99.9 < 1ms").ValueOrDie().quantile, 0.999);
  EXPECT_DOUBLE_EQ(
      SloObjective::Parse("m.lat p999 < 1ms").ValueOrDie().quantile, 0.999);
}

TEST(SloSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                    // empty
      "m.lat p99 5ms",                       // missing <
      "m.lat p99 < xyz",                     // bad duration
      "m.lat p0 < 1ms",                      // quantile out of range
      "m.lat p100 < 1ms",                    // quantile out of range
      "m.op error_rate < 150%",              // fraction out of range
      "errors(only.one) < 1%",               // needs two counters
      "Bad.Name p99 < 1ms",                  // metric charset
      "UPPER: m.lat p99 < 1ms",              // id charset
      "m.lat p99 < 1ms window 10us",         // window under 1ms
      "m.lat p99 < 1ms window soon",         // bad window duration
  };
  for (const char* spec : bad) {
    auto parsed = SloObjective::Parse(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << spec;
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsParseError()) << spec;
    }
  }
}

// ---------------------------------------------------------------------------
// SloEngine burn math, with an injected clock
// ---------------------------------------------------------------------------

// MetricsSnapshot stores sorted (name, value) vectors, not maps.
template <typename T>
T FindValue(const std::vector<std::pair<std::string, T>>& entries,
            const std::string& name) {
  for (const auto& [n, v] : entries) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "metric not found in snapshot: " << name;
  return T{};
}

std::atomic<int64_t> g_fake_now_ms{0};
int64_t FakeNowMs() { return g_fake_now_ms.load(std::memory_order_relaxed); }

SloEngineOptions FakeClockSlo() {
  SloEngineOptions options;
  options.now_ms = &FakeNowMs;
  return options;
}

TEST(SloEngine, FirstEvaluateOnlyEstablishesBaseline) {
  MetricsRegistry registry;
  SloEngine engine(&registry, FakeClockSlo());
  ASSERT_TRUE(engine.AddObjective("q.lat p99 < 1ms").ok());
  g_fake_now_ms = 0;
  registry.GetHistogram("q.lat")->Record(50'000);  // before the baseline
  engine.Evaluate();
  std::vector<SloStatus> statuses = engine.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].has_data);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
  EXPECT_EQ(engine.evaluations(), 1u);
}

TEST(SloEngine, LatencyBurnMathIsDeterministic) {
  MetricsRegistry registry;
  SloEngine engine(&registry, FakeClockSlo());
  // p99 < 1ms: budget is 1% of requests allowed over 1000us.
  ASSERT_TRUE(engine.AddObjective("q.lat p99 < 1ms window 1s").ok());
  LatencyHistogram* h = registry.GetHistogram("q.lat");

  g_fake_now_ms = 0;
  engine.Evaluate();  // baseline at (0 events)
  for (int i = 0; i < 90; ++i) h->Record(500);   // good: <= 1000us
  for (int i = 0; i < 10; ++i) h->Record(5000);  // bad: > 1000us
  g_fake_now_ms = 500;
  engine.Evaluate();

  std::vector<SloStatus> statuses = engine.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  const SloStatus& s = statuses[0];
  EXPECT_TRUE(s.has_data);
  EXPECT_EQ(s.window_total, 100u);
  EXPECT_EQ(s.window_bad, 10u);
  EXPECT_DOUBLE_EQ(s.bad_fraction, 0.1);
  // burn = 0.1 / 0.01 = 10x budget: well past critical_burn (2.0).
  EXPECT_NEAR(s.burn_rate, 10.0, 1e-9);
  EXPECT_EQ(s.state, SloState::kFailing);
  EXPECT_EQ(engine.OverallState(), SloState::kFailing);

  // Verdicts are published as fixed-point gauges.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(FindValue(snap.gauges, "slim.slo.q_lat_p99.burn_x1000"), 10'000);
  EXPECT_EQ(FindValue(snap.gauges, "slim.slo.q_lat_p99.state"), 2);
  EXPECT_EQ(FindValue(snap.counters, "slim.slo.evaluations"), 2u);
}

TEST(SloEngine, ErrorRateRecoversWhenTheWindowSlides) {
  MetricsRegistry registry;
  AlertRingOptions alert_options;
  alert_options.now_ms = &FakeNowMs;
  AlertRing alerts(nullptr, alert_options);
  SloEngine engine(&registry, FakeClockSlo());
  engine.set_alerts(&alerts);
  ASSERT_TRUE(engine.AddObjective("eid: errors(op.err,op.total) < 10% "
                                  "window 1s").ok());
  Counter* err = registry.GetCounter("op.err");
  Counter* total = registry.GetCounter("op.total");

  g_fake_now_ms = 0;
  engine.Evaluate();  // baseline
  err->Increment(5);
  total->Increment(10);
  g_fake_now_ms = 500;
  engine.Evaluate();
  // 5/10 bad against a 10% budget: burn 5x -> failing, alert raised.
  EXPECT_EQ(engine.OverallState(), SloState::kFailing);
  EXPECT_TRUE(alerts.IsActive("slo:eid"));

  // 90 clean ops later the same window reads 5/100 = 0.5x budget -> ok.
  total->Increment(90);
  g_fake_now_ms = 600;
  engine.Evaluate();
  EXPECT_EQ(engine.OverallState(), SloState::kOk);
  EXPECT_FALSE(alerts.IsActive("slo:eid"));
  // The full raise/resolve pair landed in the event stream.
  std::vector<AlertEvent> events = alerts.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].key, "slo:eid");
  EXPECT_EQ(events[0].kind, "slo_burn");
  EXPECT_FALSE(events[0].resolved);
  EXPECT_TRUE(events[1].resolved);

  // An idle window (baseline slides past all events) renders no verdict.
  g_fake_now_ms = 5'000;
  engine.Evaluate();
  g_fake_now_ms = 6'500;
  engine.Evaluate();
  std::vector<SloStatus> statuses = engine.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].has_data);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
}

TEST(SloEngine, RegistryResetRestartsTheWindow) {
  MetricsRegistry registry;
  SloEngine engine(&registry, FakeClockSlo());
  ASSERT_TRUE(engine.AddObjective("errors(op.err,op.total) < 10%").ok());
  g_fake_now_ms = 0;
  engine.Evaluate();
  registry.GetCounter("op.err")->Increment(50);
  registry.GetCounter("op.total")->Increment(50);
  g_fake_now_ms = 100;
  engine.Evaluate();
  EXPECT_EQ(engine.OverallState(), SloState::kFailing);

  registry.Reset();  // counters shrink: the old baseline is meaningless
  g_fake_now_ms = 200;
  engine.Evaluate();
  std::vector<SloStatus> statuses = engine.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].has_data);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
}

TEST(SloEngine, DuplicateIdsAreRejected) {
  MetricsRegistry registry;
  SloEngine engine(&registry);
  ASSERT_TRUE(engine.AddObjective("q.lat p99 < 1ms").ok());
  Status st = engine.AddObjective("q.lat p99 < 5ms");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(engine.objective_count(), 1u);
}

TEST(SloEngine, ExportJsonCarriesTheSchemaAndVerdicts) {
  MetricsRegistry registry;
  SloEngine engine(&registry, FakeClockSlo());
  ASSERT_TRUE(engine.AddObjective("q.lat p99 < 1ms").ok());
  g_fake_now_ms = 0;
  engine.Evaluate();
  std::string json = engine.ExportJson();
  EXPECT_NE(json.find("\"schema\":\"slim-slo-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"q_lat_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"overall\":\"ok\""), std::string::npos);
  EXPECT_NE(engine.ToText().find("q_lat_p99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AlertRing: dedup, escalation, eviction, flap suppression
// ---------------------------------------------------------------------------

AlertRingOptions FakeClockAlerts() {
  AlertRingOptions options;
  options.now_ms = &FakeNowMs;
  return options;
}

TEST(AlertRing, DedupsActiveKeysAndEmitsEscalations) {
  AlertRing ring(nullptr, FakeClockAlerts());
  g_fake_now_ms = 0;
  EXPECT_TRUE(ring.Raise("k", "stall", AlertSeverity::kWarn, "first"));
  EXPECT_FALSE(ring.Raise("k", "stall", AlertSeverity::kWarn, "again"));
  EXPECT_FALSE(ring.Raise("k", "stall", AlertSeverity::kInfo, "quieter"));
  EXPECT_EQ(ring.deduped(), 2u);
  // Escalation emits a new event while the key stays active.
  EXPECT_TRUE(ring.Raise("k", "stall", AlertSeverity::kCritical, "worse"));
  std::vector<ActiveAlert> active = ring.Active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(active[0].count, 4u);
  EXPECT_TRUE(ring.Resolve("k"));
  EXPECT_FALSE(ring.Resolve("k"));  // not active anymore
  EXPECT_EQ(ring.Events().size(), 3u);  // raise, escalation, resolve
}

TEST(AlertRing, EvictsOldestEventsAtCapacity) {
  AlertRingOptions options = FakeClockAlerts();
  options.capacity = 4;
  AlertRing ring(nullptr, options);
  g_fake_now_ms = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.Raise("k" + std::to_string(i), "stall",
                           AlertSeverity::kWarn, "m"));
  }
  std::vector<AlertEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(ring.evicted(), 2u);
  // Oldest first, seq monotonic, never reused.
  EXPECT_EQ(events.front().key, "k2");
  EXPECT_EQ(events.front().seq, 3u);
  EXPECT_EQ(events.back().seq, 6u);
  EXPECT_EQ(ring.active_count(), 6u);  // eviction drops events, not state
}

TEST(AlertRing, FlapSuppressionQuietsNoisyKeysThenRecovers) {
  AlertRingOptions options = FakeClockAlerts();
  options.flap_window_ms = 1000;
  options.flap_threshold = 4;
  AlertRing ring(nullptr, options);

  g_fake_now_ms = 0;
  // Each cycle is two transitions; the 5th transition inside the window
  // crosses flap_threshold=4 and stops emitting.
  EXPECT_TRUE(ring.Raise("k", "stall", AlertSeverity::kWarn, "m"));   // t1
  EXPECT_TRUE(ring.Resolve("k"));                                     // t2
  EXPECT_TRUE(ring.Raise("k", "stall", AlertSeverity::kWarn, "m"));   // t3
  EXPECT_TRUE(ring.Resolve("k"));                                     // t4
  EXPECT_FALSE(ring.Raise("k", "stall", AlertSeverity::kWarn, "m"));  // t5
  EXPECT_FALSE(ring.Resolve("k"));
  EXPECT_GE(ring.flap_suppressed(), 2u);
  EXPECT_EQ(ring.Events().size(), 4u);

  // State is still tracked while suppressed.
  EXPECT_FALSE(ring.Raise("k", "stall", AlertSeverity::kWarn, "m"));
  EXPECT_TRUE(ring.IsActive("k"));
  std::vector<ActiveAlert> active = ring.Active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_TRUE(active[0].flapping);

  // A calmer window clears the suppression: the next transition emits.
  g_fake_now_ms = 2500;
  EXPECT_TRUE(ring.Resolve("k"));
  EXPECT_TRUE(ring.Raise("k", "stall", AlertSeverity::kWarn, "m"));
}

TEST(AlertRing, ExportJsonAndMetrics) {
  MetricsRegistry registry;
  AlertRing ring(&registry, FakeClockAlerts());
  g_fake_now_ms = 42;
  ring.Raise("slo:q", "slo_burn", AlertSeverity::kCritical, "burning");
  std::string json = ring.ExportJson();
  EXPECT_NE(json.find("\"schema\":\"slim-alerts-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"slo:q\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"critical\""), std::string::npos);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(FindValue(snap.counters, "obs.alert.raised"), 1u);
  EXPECT_EQ(FindValue(snap.gauges, "obs.alert.active"), 1);
  ring.Clear();
  EXPECT_EQ(ring.active_count(), 0u);
  EXPECT_EQ(ring.raised(), 1u);  // lifetime totals survive Clear
}

// ---------------------------------------------------------------------------
// Watchdog: span deadlines (exact edge), heartbeats, health
// ---------------------------------------------------------------------------

TEST(Watchdog, SpanExactlyAtDeadlineDoesNotTrip) {
  MetricsRegistry registry;
  Tracer tracer;
  AlertRing alerts(nullptr, FakeClockAlerts());
  Watchdog watchdog(&registry, &tracer);
  watchdog.set_alerts(&alerts);
  watchdog.SetSpanDeadline("op", 10);
  watchdog.Arm();
  {
    Span span = tracer.StartSpan("op");
    std::vector<ActiveSpanInfo> active = tracer.ActiveSpans();
    ASSERT_EQ(active.size(), 1u);
    const uint64_t start = active[0].start_ns;
    const uint64_t deadline_ns = 10ull * 1'000'000;
    // Exactly at the deadline: not stalled.
    EXPECT_EQ(watchdog.CheckSpansAt(start + deadline_ns), 0u);
    EXPECT_FALSE(alerts.IsActive("stall:op"));
    // One nanosecond past: stalled, critical alert, counters bump.
    EXPECT_EQ(watchdog.CheckSpansAt(start + deadline_ns + 1), 1u);
    EXPECT_TRUE(alerts.IsActive("stall:op"));
    EXPECT_EQ(FindValue(registry.Snapshot().counters,
                        "obs.watchdog.stalled_spans"),
              1u);
    // Still stalled on the next pass: no duplicate trip.
    EXPECT_EQ(watchdog.CheckSpansAt(start + deadline_ns + 2), 1u);
    EXPECT_EQ(FindValue(registry.Snapshot().counters, "obs.watchdog.trips"),
              1u);
  }
  // The span finished: the stall recovers and the alert resolves.
  EXPECT_EQ(watchdog.CheckSpansAt(tracer.now_ns()), 0u);
  EXPECT_FALSE(alerts.IsActive("stall:op"));
  watchdog.Disarm();
}

TEST(Watchdog, SpansWithoutDeadlinesAreIgnored) {
  MetricsRegistry registry;
  Tracer tracer;
  Watchdog watchdog(&registry, &tracer);
  watchdog.Arm();
  {
    Span span = tracer.StartSpan("unwatched");
    EXPECT_EQ(watchdog.CheckSpansAt(tracer.now_ns() + 1'000'000'000), 0u);
  }
  watchdog.Disarm();
}

TEST(Watchdog, HeartbeatLossTripsAndRecovers) {
  g_fake_now_ms = 1000;
  MetricsRegistry registry;
  Tracer tracer;
  AlertRing alerts(nullptr, FakeClockAlerts());
  WatchdogOptions options;
  options.now_ms = &FakeNowMs;
  Watchdog watchdog(&registry, &tracer, options);
  watchdog.set_alerts(&alerts);
  Watchdog::Heartbeat* heartbeat =
      watchdog.RegisterHeartbeat("svc", /*max_silence_ms=*/100,
                                 /*periodic=*/true);
  watchdog.Arm();

  // Silence is measured from arming, not registration: no trip yet.
  g_fake_now_ms = 1050;
  watchdog.CheckOnce();
  EXPECT_FALSE(alerts.IsActive("heartbeat:svc"));
  EXPECT_EQ(watchdog.Health().overall, HealthState::kOk);

  // 200ms of silence > the 100ms limit: heartbeat lost.
  g_fake_now_ms = 1200;
  watchdog.CheckOnce();
  EXPECT_TRUE(alerts.IsActive("heartbeat:svc"));
  HealthReport report = watchdog.Health();
  EXPECT_EQ(report.overall, HealthState::kFailing);
  ASSERT_EQ(report.failing().size(), 1u);
  EXPECT_EQ(report.failing()[0], "svc");
  EXPECT_NE(report.ToJson().find("\"failing\":[\"svc\"]"), std::string::npos);
  EXPECT_EQ(FindValue(registry.Snapshot().counters,
                      "obs.watchdog.heartbeat_misses"),
            1u);

  // A beat recovers it and resolves the alert.
  g_fake_now_ms = 1250;
  watchdog.Beat(heartbeat);
  watchdog.CheckOnce();
  EXPECT_FALSE(alerts.IsActive("heartbeat:svc"));
  EXPECT_EQ(watchdog.Health().overall, HealthState::kOk);
  EXPECT_EQ(heartbeat->beats.load(), 1u);
  watchdog.Disarm();
}

TEST(Watchdog, OnActivityHeartbeatsNeverTrip) {
  g_fake_now_ms = 0;
  MetricsRegistry registry;
  Tracer tracer;
  WatchdogOptions options;
  options.now_ms = &FakeNowMs;
  Watchdog watchdog(&registry, &tracer, options);
  watchdog.RegisterOnActivity("idle.subsystem");
  watchdog.Arm();
  g_fake_now_ms = 1'000'000;  // ~17 minutes of silence
  watchdog.CheckOnce();
  HealthReport report = watchdog.Health();
  EXPECT_EQ(report.overall, HealthState::kOk);
  bool found = false;
  for (const SubsystemHealth& sub : report.subsystems) {
    if (sub.name == "idle.subsystem") {
      found = true;
      EXPECT_EQ(sub.state, HealthState::kOk);
      EXPECT_EQ(sub.detail, "no activity recorded");
    }
  }
  EXPECT_TRUE(found);
  watchdog.Disarm();
}

TEST(Watchdog, BeatIsInertWhenNotArmed) {
  MetricsRegistry registry;
  Tracer tracer;
  Watchdog watchdog(&registry, &tracer);
  Watchdog::Heartbeat* heartbeat = watchdog.RegisterOnActivity("svc");
  watchdog.Beat(heartbeat);
  EXPECT_EQ(heartbeat->beats.load(), 0u);
  EXPECT_EQ(heartbeat->last_beat_ms.load(), -1);
  watchdog.Beat(nullptr);  // null-safe
  // An unarmed watchdog creates no obs.watchdog.* metrics at all.
  EXPECT_TRUE(registry.Snapshot().counters.empty());
  EXPECT_TRUE(registry.Snapshot().gauges.empty());
}

TEST(Watchdog, StartStopRunsTheBackgroundThread) {
  MetricsRegistry registry;
  Tracer tracer;
  WatchdogOptions options;
  options.poll_interval_ms = 1;
  Watchdog watchdog(&registry, &tracer, options);
  ASSERT_TRUE(watchdog.Start().ok());
  EXPECT_TRUE(watchdog.running());
  EXPECT_TRUE(watchdog.Start().IsFailedPrecondition());
  while (watchdog.checks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watchdog.Stop();
  watchdog.Stop();  // idempotent
  EXPECT_FALSE(watchdog.running());
  EXPECT_FALSE(watchdog.armed());
  EXPECT_EQ(FindValue(registry.Snapshot().gauges, "obs.watchdog.running"), 0);
}

// ---------------------------------------------------------------------------
// StatsServer: robust request parsing
// ---------------------------------------------------------------------------

// Sends raw bytes (optionally half-closing the write side) and returns the
// full response.
std::string RawRequest(uint16_t port, const std::string& data) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);  // our side is done: a short read stays short
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(StatsServerRobustness, TruncatedRequestLineIs400NotMisrouted) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  // A partial request line (no CRLF ever arrives) must be answered 400 —
  // it used to fall through to the path matcher and 404 on "/metr".
  std::string response = RawRequest(server.port(), "GET /metr");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  EXPECT_EQ(Body(response), "incomplete request line\n");
  EXPECT_GE(server.errors_served(), 1u);
  server.Stop();
}

TEST(StatsServerRobustness, OversizedRequestLineIs414) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  std::string long_path(9000, 'a');
  std::string response =
      RawRequest(server.port(), "GET /" + long_path + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("414 URI Too Long"), std::string::npos);
  server.Stop();
}

TEST(StatsServerRobustness, NonGetIs405AndGarbageIs400) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  std::string post =
      RawRequest(server.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);
  std::string garbage = RawRequest(server.port(), "NOT-HTTP-AT-ALL\r\n\r\n");
  EXPECT_NE(garbage.find("400 Bad Request"), std::string::npos);
  EXPECT_GE(server.errors_served(), 2u);
  server.Stop();
}

TEST(StatsServerRobustness, RequestAndErrorCountersTrack) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
  EXPECT_GE(server.errors_served(), 1u);
  server.Stop();
}

TEST(StatsServer, SloAndAlertEndpointsAre404UntilAttached) {
  MetricsRegistry registry;
  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(HttpGet(server.port(), "/slo.json").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/alerts.json").find("404"),
            std::string::npos);
  SloEngine slo(&registry);
  AlertRing alerts(&registry);
  server.set_slo(&slo);
  server.set_alerts(&alerts);
  EXPECT_NE(HttpGet(server.port(), "/slo.json").find("slim-slo-v1"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/alerts.json").find("slim-alerts-v1"),
            std::string::npos);
  server.set_slo(nullptr);
  server.set_alerts(nullptr);
  server.Stop();
}

// ---------------------------------------------------------------------------
// The full loop: burn an SLO, stall a span, read it all back over HTTP
// ---------------------------------------------------------------------------

TEST(SelfDiagnosis, FullLoopFromBurnToHealthzAndFlightBundle) {
  g_fake_now_ms = 0;
  MetricsRegistry registry;
  Tracer tracer;
  AlertRing alerts(&registry, FakeClockAlerts());
  SloEngine slo(&registry, FakeClockSlo());
  slo.set_alerts(&alerts);
  WatchdogOptions wd_options;
  wd_options.now_ms = &FakeNowMs;
  Watchdog watchdog(&registry, &tracer, wd_options);
  watchdog.set_alerts(&alerts);
  watchdog.set_slo(&slo);
  watchdog.SetSpanDeadline("slim.op", 5);

  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  server.set_slo(&slo);
  server.set_alerts(&alerts);
  server.set_watchdog(&watchdog);

  // Healthy before arming: /healthz stays the plain probe answer.
  EXPECT_EQ(Body(HttpGet(server.port(), "/healthz")), "ok\n");

  // Arm with a flight-recorder dump path so the stall writes a bundle.
  FlightRecorder& recorder = DefaultFlightRecorder();
  recorder.Clear();
  ASSERT_TRUE(recorder.Install());
  std::string bundle_path = ::testing::TempDir() + "obs_slo_bundle.json";
  std::remove(bundle_path.c_str());
  recorder.set_dump_path(bundle_path);
  g_fake_now_ms = 0;
  watchdog.Arm();

  // A bad minute: 1 error in 4 calls against a 10% error budget...
  ASSERT_TRUE(
      slo.AddObjective("slim.op error_rate < 10% window 1s").ok());
  watchdog.CheckOnce();  // baseline
  registry.GetCounter("slim.op.calls")->Increment(4);
  registry.GetCounter("slim.op.error")->Increment(1);
  g_fake_now_ms = 500;
  // ...while a span blows through its 5ms deadline.
  {
    Span span = tracer.StartSpan("slim.op");
    std::vector<ActiveSpanInfo> active = tracer.ActiveSpans();
    ASSERT_EQ(active.size(), 1u);
    watchdog.CheckOnce();  // heartbeats + SLO (burn 2.5x -> failing)
    watchdog.CheckSpansAt(active[0].start_ns + 6 * 1'000'000);

    // The whole verdict is visible over HTTP while the stall is live.
    std::string slo_json = Body(HttpGet(server.port(), "/slo.json"));
    EXPECT_NE(slo_json.find("\"schema\":\"slim-slo-v1\""), std::string::npos);
    EXPECT_NE(slo_json.find("\"state\":\"failing\""), std::string::npos);
    std::string alerts_json = Body(HttpGet(server.port(), "/alerts.json"));
    EXPECT_NE(alerts_json.find("\"key\":\"stall:slim.op\""),
              std::string::npos);
    EXPECT_NE(alerts_json.find("\"key\":\"slo:slim_op_error_rate\""),
              std::string::npos);
    std::string health = HttpGet(server.port(), "/healthz");
    EXPECT_NE(health.find("503 Service Unavailable"), std::string::npos);
    EXPECT_NE(health.find("\"status\":\"failing\""), std::string::npos);
    EXPECT_NE(health.find("span:slim.op"), std::string::npos);

#if SLIM_OBS_ENABLED
    // The stall fired the flight recorder: a diagnostic bundle is on disk.
    std::ifstream bundle(bundle_path);
    EXPECT_TRUE(bundle.good())
        << "expected the watchdog trip to write " << bundle_path;
#endif
  }

  // Recovery: span finished, errors stop, the window slides clean.
  watchdog.CheckSpansAt(tracer.now_ns());
  registry.GetCounter("slim.op.calls")->Increment(96);
  g_fake_now_ms = 900;
  watchdog.CheckOnce();
  EXPECT_EQ(watchdog.Health().overall, HealthState::kOk);
  EXPECT_EQ(Body(HttpGet(server.port(), "/healthz")), "ok\n");
  EXPECT_EQ(alerts.active_count(), 0u);

  server.Stop();
  watchdog.Disarm();
  recorder.set_dump_path("");
  recorder.Uninstall();
  std::remove(bundle_path.c_str());
}

// ---------------------------------------------------------------------------
// Thread-safety stress (run under TSan in CI): a live watchdog, four
// writer threads, and concurrent HTTP scrapes of the alert stream.
// ---------------------------------------------------------------------------

TEST(ObsStress, WatchdogWritersAndLiveScrapes) {
  MetricsRegistry registry;
  Tracer tracer;
  AlertRing alerts(&registry);
  SloEngine slo(&registry);
  slo.set_alerts(&alerts);
  ASSERT_TRUE(slo.AddObjective("stress.lat p99 < 1ms window 1s").ok());
  WatchdogOptions options;
  options.poll_interval_ms = 1;
  Watchdog watchdog(&registry, &tracer, options);
  watchdog.set_alerts(&alerts);
  watchdog.set_slo(&slo);
  watchdog.SetSpanDeadline("stress.op", 1);
  Watchdog::Heartbeat* heartbeat =
      watchdog.RegisterHeartbeat("stress.writers", /*max_silence_ms=*/50,
                                 /*periodic=*/true);

  StatsServer server(&registry, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  server.set_slo(&slo);
  server.set_alerts(&alerts);
  server.set_watchdog(&watchdog);
  ASSERT_TRUE(watchdog.Start().ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &tracer, &watchdog, heartbeat, &stop] {
      LatencyHistogram* h = registry.GetHistogram("stress.lat");
      while (!stop.load(std::memory_order_relaxed)) {
        Span span = tracer.StartSpan("stress.op");
        h->Record(500);
        h->Record(5000);  // keep the SLO burning
        watchdog.Beat(heartbeat);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Scrape the live endpoints while everything churns.
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(HttpGet(server.port(), "/alerts.json").find("slim-alerts-v1"),
              std::string::npos);
    EXPECT_FALSE(HttpGet(server.port(), "/slo.json").empty());
    EXPECT_FALSE(HttpGet(server.port(), "/healthz").empty());
  }
  while (watchdog.checks() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
  watchdog.Stop();
  server.Stop();
  EXPECT_GE(watchdog.checks(), 10u);
  EXPECT_GE(slo.evaluations(), 10u);
}

}  // namespace
}  // namespace slim::obs
