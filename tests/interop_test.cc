#include <gtest/gtest.h>

#include "mark/validator.h"
#include "mark/modules.h"
#include "slim/conformance.h"
#include "slim/topic_map.h"
#include "slimpad/slimpad_dmi.h"
#include "trim/rdf_xml.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// RDF/XML interchange
// ---------------------------------------------------------------------------

TEST(RdfXmlTest, RoundTrip) {
  trim::TripleStore store;
  ASSERT_TRUE(store.AddLiteral("bundle1", "bundleName", "John & <Smith>").ok());
  ASSERT_TRUE(store.AddResource("bundle1", "bundleContent", "scrap4").ok());
  ASSERT_TRUE(store.AddLiteral("scrap4", "scrapName", "Na 140").ok());
  ASSERT_TRUE(store.AddLiteral("scrap4", "empty", "").ok());
  ASSERT_TRUE(store.AddResource("scrap4", "slim:type", "T").ok());

  auto xml_text = trim::StoreToRdfXml(store);
  ASSERT_TRUE(xml_text.ok()) << xml_text.status();
  EXPECT_NE(xml_text->find("rdf:Description"), std::string::npos);
  EXPECT_NE(xml_text->find("rdf:about=\"bundle1\""), std::string::npos);
  EXPECT_NE(xml_text->find("rdf:resource=\"scrap4\""), std::string::npos);

  trim::TripleStore loaded;
  ASSERT_TRUE(trim::StoreFromRdfXml(*xml_text, &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
  store.ForEach([&](const trim::Triple& t) {
    EXPECT_TRUE(loaded.Contains(t)) << trim::TripleToString(t);
  });
}

TEST(RdfXmlTest, InvalidPropertyNameRejectedOnExport) {
  trim::TripleStore store;
  ASSERT_TRUE(store.AddLiteral("s", "not a name", "v").ok());
  EXPECT_TRUE(trim::StoreToRdfXml(store).status().IsInvalidArgument());
}

TEST(RdfXmlTest, ImportRejections) {
  trim::TripleStore store;
  EXPECT_FALSE(trim::StoreFromRdfXml("<wrong/>", &store).ok());
  EXPECT_FALSE(trim::StoreFromRdfXml(
                   "<rdf:RDF><rdf:Description><p>v</p></rdf:Description>"
                   "</rdf:RDF>",
                   &store)
                   .ok());
}

TEST(RdfXmlTest, WholePadInterchange) {
  // The §4.3 interoperability claim end to end: a pad built by the DMI is
  // exported as RDF/XML and re-imported into a second store that rebuilds
  // an identical pad.
  trim::TripleStore store;
  pad::SlimPadDmi dmi(&store);
  const pad::SlimPad* p = *dmi.Create_SlimPad("Rounds");
  const pad::Bundle* b = *dmi.Create_Bundle("John", {5, 6}, 100, 50);
  ASSERT_TRUE(dmi.Update_rootBundle(p->id(), b->id()).ok());
  const pad::Scrap* s = *dmi.Create_Scrap("Na 140", {1, 2});
  ASSERT_TRUE(dmi.AddScrapToBundle(b->id(), s->id()).ok());

  auto rdf = trim::StoreToRdfXml(store);
  ASSERT_TRUE(rdf.ok()) << rdf.status();
  trim::TripleStore store2;
  ASSERT_TRUE(trim::StoreFromRdfXml(*rdf, &store2).ok());
  pad::SlimPadDmi dmi2(&store2);
  ASSERT_TRUE(dmi2.RebuildFromTriples().ok());
  const pad::Bundle* b2 = *dmi2.GetBundle(b->id());
  EXPECT_EQ(b2->name(), "John");
  EXPECT_EQ(b2->scraps(), (std::vector<std::string>{s->id()}));
}

// ---------------------------------------------------------------------------
// Topic-map model + cross-model mapping
// ---------------------------------------------------------------------------

TEST(TopicMapTest, ModelIsWellFormedAndRoundTrips) {
  store::ModelDef model = store::BuildTopicMapModel();
  EXPECT_TRUE(model.FindConstruct("Topic").has_value());
  EXPECT_EQ(*model.FindConstruct("Locator"),
            store::ConstructKind::kMarkConstruct);
  const store::ConnectorDef* member = model.FindConnector("member");
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->min_card, 2);

  trim::TripleStore store;
  ASSERT_TRUE(model.ToTriples(&store).ok());
  auto back = store::ModelDef::FromTriples(store, "topic-map");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->constructs(), model.constructs());

  auto schema = store::TopicMapSchema();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->elements().size(), 4u);
}

TEST(TopicMapTest, PadMapsToConformingTopicMap) {
  // Build a pad through the DMI...
  trim::TripleStore pad_store;
  pad::SlimPadDmi dmi(&pad_store);
  const pad::SlimPad* p = *dmi.Create_SlimPad("Rounds");
  const pad::Bundle* root = *dmi.Create_Bundle("John Smith", {0, 0}, 10, 10);
  ASSERT_TRUE(dmi.Update_rootBundle(p->id(), root->id()).ok());
  const pad::Bundle* lytes = *dmi.Create_Bundle("Electrolyte", {0, 0}, 5, 5);
  ASSERT_TRUE(dmi.AddNestedBundle(root->id(), lytes->id()).ok());
  const pad::Scrap* s = *dmi.Create_Scrap("Na 140", {1, 1});
  ASSERT_TRUE(dmi.AddScrapToBundle(lytes->id(), s->id()).ok());
  const pad::MarkHandle* h = *dmi.Create_MarkHandle("mark9");
  ASSERT_TRUE(dmi.SetScrapMark(s->id(), h->id()).ok());
  ASSERT_TRUE(dmi.AddScrapAnnotation(s->id(), "note").ok());  // dropped

  // ...map it to a topic map...
  store::Mapping mapping = store::BundleScrapToTopicMap();
  trim::TripleStore tm_store;
  auto stats = mapping.Apply(pad_store, &tm_store);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->instances_mapped, 5u);  // pad, 2 bundles, scrap, handle

  // ...and check conformance against the topic-map model.
  store::ModelDef tm_model = store::BuildTopicMapModel();
  store::SchemaDef tm_schema = *store::TopicMapSchema();
  store::ConformanceReport report =
      store::CheckConformance(tm_store, tm_schema, tm_model);
  EXPECT_TRUE(report.conforms()) << report.ToString();

  // Shape spot checks.
  store::InstanceGraph graph(&tm_store);
  EXPECT_EQ(*graph.GetValue(root->id(), "topicName"), "John Smith");
  EXPECT_EQ(graph.GetConnected(root->id(), "narrower"),
            (std::vector<std::string>{lytes->id()}));
  EXPECT_EQ(graph.GetConnected(lytes->id(), "occurrence"),
            (std::vector<std::string>{s->id()}));
  EXPECT_EQ(*graph.GetValue(s->id(), "occurrenceLabel"), "Na 140");
  EXPECT_EQ(*graph.GetValue(h->id(), "locatorRef"), "mark9");
  // Geometry and annotations were dropped.
  EXPECT_TRUE(graph.GetValue(s->id(), "scrapPos").status().IsNotFound());
  EXPECT_TRUE(
      graph.GetValue(s->id(), "scrapAnnotation").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Mark validation
// ---------------------------------------------------------------------------

TEST(MarkValidatorTest, DetectsDriftAndDangling) {
  baseapp::SpreadsheetApp excel;
  auto wb = std::make_unique<doc::Workbook>("meds.book");
  doc::Worksheet* ws = wb->AddSheet("Meds").ValueOrDie();
  ws->SetValue({0, 0}, std::string("dopamine"));
  ws->SetValue({1, 0}, std::string("heparin"));
  ASSERT_TRUE(excel.RegisterWorkbook(std::move(wb)).ok());

  baseapp::XmlApp xml;

  mark::MarkManager marks;
  mark::ExcelMarkModule excel_module(&excel);
  mark::XmlMarkModule xml_module(&xml);
  ASSERT_TRUE(marks.RegisterModule(&excel_module).ok());
  ASSERT_TRUE(marks.RegisterModule(&xml_module).ok());

  ASSERT_TRUE(
      excel.Select("meds.book", "Meds", doc::RangeRef{{0, 0}, {0, 0}}).ok());
  std::string stable = *marks.CreateMarkFromSelection("excel");
  ASSERT_TRUE(
      excel.Select("meds.book", "Meds", doc::RangeRef{{1, 0}, {1, 0}}).ok());
  std::string drifting = *marks.CreateMarkFromSelection("excel");
  // A mark whose document will never open.
  ASSERT_TRUE(marks
                  .AdoptMark(std::make_unique<mark::XmlMark>(
                      "ghost1", "does-not-exist.xml", "/r"))
                  .ok());

  // Drift: edit the heparin cell after the mark was taken.
  doc::Workbook* live = *excel.GetWorkbook("meds.book");
  (*live->GetSheet("Meds"))->SetValue({1, 0}, std::string("warfarin"));

  mark::ValidationReport report = mark::ValidateAllMarks(&marks);
  EXPECT_EQ(report.audits.size(), 3u);
  EXPECT_EQ(report.valid, 1u);
  EXPECT_EQ(report.changed, 1u);
  EXPECT_EQ(report.dangling, 1u);
  EXPECT_FALSE(report.all_valid());

  std::map<std::string, mark::MarkHealth> by_id;
  for (const auto& a : report.audits) by_id[a.mark_id] = a.health;
  EXPECT_EQ(by_id[stable], mark::MarkHealth::kValid);
  EXPECT_EQ(by_id[drifting], mark::MarkHealth::kContentChanged);
  EXPECT_EQ(by_id["ghost1"], mark::MarkHealth::kDangling);

  // The report narrates the drift.
  std::string text = report.ToString();
  EXPECT_NE(text.find("warfarin"), std::string::npos);
  EXPECT_NE(text.find("heparin"), std::string::npos);
}

TEST(MarkValidatorTest, EmptyManagerAllValid) {
  mark::MarkManager marks;
  mark::ValidationReport report = mark::ValidateAllMarks(&marks);
  EXPECT_TRUE(report.all_valid());
  EXPECT_TRUE(report.audits.empty());
}

}  // namespace
}  // namespace slim
