#include <gtest/gtest.h>

#include "doc/spreadsheet/a1.h"

namespace slim::doc {
namespace {

TEST(ColumnNameTest, FirstColumns) {
  EXPECT_EQ(ColumnName(0), "A");
  EXPECT_EQ(ColumnName(1), "B");
  EXPECT_EQ(ColumnName(25), "Z");
  EXPECT_EQ(ColumnName(26), "AA");
  EXPECT_EQ(ColumnName(27), "AB");
  EXPECT_EQ(ColumnName(51), "AZ");
  EXPECT_EQ(ColumnName(52), "BA");
  EXPECT_EQ(ColumnName(701), "ZZ");
  EXPECT_EQ(ColumnName(702), "AAA");
}

TEST(ColumnNameTest, ParseInvertsFormat) {
  for (int32_t col : {0, 1, 25, 26, 27, 700, 701, 702, 18277}) {
    Result<int32_t> parsed = ParseColumnName(ColumnName(col));
    ASSERT_TRUE(parsed.ok()) << col;
    EXPECT_EQ(*parsed, col);
  }
}

TEST(ColumnNameTest, ParseCaseInsensitive) {
  EXPECT_EQ(*ParseColumnName("ab"), 27);
  EXPECT_EQ(*ParseColumnName("Ab"), 27);
}

TEST(ColumnNameTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseColumnName("").ok());
  EXPECT_FALSE(ParseColumnName("A1").ok());
  EXPECT_FALSE(ParseColumnName("-").ok());
}

TEST(ParseCellTest, Basic) {
  Result<CellRef> r = ParseCell("B12");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row, 11);
  EXPECT_EQ(r->col, 1);
}

TEST(ParseCellTest, AbsoluteMarkersAccepted) {
  EXPECT_EQ(*ParseCell("$C$3"), (CellRef{2, 2}));
  EXPECT_EQ(*ParseCell("$C3"), (CellRef{2, 2}));
  EXPECT_EQ(*ParseCell("C$3"), (CellRef{2, 2}));
}

TEST(ParseCellTest, WhitespaceTolerated) {
  EXPECT_EQ(*ParseCell("  A1 "), (CellRef{0, 0}));
}

TEST(ParseCellTest, Rejections) {
  for (const char* bad : {"", "A", "1", "A0", "1A", "A-1", "A1B", "A 1"}) {
    EXPECT_FALSE(ParseCell(bad).ok()) << bad;
  }
}

TEST(FormatCellTest, RoundTrip) {
  for (const CellRef ref : {CellRef{0, 0}, CellRef{11, 1}, CellRef{99, 27},
                            CellRef{1048575, 16383}}) {
    EXPECT_EQ(*ParseCell(FormatCell(ref)), ref);
  }
}

TEST(ParseRangeTest, TwoCorner) {
  Result<RangeRef> r = ParseRange("A1:C3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->start, (CellRef{0, 0}));
  EXPECT_EQ(r->end, (CellRef{2, 2}));
  EXPECT_EQ(r->rows(), 3);
  EXPECT_EQ(r->cols(), 3);
  EXPECT_EQ(r->size(), 9);
}

TEST(ParseRangeTest, SingleCellBecomesUnitRange) {
  Result<RangeRef> r = ParseRange("B2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->start, r->end);
  EXPECT_EQ(r->size(), 1);
}

TEST(ParseRangeTest, NormalizesSwappedCorners) {
  Result<RangeRef> r = ParseRange("C3:A1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->start, (CellRef{0, 0}));
  EXPECT_EQ(r->end, (CellRef{2, 2}));
}

TEST(ParseRangeTest, Rejections) {
  for (const char* bad : {"", ":", "A1:", ":B2", "A1:B2:C3", "A:B"}) {
    EXPECT_FALSE(ParseRange(bad).ok()) << bad;
  }
}

TEST(FormatRangeTest, SingleCellCollapses) {
  EXPECT_EQ(FormatRange(RangeRef{{1, 1}, {1, 1}}), "B2");
  EXPECT_EQ(FormatRange(RangeRef{{0, 0}, {2, 2}}), "A1:C3");
}

TEST(RangeRefTest, Contains) {
  RangeRef r{{1, 1}, {3, 3}};
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({2, 2}));
  EXPECT_TRUE(r.Contains({3, 3}));
  EXPECT_FALSE(r.Contains({0, 2}));
  EXPECT_FALSE(r.Contains({4, 2}));
  EXPECT_FALSE(r.Contains({2, 0}));
}

// Property sweep: parse(format(x)) == x over a grid of cells and ranges.
class A1RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(A1RoundTrip, CellBijective) {
  int n = GetParam();
  CellRef ref{n * 37 % 5000, n * 101 % 800};
  EXPECT_EQ(*ParseCell(FormatCell(ref)), ref);
}

TEST_P(A1RoundTrip, RangeBijective) {
  int n = GetParam();
  RangeRef range{{n % 100, n % 26}, {n % 100 + n % 7, n % 26 + n % 5}};
  EXPECT_EQ(*ParseRange(FormatRange(range)), range);
}

INSTANTIATE_TEST_SUITE_P(Sweep, A1RoundTrip, ::testing::Range(0, 50));

}  // namespace
}  // namespace slim::doc
