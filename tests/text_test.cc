#include <gtest/gtest.h>

#include "doc/text/text_document.h"

namespace slim::doc::text {
namespace {

TEST(TextSpanTest, ToStringParseRoundTrip) {
  TextSpan span{3, 10, 21};
  EXPECT_EQ(span.ToString(), "p3:10-21");
  auto back = TextSpan::Parse("p3:10-21");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, span);
}

TEST(TextSpanTest, ParseRejections) {
  for (const char* bad :
       {"", "3:10-21", "p3", "p3:10", "p3:21-10", "p-1:0-1", "px:1-2",
        "p3:a-b"}) {
    EXPECT_FALSE(TextSpan::Parse(bad).ok()) << bad;
  }
}

TEST(TextDocumentTest, AddAndGetParagraphs) {
  TextDocument doc;
  EXPECT_EQ(doc.AddParagraph("Title", 1), 0);
  EXPECT_EQ(doc.AddParagraph("Body text here."), 1);
  EXPECT_EQ(doc.paragraph_count(), 2u);
  EXPECT_EQ((*doc.GetParagraph(0))->heading_level, 1);
  EXPECT_EQ((*doc.GetParagraph(1))->text, "Body text here.");
  EXPECT_TRUE(doc.GetParagraph(2).status().IsOutOfRange());
  EXPECT_TRUE(doc.GetParagraph(-1).status().IsOutOfRange());
}

TEST(TextDocumentTest, InsertAndRemove) {
  TextDocument doc;
  doc.AddParagraph("one");
  doc.AddParagraph("three");
  ASSERT_TRUE(doc.InsertParagraph(1, "two").ok());
  EXPECT_EQ((*doc.GetParagraph(1))->text, "two");
  ASSERT_TRUE(doc.RemoveParagraph(0).ok());
  EXPECT_EQ((*doc.GetParagraph(0))->text, "two");
  EXPECT_TRUE(doc.RemoveParagraph(9).IsOutOfRange());
  EXPECT_TRUE(doc.InsertParagraph(9, "x").IsOutOfRange());
}

TEST(TextDocumentTest, SpanValidityAndExtraction) {
  TextDocument doc;
  doc.AddParagraph("To be or not to be");
  EXPECT_TRUE(doc.IsValidSpan({0, 0, 5}));
  EXPECT_TRUE(doc.IsValidSpan({0, 0, 18}));  // end == size allowed
  EXPECT_FALSE(doc.IsValidSpan({0, 0, 19}));
  EXPECT_FALSE(doc.IsValidSpan({1, 0, 1}));
  EXPECT_FALSE(doc.IsValidSpan({0, 5, 3}));
  EXPECT_EQ(*doc.ExtractSpan({0, 3, 5}), "be");
  EXPECT_EQ(*doc.ExtractSpan({0, 0, 0}), "");
  EXPECT_TRUE(doc.ExtractSpan({0, 0, 99}).status().IsOutOfRange());
  EXPECT_EQ(*doc.SpanContext({0, 3, 5}), "To be or not to be");
}

TEST(TextDocumentTest, FindAllOccurrences) {
  TextDocument doc;
  doc.AddParagraph("the cat and the dog");
  doc.AddParagraph("The end");
  std::vector<TextSpan> hits = doc.FindAll("the");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (TextSpan{0, 0, 3}));
  EXPECT_EQ(hits[1], (TextSpan{0, 12, 15}));
  EXPECT_EQ(doc.FindAll("the", /*case_sensitive=*/false).size(), 3u);
  EXPECT_TRUE(doc.FindAll("").empty());
  EXPECT_TRUE(doc.FindAll("zebra").empty());
  // Every hit extracts back to the term.
  for (const TextSpan& s : hits) EXPECT_EQ(*doc.ExtractSpan(s), "the");
}

TEST(TextDocumentTest, OverlappingMatchesFound) {
  TextDocument doc;
  doc.AddParagraph("aaaa");
  EXPECT_EQ(doc.FindAll("aa").size(), 3u);
}

TEST(TextDocumentTest, Words) {
  TextDocument doc;
  doc.AddParagraph("It's  twelve o'clock, isn't it?");
  std::vector<TextSpan> words = doc.Words(0);
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(*doc.ExtractSpan(words[0]), "It's");
  EXPECT_EQ(*doc.ExtractSpan(words[2]), "o'clock");
  EXPECT_EQ(*doc.ExtractSpan(words[4]), "it");
  EXPECT_TRUE(doc.Words(5).empty());
}

TEST(TextDocumentTest, SerializeDeserializeRoundTrip) {
  TextDocument doc;
  doc.AddParagraph("Act I", 1);
  doc.AddParagraph("Scene 1", 2);
  doc.AddParagraph("Enter HAMLET, reading a book.");
  doc.AddParagraph("Words, words, words.");
  std::string text = doc.Serialize();
  auto back = TextDocument::Deserialize(text);
  ASSERT_EQ(back->paragraph_count(), 4u);
  EXPECT_EQ((*back->GetParagraph(0))->text, "Act I");
  EXPECT_EQ((*back->GetParagraph(0))->heading_level, 1);
  EXPECT_EQ((*back->GetParagraph(1))->heading_level, 2);
  EXPECT_EQ((*back->GetParagraph(3))->text, "Words, words, words.");
  // Stable under a second trip.
  EXPECT_EQ(back->Serialize(), text);
}

TEST(TextDocumentTest, DeserializeJoinsWrappedLines) {
  auto doc = TextDocument::Deserialize("line one\nline two\n\nnext para\n");
  ASSERT_EQ(doc->paragraph_count(), 2u);
  EXPECT_EQ((*doc->GetParagraph(0))->text, "line one line two");
  EXPECT_EQ((*doc->GetParagraph(1))->text, "next para");
}

TEST(TextDocumentTest, TotalChars) {
  TextDocument doc;
  doc.AddParagraph("abc");
  doc.AddParagraph("de");
  EXPECT_EQ(doc.TotalChars(), 5u);
}

TEST(TextDocumentTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/note_roundtrip.txt";
  TextDocument doc;
  doc.AddParagraph("Progress note", 1);
  doc.AddParagraph("Patient stable overnight.");
  ASSERT_TRUE(doc.SaveToFile(path).ok());
  auto back = TextDocument::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->paragraph_count(), 2u);
  EXPECT_EQ((*back)->file_name(), path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slim::doc::text
