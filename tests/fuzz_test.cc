#include <gtest/gtest.h>

#include "doc/html/html.h"
#include "doc/spreadsheet/csv.h"
#include "doc/spreadsheet/workbook.h"
#include "doc/slides/slide_deck.h"
#include "doc/pdf/pdf_document.h"
#include "doc/xml/parser.h"
#include "doc/xml/writer.h"
#include "trim/interned_store.h"
#include "trim/persistence.h"
#include "util/rng.h"

// Randomized round-trip ("fuzz-ish") properties and truncation failure
// injection for every persistence format in the repository. The goal of
// the truncation sweeps is crash-freedom and clean errors: feeding any
// prefix of a valid file to a parser must produce either a Status error or
// a structurally valid (possibly shorter) document — never UB.

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Random generators
// ---------------------------------------------------------------------------

// Random text including XML-hostile characters.
std::string RandomText(Rng* rng, size_t max_len) {
  static const char* kPieces[] = {"a", "b", "<", ">", "&", "\"", "'", " ",
                                  "\n", "\t", "x", "é", "1", ".", "-"};
  std::string out;
  size_t n = rng->Below(max_len + 1);
  for (size_t i = 0; i < n; ++i) {
    out += kPieces[rng->Below(std::size(kPieces))];
  }
  return out;
}

void BuildRandomXmlTree(Rng* rng, doc::xml::Element* parent, int depth) {
  size_t children = rng->Below(4);
  for (size_t i = 0; i < children; ++i) {
    switch (rng->Below(depth > 0 ? 3 : 2)) {
      case 0: {
        std::string text = RandomText(rng, 12);
        // Whitespace-only text is stripped on reparse; skip to keep the
        // comparison exact.
        if (text.find_first_not_of(" \n\t") != std::string::npos) {
          parent->AddText(text);
        }
        break;
      }
      case 1: {
        // CDATA cannot contain "]]>".
        parent->AddCData("raw " + rng->Word(6));
        break;
      }
      default: {
        doc::xml::Element* child = parent->AddElement(rng->Word(5));
        size_t attrs = rng->Below(3);
        for (size_t a = 0; a < attrs; ++a) {
          child->SetAttribute(rng->Word(4), RandomText(rng, 10));
        }
        BuildRandomXmlTree(rng, child, depth - 1);
        break;
      }
    }
  }
}

std::string SubtreeSignature(const doc::xml::Element* e) {
  std::string out = "<" + e->name();
  for (const auto& a : e->attributes()) {
    out += " " + a.name + "='" + a.value + "'";
  }
  out += ">";
  out += e->InnerText();
  for (const auto& c : e->children()) {
    if (c->kind() == doc::xml::NodeKind::kElement) {
      out += SubtreeSignature(static_cast<const doc::xml::Element*>(c.get()));
    }
  }
  out += "</" + e->name() + ">";
  return out;
}

// ---------------------------------------------------------------------------
// XML write∘parse fixpoint on random trees
// ---------------------------------------------------------------------------

class XmlFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzz, WriteParseRoundTripPreservesStructure) {
  Rng rng(GetParam());
  auto doc = doc::xml::Document::Create(rng.Word(6));
  doc->root()->SetAttribute(rng.Word(3), RandomText(&rng, 16));
  BuildRandomXmlTree(&rng, doc->root(), 4);

  // Compact form: pretty-printing interleaves indentation with mixed
  // content, which (correctly) lands in text nodes on reparse; the exact
  // round trip is a property of the compact serialization.
  doc::xml::WriteOptions wopts;
  wopts.pretty = false;
  std::string first = doc::xml::WriteXml(*doc, wopts);
  doc::xml::ParseOptions opts;
  opts.strip_whitespace_text = false;
  auto back = doc::xml::ParseXml(first, opts);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << first;
  // Element structure, attributes, and text content all survive.
  EXPECT_EQ(SubtreeSignature((*back)->root()),
            SubtreeSignature(doc->root()));
  // And the serialization is a fixpoint.
  EXPECT_EQ(doc::xml::WriteXml(**back, wopts), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Range<uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// HTML parser never crashes on random byte soup
// ---------------------------------------------------------------------------

class HtmlSoupFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HtmlSoupFuzz, AnyInputYieldsADocument) {
  Rng rng(GetParam());
  static const char* kSoup[] = {"<", ">", "</", "<div", "<p>", "&", "&amp",
                                "=", "\"", "'", "a", " ", "<!--", "-->",
                                "<script>", "</script>", "<![CDATA[", "/>",
                                "<!DOCTYPE", "\n"};
  std::string input;
  size_t n = 5 + rng.Below(120);
  for (size_t i = 0; i < n; ++i) {
    input += kSoup[rng.Below(std::size(kSoup))];
  }
  auto doc = doc::html::ParseHtml(input);
  ASSERT_NE(doc, nullptr);
  ASSERT_NE(doc->root(), nullptr);
  // The result is a well-formed tree: serializing it must not crash and
  // visiting it terminates.
  size_t count = 0;
  doc->root()->Visit([&](doc::xml::Element*) { ++count; });
  EXPECT_GE(count, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmlSoupFuzz,
                         ::testing::Range<uint64_t>(100, 140));

// ---------------------------------------------------------------------------
// CSV random round trip
// ---------------------------------------------------------------------------

class CsvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzz, WriteParseRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::vector<std::string>> rows;
  size_t nrows = 1 + rng.Below(8);
  size_t ncols = 1 + rng.Below(6);
  for (size_t r = 0; r < nrows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < ncols; ++c) {
      static const char* kPieces[] = {"a", ",", "\"", "\n", " ", "x", "1"};
      std::string field;
      size_t len = rng.Below(8);
      for (size_t i = 0; i < len; ++i) {
        field += kPieces[rng.Below(std::size(kPieces))];
      }
      row.push_back(std::move(field));
    }
    rows.push_back(std::move(row));
  }
  auto back = doc::ParseCsv(doc::WriteCsv(rows));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range<uint64_t>(1, 30));

// ---------------------------------------------------------------------------
// Random formula: format∘parse fixpoint and evaluation agreement
// ---------------------------------------------------------------------------

std::unique_ptr<doc::Expr> RandomExpr(Rng* rng, int depth);

std::unique_ptr<doc::Expr> RandomLeaf(Rng* rng) {
  auto e = std::make_unique<doc::Expr>();
  switch (rng->Below(3)) {
    case 0:
      e->kind = doc::ExprKind::kNumber;
      e->number = static_cast<double>(rng->Range(-50, 50)) / 2.0;
      break;
    case 1:
      e->kind = doc::ExprKind::kString;
      e->text = rng->Word(4);
      break;
    default:
      e->kind = doc::ExprKind::kBool;
      e->boolean = rng->Chance(0.5);
      break;
  }
  return e;
}

std::unique_ptr<doc::Expr> RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Chance(0.3)) return RandomLeaf(rng);
  auto e = std::make_unique<doc::Expr>();
  if (rng->Chance(0.25)) {
    e->kind = doc::ExprKind::kCall;
    static const char* kFns[] = {"SUM", "CONCAT", "IF", "ABS", "LEN"};
    e->callee = kFns[rng->Below(std::size(kFns))];
    size_t args = e->callee == "IF" ? 3 : 1 + rng->Below(3);
    for (size_t i = 0; i < args; ++i) {
      e->args.push_back(RandomExpr(rng, depth - 1));
    }
    return e;
  }
  if (rng->Chance(0.2)) {
    e->kind = doc::ExprKind::kUnaryMinus;
    e->lhs = RandomExpr(rng, depth - 1);
    return e;
  }
  e->kind = doc::ExprKind::kBinary;
  static const doc::BinaryOp kOps[] = {
      doc::BinaryOp::kAdd, doc::BinaryOp::kSub, doc::BinaryOp::kMul,
      doc::BinaryOp::kDiv, doc::BinaryOp::kConcat, doc::BinaryOp::kEq,
      doc::BinaryOp::kLt};
  e->op = kOps[rng->Below(std::size(kOps))];
  e->lhs = RandomExpr(rng, depth - 1);
  e->rhs = RandomExpr(rng, depth - 1);
  return e;
}

class NullResolver : public doc::CellResolver {
 public:
  doc::CellValue ResolveCell(const std::string&, const doc::CellRef&) override {
    return std::monostate{};
  }
  std::vector<doc::CellValue> ResolveRange(const std::string&,
                                           const doc::RangeRef&) override {
    return {};
  }
};

class FormulaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FormulaFuzz, FormatParseEvaluateAgree) {
  Rng rng(GetParam());
  NullResolver resolver;
  for (int i = 0; i < 20; ++i) {
    auto original = RandomExpr(&rng, 4);
    std::string printed = doc::FormatFormula(*original);
    auto reparsed = doc::ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    // Printing is canonical.
    EXPECT_EQ(doc::FormatFormula(**reparsed), printed);
    // Both trees evaluate identically (including error values).
    doc::CellValue a = doc::EvaluateFormula(*original, &resolver);
    doc::CellValue b = doc::EvaluateFormula(**reparsed, &resolver);
    EXPECT_EQ(doc::CellValueText(a), doc::CellValueText(b)) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaFuzz,
                         ::testing::Range<uint64_t>(1, 15));

// ---------------------------------------------------------------------------
// Truncation failure injection: every persistence format
// ---------------------------------------------------------------------------

// Cuts `data` at several points and feeds each prefix to `parse`, which
// must never crash. `parse` returns true if the prefix parsed OK.
template <typename ParseFn>
void TruncationSweep(const std::string& data, ParseFn parse) {
  for (size_t cut : {data.size() / 7, data.size() / 3, data.size() / 2,
                     data.size() * 3 / 4, data.size() - 1}) {
    if (cut >= data.size()) continue;
    (void)parse(data.substr(0, cut));  // must not crash; result irrelevant
  }
  // The full data must parse.
  EXPECT_TRUE(parse(data));
}

TEST(TruncationTest, Workbook) {
  doc::Workbook wb("t.book");
  doc::Worksheet* ws = *wb.AddSheet("S");
  for (int i = 0; i < 20; ++i) {
    ws->SetValue({i, 0}, std::string("value ") + std::to_string(i));
    ws->SetValue({i, 1}, double(i));
  }
  (void)ws->SetFormula({20, 0}, "=SUM(B1:B20)");
  TruncationSweep(wb.Serialize(), [](const std::string& text) {
    return doc::Workbook::Deserialize(text).ok();
  });
}

TEST(TruncationTest, SlideDeck) {
  doc::slides::SlideDeck deck("t.deck");
  for (int s = 0; s < 5; ++s) {
    auto* slide = *deck.GetSlide(deck.AddSlide("slide " + std::to_string(s)));
    (void)slide->AddShape({"sh", doc::slides::ShapeKind::kBulletList, 1, 2, 3,
                           4, "text", {"b1", "b2"}});
  }
  TruncationSweep(deck.Serialize(), [](const std::string& text) {
    return doc::slides::SlideDeck::Deserialize(text).ok();
  });
}

TEST(TruncationTest, Pdf) {
  auto doc = doc::pdf::PdfDocument::BuildFromParagraphs(
      {"one paragraph of text", "another paragraph with more words in it"});
  TruncationSweep(doc->Serialize(), [](const std::string& text) {
    return doc::pdf::PdfDocument::Deserialize(text).ok();
  });
}

TEST(TruncationTest, TrimXml) {
  trim::TripleStore store;
  for (int i = 0; i < 25; ++i) {
    (void)store.AddLiteral("s" + std::to_string(i), "p", "v<&>" +
                                                             std::to_string(i));
  }
  TruncationSweep(trim::StoreToXml(store), [](const std::string& text) {
    trim::TripleStore loaded;
    return trim::StoreFromXml(text, &loaded).ok();
  });
}

TEST(TruncationTest, InternedBinary) {
  trim::InternedTripleStore store;
  for (int i = 0; i < 25; ++i) {
    (void)store.AddLiteral("s" + std::to_string(i), "p",
                           "value" + std::to_string(i));
  }
  TruncationSweep(store.SerializeBinary(), [](const std::string& data) {
    return trim::InternedTripleStore::DeserializeBinary(data).ok();
  });
}

TEST(TruncationTest, XmlDocument) {
  auto doc = doc::xml::Document::Create("root");
  for (int i = 0; i < 10; ++i) {
    doc::xml::Element* e = doc->root()->AddElement("child");
    e->SetAttribute("n", std::to_string(i));
    e->AddText("text & more");
  }
  TruncationSweep(doc::xml::WriteXml(*doc), [](const std::string& text) {
    return doc::xml::ParseXml(text).ok();
  });
}

// Bit-flip corruption on the binary store: must error or load, not crash.
class BinaryCorruptionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryCorruptionFuzz, FlippedBytesFailCleanly) {
  trim::InternedTripleStore store;
  for (int i = 0; i < 10; ++i) {
    (void)store.AddLiteral("s" + std::to_string(i), "prop",
                           "v" + std::to_string(i));
  }
  std::string data = store.SerializeBinary();
  Rng rng(GetParam());
  for (int flips = 0; flips < 20; ++flips) {
    std::string corrupted = data;
    size_t pos = rng.Below(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1 << rng.Below(8)));
    auto result = trim::InternedTripleStore::DeserializeBinary(corrupted);
    if (result.ok()) {
      // A tolerated flip (e.g. inside a string payload) must still yield a
      // consistent store.
      result->ForEach([](const trim::Triple& t) {
        EXPECT_FALSE(t.subject.empty());
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCorruptionFuzz,
                         ::testing::Values(3, 9, 27));

}  // namespace
}  // namespace slim
