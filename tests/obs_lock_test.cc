// util::InstrumentedMutex event mechanics (hook wiring, contended vs.
// uncontended timing, RAII shims) and the obs::LockProfiler built on top:
// per-site aggregation, obs.lock.* metric emission, the hot-lock table,
// and install/uninstall exclusivity.
//
// Library-level; must pass under both SLIM_ENABLE_OBS settings.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/lock_profiler.h"
#include "obs/metrics.h"
#include "util/instrumented_mutex.h"

namespace slim {
namespace {

// Capture buffer for the raw-hook tests. The hook is a plain function
// pointer, so the buffer is process-global; each test clears it first and
// filters by its own site name to ignore unrelated mutex traffic.
std::mutex g_events_mu;
std::vector<util::MutexEvent> g_events;

void RecordEvent(const util::MutexEvent& event) {
  std::lock_guard<std::mutex> lock(g_events_mu);
  g_events.push_back(event);
}

std::vector<util::MutexEvent> EventsForSite(const char* site) {
  std::lock_guard<std::mutex> lock(g_events_mu);
  std::vector<util::MutexEvent> out;
  for (const util::MutexEvent& event : g_events) {
    if (std::strcmp(event.site, site) == 0) out.push_back(event);
  }
  return out;
}

void ClearEvents() {
  std::lock_guard<std::mutex> lock(g_events_mu);
  g_events.clear();
}

class HookGuard {
 public:
  explicit HookGuard(util::MutexEventHook hook) {
    ClearEvents();
    util::SetMutexEventHook(hook);
  }
  ~HookGuard() { util::SetMutexEventHook(nullptr); }
};

TEST(InstrumentedMutex, NoHookMeansNoEvents) {
  ClearEvents();
  util::InstrumentedMutex mu("lock.test.silent");
  {
    util::MutexLock lock(&mu);
  }
  EXPECT_TRUE(EventsForSite("lock.test.silent").empty());
}

TEST(InstrumentedMutex, UncontendedAcquireFiresEvent) {
  HookGuard hook(&RecordEvent);
  util::InstrumentedMutex mu("lock.test.fast");
  {
    util::MutexLock lock(&mu);
  }
  {
    util::MutexLock lock(&mu);
  }
  std::vector<util::MutexEvent> events = EventsForSite("lock.test.fast");
  ASSERT_EQ(events.size(), 2u);
  for (const util::MutexEvent& event : events) {
    EXPECT_FALSE(event.contended);
    EXPECT_EQ(event.wait_ns, 0u);
  }
}

TEST(InstrumentedMutex, ContendedAcquireMeasuresWait) {
  HookGuard hook(&RecordEvent);
  util::InstrumentedMutex mu("lock.test.slow");
  std::atomic<bool> held{false};
  std::thread holder([&] {
    util::MutexLock lock(&mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    util::MutexLock lock(&mu);  // must block until the holder releases
  }
  holder.join();

  std::vector<util::MutexEvent> events = EventsForSite("lock.test.slow");
  ASSERT_EQ(events.size(), 2u);
  // Events fire after the unlock, so delivery order between the two
  // threads is not deterministic — identify each by its contended flag.
  const util::MutexEvent& holder_ev =
      events[0].contended ? events[1] : events[0];
  const util::MutexEvent& waiter_ev =
      events[0].contended ? events[0] : events[1];
  // Holder's acquisition was uncontended but held across the sleep.
  EXPECT_FALSE(holder_ev.contended);
  EXPECT_GE(holder_ev.hold_ns, 10u * 1000 * 1000);
  // Ours blocked behind the sleep.
  EXPECT_TRUE(waiter_ev.contended);
  EXPECT_GT(waiter_ev.wait_ns, 0u);
}

TEST(InstrumentedMutex, UniqueLockReacquires) {
  HookGuard hook(&RecordEvent);
  util::InstrumentedMutex mu("lock.test.unique");
  {
    util::UniqueLock lock(&mu);
    EXPECT_TRUE(lock.owns_lock());
    lock.unlock();
    EXPECT_FALSE(lock.owns_lock());
    lock.lock();
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_EQ(EventsForSite("lock.test.unique").size(), 2u);
}

TEST(LockProfiler, InstallIsExclusive) {
  obs::LockProfiler first;
  obs::LockProfiler second;
  ASSERT_TRUE(first.Install(nullptr));
  EXPECT_TRUE(first.installed());
  EXPECT_FALSE(second.Install(nullptr));  // one hook at a time
  EXPECT_FALSE(second.installed());
  first.Uninstall();
  EXPECT_FALSE(first.installed());
  EXPECT_TRUE(second.Install(nullptr));
  second.Uninstall();
}

TEST(LockProfiler, AggregatesSitesAndEmitsMetrics) {
  obs::MetricsRegistry registry;
  obs::LockProfiler profiler;
  ASSERT_TRUE(profiler.Install(&registry));

  util::InstrumentedMutex mu("lock.test.site");
  for (int i = 0; i < 5; ++i) {
    util::MutexLock lock(&mu);
  }
  // One genuinely contended acquisition. Contention is detected as a
  // failed try_lock fast path, and on a loaded single-core host this
  // thread can be descheduled past the holder's entire hold window — so
  // retry the handshake until the profiler has actually seen contention,
  // and fold the extra acquisitions into the exact-count assertions.
  uint64_t handshake_acquisitions = 0;
  while (registry.CounterValue("obs.lock.lock.test.site.contended") == 0) {
    std::atomic<bool> held{false};
    std::thread holder([&] {
      util::MutexLock lock(&mu);
      held.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
    {
      util::MutexLock lock(&mu);
    }
    holder.join();
    handshake_acquisitions += 2;
  }
  const uint64_t expected_acquisitions = 5 + handshake_acquisitions;
  profiler.Uninstall();

  const obs::LockProfiler::SiteStats* site = nullptr;
  std::vector<obs::LockProfiler::SiteStats> sites = profiler.Sites();
  for (const auto& s : sites) {
    if (std::strcmp(s.site, "lock.test.site") == 0) site = &s;
  }
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->acquisitions, expected_acquisitions);
  EXPECT_GE(site->contended, 1u);
  EXPECT_GT(site->wait_ns_total, 0u);
  EXPECT_GT(site->hold_ns_total, 0u);
  EXPECT_GE(site->hold_ns_max, site->hold_ns_total / site->acquisitions);

  // Metric emission: the obs.lock.* family for this site.
  EXPECT_EQ(registry.CounterValue("obs.lock.lock.test.site.acquisitions"),
            expected_acquisitions);
  EXPECT_GE(registry.CounterValue("obs.lock.lock.test.site.contended"), 1u);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_wait = false, saw_hold = false;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name == "obs.lock.lock.test.site.wait_us") {
      saw_wait = true;
      EXPECT_EQ(hist.count, expected_acquisitions);
    }
    if (name == "obs.lock.lock.test.site.hold_us") {
      saw_hold = true;
      EXPECT_EQ(hist.count, expected_acquisitions);
    }
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_hold);

  // Reporting surfaces.
  EXPECT_NE(profiler.HotLockTable().find("lock.test.site"),
            std::string::npos);
  EXPECT_NE(profiler.ToJson().find("\"site\":\"lock.test.site\""),
            std::string::npos);

  profiler.Clear();
  EXPECT_TRUE(profiler.Sites().empty());
}

TEST(LockProfiler, InvalidSiteNamesSkipMetricsButAggregate) {
  obs::MetricsRegistry registry;
  obs::LockProfiler profiler;
  ASSERT_TRUE(profiler.Install(&registry));
  util::InstrumentedMutex mu("Not A Metric Name");
  {
    util::MutexLock lock(&mu);
  }
  profiler.Uninstall();

  bool found = false;
  for (const auto& s : profiler.Sites()) {
    if (std::strcmp(s.site, "Not A Metric Name") == 0) {
      found = true;
      EXPECT_EQ(s.acquisitions, 1u);
    }
  }
  EXPECT_TRUE(found);
  // No obs.lock.* metric materialized for the unspellable site.
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_EQ(name.find("Not A Metric"), std::string::npos) << name;
    (void)value;
  }
}

// The registry's own mutex is instrumented; recording a metric inside the
// hook therefore re-enters lock()/unlock(). The profiler's per-thread
// guard must drop those nested events instead of recursing or deadlocking.
TEST(LockProfiler, RegistryReentrancyIsSafe) {
  obs::MetricsRegistry registry;
  obs::LockProfiler profiler;
  ASSERT_TRUE(profiler.Install(&registry));
  util::InstrumentedMutex mu("lock.test.reentry");
  for (int i = 0; i < 100; ++i) {
    util::MutexLock lock(&mu);
  }
  // Force fresh registry lookups inside the hook path too.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("lock.test.reentry.extra")->Increment();
  }
  profiler.Uninstall();
  EXPECT_EQ(registry.CounterValue("obs.lock.lock.test.reentry.acquisitions"),
            100u);
}

}  // namespace
}  // namespace slim
