// Concordance: the paper's opening example (§1).
//
// "Consider a concordance for the works of Shakespeare. For a given term,
// we can find out every line (in a play) where the term is used."
//
// We generate a corpus of synthetic "plays" (text documents), then build a
// concordance *as superimposed information*: one bundle per term, one scrap
// per occurrence, each scrap carrying a text-span mark back into the play.
// The base documents are never modified — the concordance is a pure
// superimposed layer, and resolving any scrap drives the word processor to
// the exact span.

#include <iomanip>
#include <iostream>
#include <map>

#include "baseapp/text_app.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "slimpad/slimpad_app.h"
#include "workload/corpus.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

int main() {
  // --- Generate and register the corpus ---------------------------------
  workload::CorpusOptions options;
  options.documents = 4;
  options.paragraphs_per_doc = 60;
  options.seed = 1601;  // Hamlet's year
  workload::Corpus corpus = workload::GenerateCorpus(options);

  baseapp::TextApp word;
  std::vector<std::string> files;
  for (size_t i = 0; i < corpus.documents.size(); ++i) {
    files.push_back(corpus.file_name(i));
    CHECK_OK(word.RegisterDocument(files[i], std::move(corpus.documents[i])));
  }

  mark::MarkManager marks;
  mark::TextMarkModule text_module(&word);
  CHECK_OK(marks.RegisterModule(&text_module));
  pad::SlimPadApp app(&marks);
  CHECK_OK(app.NewPad("Concordance"));
  std::string root = app.RootBundle().ValueOrDie();

  // --- Pick the ten most frequent terms ----------------------------------
  std::map<std::string, size_t> frequency;
  for (const std::string& file : files) {
    doc::text::TextDocument* play = word.GetDocument(file).ValueOrDie();
    for (size_t t = 0; t < 24 && t < corpus.vocabulary.size(); ++t) {
      frequency[corpus.vocabulary[t]] += play->FindAll(corpus.vocabulary[t])
                                             .size();
    }
  }
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const auto& [term, n] : frequency) ranked.push_back({n, term});
  std::sort(ranked.rbegin(), ranked.rend());
  ranked.resize(std::min<size_t>(ranked.size(), 10));

  // --- Build the concordance as superimposed bundles ---------------------
  size_t total_scraps = 0;
  double y = 10;
  for (const auto& [count, term] : ranked) {
    std::string term_bundle = app.CreateBundle(root, term, {10, y}, 600, 80)
                                  .ValueOrDie();
    y += 90;
    for (const std::string& file : files) {
      doc::text::TextDocument* play = word.GetDocument(file).ValueOrDie();
      double x = 10;
      for (const doc::text::TextSpan& span : play->FindAll(term)) {
        CHECK_OK(word.Select(file, span));
        // Label like a classic concordance entry: play + "line" (we use
        // the paragraph number as the line).
        std::string label =
            file.substr(file.find_last_of('/') + 1) + ":" +
            std::to_string(span.paragraph);
        CHECK_OK(app.AddScrapFromSelection(term_bundle, "text", label,
                                           {x, 20})
                     .status());
        x += 80;
        ++total_scraps;
      }
    }
  }

  std::cout << "Concordance over " << files.size() << " plays, "
            << ranked.size() << " terms, " << total_scraps
            << " occurrences (scraps)." << std::endl;
  std::cout << std::left << std::setw(14) << "term" << "occurrences"
            << std::endl;
  for (const auto& [count, term] : ranked) {
    std::cout << std::left << std::setw(14) << term << count << std::endl;
  }

  // --- Use it: resolve the first occurrence of the top term --------------
  const pad::Bundle* root_bundle = app.dmi().GetBundle(root).ValueOrDie();
  const pad::Bundle* top_bundle =
      app.dmi().GetBundle(root_bundle->nested_bundles()[0]).ValueOrDie();
  const pad::Scrap* first =
      app.dmi().GetScrap(top_bundle->scraps()[0]).ValueOrDie();
  CHECK_OK(app.OpenScrap(first->id()).status());
  const auto& nav = *word.last_navigation();
  std::cout << "\nResolving '" << top_bundle->name() << "' at " << first->name()
            << " -> " << nav.file_name << " [" << nav.address
            << "], highlighted \"" << nav.highlighted_content << "\""
            << std::endl;

  // Show the line in context, the way a reader would use a concordance.
  doc::text::TextDocument* play =
      word.GetDocument(nav.file_name).ValueOrDie();
  auto span = doc::text::TextSpan::Parse(nav.address).ValueOrDie();
  std::string context = play->SpanContext(span).ValueOrDie();
  if (context.size() > 70) context = context.substr(0, 70) + "...";
  std::cout << "Context: \"" << context << "\"" << std::endl;
  std::cout << "\nconcordance complete." << std::endl;
  return 0;
}
