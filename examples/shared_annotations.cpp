// Shared annotations: the enhanced-base-layer viewing style (paper §4.1
// and the Third Voice / ComMentor related work of §5).
//
// Several clinicians annotate the same hospital protocol web pages. Each
// annotation is a scrap whose mark addresses the HTML element it comments
// on. Because marks live in the superimposed layer, the pages themselves
// are untouched; anyone loading the shared pad sees everyone's annotations
// and can ask, ComMentor-style, for "all annotations on this page" by
// walking the superimposed layer.

#include <cstdio>
#include <iostream>

#include "baseapp/html_app.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "slimpad/slimpad_app.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

namespace {

const char* kSepsisPage = R"(
<html><body>
<h1 id="title">Sepsis bundle</h1>
<p id="abx">Administer broad-spectrum antibiotics within one hour.</p>
<p id="fluids">Give 30 mL/kg crystalloid for hypotension.</p>
<p id="pressors">Apply vasopressors if MAP &lt; 65 after fluids.</p>
</body></html>)";

const char* kLinePage = R"(
<html><body>
<h1 id="title">Central line checklist</h1>
<ul>
<li id="hands">Hand hygiene</li>
<li id="barrier">Full barrier precautions</li>
<li id="chg">Chlorhexidine skin prep</li>
</ul>
</body></html>)";

struct Annotation {
  const char* author;
  const char* url;
  const char* element_id;
  const char* note;
};

const Annotation kAnnotations[] = {
    {"dr.gorman", "http://hospital/sepsis", "abx",
     "our pharmacy turnaround is 40 min - order early"},
    {"dr.ash", "http://hospital/sepsis", "fluids",
     "careful in CHF patients"},
    {"rn.lavelle", "http://hospital/sepsis", "pressors",
     "norepi is first line on our unit"},
    {"dr.gorman", "http://hospital/lines", "chg",
     "kits restocked on Tuesdays"},
    {"rn.lavelle", "http://hospital/lines", "barrier",
     "gowns in cart drawer 2"},
};

}  // namespace

int main() {
  baseapp::HtmlApp browser;
  CHECK_OK(browser.RegisterPage("http://hospital/sepsis", kSepsisPage));
  CHECK_OK(browser.RegisterPage("http://hospital/lines", kLinePage));

  mark::MarkManager marks;
  mark::HtmlMarkModule html_module(&browser);
  CHECK_OK(marks.RegisterModule(&html_module));

  pad::SlimPadApp app(&marks);
  app.set_viewing_style(pad::ViewingStyle::kEnhanced);
  CHECK_OK(app.NewPad("Shared annotations"));
  std::string root = app.RootBundle().ValueOrDie();

  // One bundle per author (the shared pad groups by who said it).
  std::map<std::string, std::string> author_bundles;
  double y = 10;
  double x = 10;
  for (const Annotation& a : kAnnotations) {
    if (!author_bundles.count(a.author)) {
      author_bundles[a.author] =
          app.CreateBundle(root, a.author, {10, y}, 700, 60).ValueOrDie();
      y += 70;
    }
    // The author selects the paragraph in the (enhanced) browser...
    doc::xml::Element* elem =
        doc::html::FindById(browser.GetPage(a.url).ValueOrDie(),
                            a.element_id);
    CHECK_OK(browser.SelectElement(a.url, elem));
    // ...and attaches a note: a scrap marked to the element, with the note
    // text as a §6 scrap annotation.
    std::string scrap = app.AddScrapFromSelection(author_bundles[a.author],
                                                  "html", a.element_id,
                                                  {x, 20})
                            .ValueOrDie();
    CHECK_OK(app.dmi().AddScrapAnnotation(scrap, a.note));
    x += 20;
  }

  std::cout << "Shared pad holds " << app.dmi().Scraps().size()
            << " annotations from " << author_bundles.size() << " authors."
            << std::endl;

  // ComMentor-style query: all annotations on the sepsis page, regardless
  // of author — walk the superimposed layer and filter by the mark's URL.
  std::cout << "\nAnnotations on http://hospital/sepsis:" << std::endl;
  for (const pad::Scrap* scrap : app.dmi().Scraps()) {
    if (scrap->mark_handles().empty()) continue;
    const pad::MarkHandle* handle =
        app.dmi().GetMarkHandle(scrap->mark_handles()[0]).ValueOrDie();
    const mark::Mark* m = marks.GetMark(handle->mark_id()).ValueOrDie();
    if (m->file_name() != "http://hospital/sepsis") continue;
    std::cout << "  [" << m->address() << "] \"" << scrap->annotations()[0]
              << "\" (on: \"" << m->excerpt().substr(0, 40) << "...\")"
              << std::endl;
  }

  // Enhanced viewing: opening an annotation navigates the browser AND
  // surfaces the element content beside the note.
  const pad::Scrap* first = app.dmi().Scraps().front();
  auto open = app.OpenScrap(first->id());
  CHECK_OK(open.status());
  std::cout << "\nOpened annotation on '" << first->name() << "': browser at ["
            << browser.last_navigation()->address << "], in-pane content \""
            << open->in_place_content << "\"" << std::endl;

  // Share it: save, then a colleague loads the same pad.
  const std::string path = "/tmp/shared_annotations_pad.xml";
  CHECK_OK(app.SavePad(path));
  mark::MarkManager marks2;
  CHECK_OK(marks2.RegisterModule(&html_module));
  pad::SlimPadApp colleague(&marks2);
  CHECK_OK(colleague.LoadPad(path));
  size_t reopened = 0;
  for (const pad::Scrap* scrap : colleague.dmi().Scraps()) {
    if (scrap->mark_handles().empty()) continue;
    CHECK_OK(colleague.OpenScrap(scrap->id()).status());
    ++reopened;
  }
  std::cout << "\nColleague reloaded the shared pad and resolved " << reopened
            << " annotations." << std::endl;
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
  std::cout << "shared_annotations complete." << std::endl;
  return 0;
}
