// Quickstart: the smallest complete superimposed application.
//
// 1. Stand up two base applications (a spreadsheet and an XML viewer) and
//    hand them documents.
// 2. Wire mark modules into a MarkManager.
// 3. Build a SLIMPad, select information in the base apps, and drop scraps
//    onto the pad (each scrap gets a mark — the "digital sticky-note with a
//    digital wire" of the paper).
// 4. Double-click a scrap: the mark resolves and the base application
//    navigates to the original element, highlighted.
// 5. Save the pad and reload it into a fresh session.

#include <cstdio>
#include <iostream>

#include "baseapp/spreadsheet_app.h"
#include "baseapp/xml_app.h"
#include "doc/xml/parser.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "slimpad/slimpad_app.h"

using namespace slim;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::slim::Status _st = (expr);                              \
    if (!_st.ok()) {                                          \
      std::cerr << "FATAL: " << _st << std::endl;             \
      return 1;                                               \
    }                                                         \
  } while (false)

int main() {
  // --- Base layer ------------------------------------------------------
  baseapp::SpreadsheetApp excel;
  auto workbook = std::make_unique<doc::Workbook>("meds.book");
  doc::Worksheet* sheet = workbook->AddSheet("Meds").ValueOrDie();
  sheet->SetValue({0, 0}, std::string("Drug"));
  sheet->SetValue({0, 1}, std::string("Dose"));
  sheet->SetValue({1, 0}, std::string("dopamine"));
  sheet->SetValue({1, 1}, std::string("5 mcg/kg/min"));
  sheet->SetValue({2, 0}, std::string("heparin"));
  sheet->SetValue({2, 1}, std::string("1200 u/hr"));
  CHECK_OK(excel.RegisterWorkbook(std::move(workbook)));

  baseapp::XmlApp xml;
  auto lab = doc::xml::ParseXml(
                 "<labReport patient=\"John Smith\">"
                 "<panel name=\"electrolytes\">"
                 "<result name=\"Na\" value=\"141\">Na 141</result>"
                 "<result name=\"K\" value=\"4.2\">K 4.2</result>"
                 "</panel></labReport>")
                 .ValueOrDie();
  CHECK_OK(xml.RegisterDocument("lab.xml", std::move(lab)));

  // --- Mark management --------------------------------------------------
  mark::MarkManager marks;
  mark::ExcelMarkModule excel_module(&excel);
  mark::XmlMarkModule xml_module(&xml);
  CHECK_OK(marks.RegisterModule(&excel_module));
  CHECK_OK(marks.RegisterModule(&xml_module));

  // --- The superimposed application -------------------------------------
  pad::SlimPadApp app(&marks);
  CHECK_OK(app.NewPad("Quickstart"));
  std::string root = app.RootBundle().ValueOrDie();

  // Select the dopamine row in the spreadsheet and drop it onto the pad.
  CHECK_OK(excel.Select("meds.book", "Meds", doc::RangeRef{{1, 0}, {1, 1}}));
  std::string med_scrap =
      app.AddScrapFromSelection(root, "excel", "dopamine", {10, 10})
          .ValueOrDie();

  // Select the sodium result in the lab report and drop it too.
  CHECK_OK(xml.SelectPath("lab.xml", "/labReport/panel/result[1]"));
  std::string lab_scrap =
      app.AddScrapFromSelection(root, "xml", "Na 141", {10, 40}).ValueOrDie();

  std::cout << "Pad '" << app.pad()->pad_name() << "' holds "
            << app.dmi().Scraps().size() << " scraps and "
            << marks.size() << " marks." << std::endl;

  // --- Resolve: double-click the med scrap ------------------------------
  auto open = app.OpenScrap(med_scrap);
  CHECK_OK(open.status());
  const auto& nav = *excel.last_navigation();
  std::cout << "Resolved med scrap -> " << nav.file_name << " [" << nav.address
            << "] highlighting \"" << nav.highlighted_content << "\""
            << std::endl;

  // Independent viewing: content comes to the pad instead.
  app.set_viewing_style(pad::ViewingStyle::kIndependent);
  auto in_place = app.OpenScrap(lab_scrap);
  CHECK_OK(in_place.status());
  std::cout << "In-place view of lab scrap: \"" << in_place->in_place_content
            << "\"" << std::endl;

  // --- Persistence -------------------------------------------------------
  const std::string path = "/tmp/quickstart_pad.xml";
  CHECK_OK(app.SavePad(path));

  mark::MarkManager marks2;
  CHECK_OK(marks2.RegisterModule(&excel_module));
  CHECK_OK(marks2.RegisterModule(&xml_module));
  pad::SlimPadApp app2(&marks2);
  CHECK_OK(app2.LoadPad(path));
  std::cout << "Reloaded pad '" << app2.pad()->pad_name() << "' with "
            << app2.dmi().Scraps().size() << " scraps; re-resolving..."
            << std::endl;
  for (const pad::Scrap* scrap : app2.dmi().Scraps()) {
    auto result = app2.OpenScrap(scrap->id());
    CHECK_OK(result.status());
    std::cout << "  scrap '" << scrap->name() << "' -> mark "
              << result->mark_id << " OK" << std::endl;
  }
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
  std::cout << "Quickstart complete." << std::endl;
  return 0;
}
