// Query EXPLAIN / EXPLAIN ANALYZE over a realistic pad.
//
// Builds the ICU 'Rounds' workload (Figures 2 and 4), then shows what the
// SLIM query engine plans — the greedy join order, the TRIM index path each
// pattern probes, and estimated cardinalities — and, in ANALYZE mode, what
// actually happened: probes, rows examined/matched/emitted and per-pattern
// wall time.
//
// Modes:
//   query_explain ["query"]            EXPLAIN (plan only, nothing executed)
//   query_explain --analyze ["query"]  EXPLAIN ANALYZE (plan + actuals)
//   query_explain --json ["query"]     ANALYZE, machine-readable JSON plan
//   query_explain --slow <us> ["query"]
//       arm the slow-query sampler at <us> microseconds, run the query
//       through store::Execute, then print whatever the sampler recorded
//       (at 0 every query is "slow" — handy for demos)
//   query_explain --slow <us> --dump <path> ["query"]
//       additionally point the flight recorder at <path>; a sampled query
//       leaves a diagnostics bundle holding its analyzed plan

#include <cstring>
#include <iostream>
#include <string>

#include "obs/obs.h"
#include "slim/query.h"
#include "slim/slow_query.h"
#include "workload/session.h"

using namespace slim;

namespace {

constexpr const char* kDefaultQuery =
    "?b bundleContent ?s . ?s scrapName ?n";

int Fail(const Status& status) {
  std::cerr << "FATAL: " << status << std::endl;
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kExplain, kAnalyze, kJson, kSlow } mode = Mode::kExplain;
  int64_t slow_us = 0;
  std::string dump_path;
  std::string query_text = kDefaultQuery;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--analyze") == 0) {
      mode = Mode::kAnalyze;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      mode = Mode::kJson;
    } else if (std::strcmp(argv[i], "--slow") == 0 && i + 1 < argc) {
      mode = Mode::kSlow;
      slow_us = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (argv[i][0] != '-') {
      query_text = argv[i];
    } else {
      std::cerr << "usage: query_explain [--analyze | --json | "
                   "--slow <us> [--dump <path>]] [\"query\"]" << std::endl;
      return 2;
    }
  }

  workload::IcuOptions options;
  options.patients = 3;
  workload::Session session(nullptr);
  if (Status st = session.LoadIcuWorkload(workload::GenerateIcuWorkload(options));
      !st.ok()) {
    return Fail(st);
  }
  if (Status st = session.BuildFullRoundsPad(); !st.ok()) return Fail(st);
  const trim::TripleStore& store = session.app().store();

  Result<store::Query> query = store::Query::Parse(query_text);
  if (!query.ok()) return Fail(query.status());

  switch (mode) {
    case Mode::kExplain: {
      Result<store::QueryPlan> plan = store::Explain(store, *query);
      if (!plan.ok()) return Fail(plan.status());
      std::cout << plan->ToText();
      break;
    }
    case Mode::kAnalyze:
    case Mode::kJson: {
      Result<store::AnalyzedQuery> analyzed =
          store::ExplainAnalyze(store, *query);
      if (!analyzed.ok()) return Fail(analyzed.status());
      if (mode == Mode::kJson) {
        std::cout << analyzed->plan.ToJson() << std::endl;
      } else {
        std::cout << analyzed->plan.ToText();
      }
      break;
    }
    case Mode::kSlow: {
#if SLIM_OBS_ENABLED
      if (!dump_path.empty()) {
        obs::DefaultFlightRecorder().set_dump_path(dump_path);
        obs::DefaultFlightRecorder().Install();
      }
#endif
      store::DefaultSlowQueryLog().set_threshold_us(slow_us);
      Result<std::vector<store::Binding>> solutions =
          store::Execute(store, *query);
      if (!solutions.ok()) return Fail(solutions.status());
      std::cout << solutions->size() << " solutions." << std::endl;
      std::vector<store::QueryPlan> sampled =
          store::DefaultSlowQueryLog().Recent();
      if (sampled.empty()) {
        std::cout << "query finished under " << slow_us
                  << " us; nothing sampled." << std::endl;
      } else {
        std::cout << "slow-query sampler recorded "
                  << store::DefaultSlowQueryLog().recorded()
                  << " plan(s); most recent:" << std::endl;
        std::cout << sampled.back().ToText();
      }
#if SLIM_OBS_ENABLED
      if (!dump_path.empty()) {
        std::cout << "diagnostics bundle written to " << dump_path
                  << std::endl;
        obs::DefaultFlightRecorder().Uninstall();
      }
#endif
      break;
    }
  }
  return 0;
}
