// Observability dump: run a whole superimposed-information session with the
// obs substrate watching, then print what the instrumentation saw.
//
// The workload is the ICU 'Rounds' scenario (Figures 2 and 4): build the
// pad, open every scrap under each viewing style, audit the marks, run a
// declarative query, and exercise the generated (dynamic) DMI. Every layer
// of the paper's architecture — TRIM, the SLIM query engine, the DMIs, the
// Mark Manager and SLIMPad itself — reports into obs::DefaultRegistry(),
// and gesture spans stream into a ring buffer that is printed as a trace
// tree at the end.

#include <cstdio>
#include <iostream>

#include "dmi/dynamic_dmi.h"
#include "obs/obs.h"
#include "workload/session.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

int main() {
#if !SLIM_OBS_ENABLED
  std::cout << "obs_dump: built with SLIM_ENABLE_OBS=OFF — instrumentation "
               "is compiled out, nothing to report." << std::endl;
  return 0;
#else
  // Capture gesture spans in memory for the trace tree below.
  obs::RingBufferSink spans(4096);
  obs::DefaultTracer().AddSink(&spans);

  // --- Drive a session through all four layers ---------------------------
  workload::IcuOptions options;
  options.patients = 3;
  obs::MetricsRegistry session_metrics;
  workload::Session session(&session_metrics);
  CHECK_OK(session.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));
  CHECK_OK(session.BuildFullRoundsPad());

  // Open everything once per viewing style (Fig. 6) so the per-style
  // gesture counters all move.
  for (pad::ViewingStyle style : {pad::ViewingStyle::kSimultaneous,
                                  pad::ViewingStyle::kEnhanced,
                                  pad::ViewingStyle::kIndependent}) {
    session.app().set_viewing_style(style);
    CHECK_OK(session.OpenAllScraps().status());
  }

  // Mark audit (validator outcomes) and a declarative query (slim layer).
  mark::ValidationReport audit = session.app().AuditMarks();
  (void)audit;
  CHECK_OK(session.app()
               .QueryPad("?b bundleContent ?s . ?s scrapName ?n")
               .status());

  // The SLIMPad app uses its hand-written DMI; exercise the *generated*
  // DMI too so the dmi.* counters show the interpreted path (§6).
  {
    trim::TripleStore store;
    store::ModelDef model = store::BuildBundleScrapModel();
    dmi::DynamicDmi dmi(&store, *store::IdentitySchema(model, "slimpad"),
                        model);
    for (int i = 0; i < 8; ++i) {
      auto scrap = dmi.Create("Scrap");
      CHECK_OK(scrap.status());
      CHECK_OK(scrap->Set("scrapName", "scrap " + std::to_string(i)));
      CHECK_OK(scrap->Get("scrapName").status());
    }
  }

  // --- Report ------------------------------------------------------------
  std::cout << "=== Process-wide metrics (obs::DefaultRegistry) ==="
            << std::endl;
  std::cout << obs::DefaultRegistry().ExportText();

  std::cout << "\n=== Per-session metrics (workload.*) ===" << std::endl;
  std::cout << session.MetricsSummary();

  std::cout << "\n=== Per-app gesture metrics (session.app().metrics()) ==="
            << std::endl;
  std::cout << session.app().metrics().ExportText();

  std::cout << "\n=== Last gesture spans (trace tree, end order) ==="
            << std::endl;
  std::vector<obs::SpanRecord> records = spans.Spans();
  size_t first = records.size() > 12 ? records.size() - 12 : 0;
  for (size_t i = first; i < records.size(); ++i) {
    const obs::SpanRecord& span = records[i];
    for (int d = 0; d < span.depth; ++d) std::cout << "  ";
    std::cout << span.name << " (" << span.duration_ns / 1000 << " us";
    for (const auto& [key, value] : span.tags) {
      std::cout << ", " << key << "=" << value;
    }
    std::cout << ")" << std::endl;
  }
  std::cout << records.size() << " spans captured, " << spans.dropped()
            << " dropped." << std::endl;

  // --- Machine-readable summary and the merge path -----------------------
  // A fleet aggregator would collect each session's JSON and merge:
  obs::MetricsRegistry fleet;
  std::string error;
  if (!fleet.ImportJson(session_metrics.ExportJson(), &error)) {
    std::cerr << "FATAL: merge failed: " << error << std::endl;
    return 1;
  }
  std::cout << "\n=== Session JSON (round-trips through ImportJson) ==="
            << std::endl;
  std::cout << fleet.ExportJson() << std::endl;

  obs::DefaultTracer().RemoveSink(&spans);
  return 0;
#endif  // SLIM_OBS_ENABLED
}
