// Observability dump: run a whole superimposed-information session with the
// obs substrate watching, then print what the instrumentation saw.
//
// The workload is the ICU 'Rounds' scenario (Figures 2 and 4): build the
// pad, open every scrap under each viewing style, audit the marks, run a
// declarative query, and exercise the generated (dynamic) DMI. Every layer
// of the paper's architecture — TRIM, the SLIM query engine, the DMIs, the
// Mark Manager and SLIMPad itself — reports into obs::DefaultRegistry().
//
// Modes:
//   obs_dump                 the classic report: metrics, spans, JSON merge
//   obs_dump --profile       span profiler: self-time table + collapsed
//                            stacks (flamegraph.pl / speedscope input)
//   obs_dump --prom          Prometheus text exposition of the registry
//   obs_dump --serve <port>  serve GET /metrics and /healthz on localhost
//                            while re-running the workload (Ctrl-C to stop)
//   obs_dump --dump <path>   write a flight-recorder diagnostics bundle
//   obs_dump --watch [n]     re-run the workload n times (default 3),
//                            capturing a metrics-history sample per round:
//                            per-round counter deltas/rates, then the
//                            hot-lock contention table

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "dmi/dynamic_dmi.h"
#include "obs/history.h"
#include "obs/lock_profiler.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "trim/store_stats.h"
#include "workload/session.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

#if SLIM_OBS_ENABLED
namespace {

// Drives a session through all four layers; session metrics land in
// `session_metrics`, layer metrics in obs::DefaultRegistry(). The pad
// store's introspection report lands in `store_report` (when non-null) and
// its `slim.store.*` gauges in the default registry, so every output mode
// — classic text, --prom, --serve — carries store shape alongside the
// layer counters.
int RunWorkload(obs::MetricsRegistry* session_metrics,
                std::string* store_report = nullptr) {
  workload::IcuOptions options;
  options.patients = 3;
  workload::Session session(session_metrics);
  CHECK_OK(session.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));
  CHECK_OK(session.BuildFullRoundsPad());

  // Open everything once per viewing style (Fig. 6) so the per-style
  // gesture counters all move.
  for (pad::ViewingStyle style : {pad::ViewingStyle::kSimultaneous,
                                  pad::ViewingStyle::kEnhanced,
                                  pad::ViewingStyle::kIndependent}) {
    session.app().set_viewing_style(style);
    CHECK_OK(session.OpenAllScraps().status());
  }

  // Mark audit (validator outcomes) and a declarative query (slim layer).
  mark::ValidationReport audit = session.app().AuditMarks();
  (void)audit;
  CHECK_OK(session.app()
               .QueryPad("?b bundleContent ?s . ?s scrapName ?n")
               .status());

  // The SLIMPad app uses its hand-written DMI; exercise the *generated*
  // DMI too so the dmi.* counters show the interpreted path (§6).
  {
    trim::TripleStore store;
    store::ModelDef model = store::BuildBundleScrapModel();
    dmi::DynamicDmi dmi(&store, *store::IdentitySchema(model, "slimpad"),
                        model);
    for (int i = 0; i < 8; ++i) {
      auto scrap = dmi.Create("Scrap");
      CHECK_OK(scrap.status());
      CHECK_OK(scrap->Set("scrapName", "scrap " + std::to_string(i)));
      CHECK_OK(scrap->Get("scrapName").status());
    }
  }

  // Store introspection: snapshot the pad store and refresh the
  // slim.store.* gauges in the default registry.
  trim::StoreStats stats = trim::ComputeStats(session.app().store());
  trim::PublishStoreStats(stats);
  if (store_report != nullptr) *store_report = stats.ToText();
  return 0;
}

int RunClassicReport(obs::MetricsRegistry* session_metrics,
                     obs::RingBufferSink* spans) {
  std::cout << "=== Process-wide metrics (obs::DefaultRegistry) ==="
            << std::endl;
  std::cout << obs::DefaultRegistry().ExportText();

  std::cout << "\n=== Last gesture spans (trace tree, end order) ==="
            << std::endl;
  std::vector<obs::SpanRecord> records = spans->Spans();
  size_t first = records.size() > 12 ? records.size() - 12 : 0;
  for (size_t i = first; i < records.size(); ++i) {
    const obs::SpanRecord& span = records[i];
    for (int d = 0; d < span.depth; ++d) std::cout << "  ";
    std::cout << span.name << " (" << span.duration_ns / 1000 << " us";
    for (const auto& [key, value] : span.tags) {
      std::cout << ", " << key << "=" << value;
    }
    std::cout << ")" << std::endl;
  }
  std::cout << records.size() << " spans captured, " << spans->dropped()
            << " dropped." << std::endl;

  // --- Machine-readable summary and the merge path -----------------------
  // A fleet aggregator would collect each session's JSON and merge:
  obs::MetricsRegistry fleet;
  std::string error;
  if (!fleet.ImportJson(session_metrics->ExportJson(), &error)) {
    std::cerr << "FATAL: merge failed: " << error << std::endl;
    return 1;
  }
  std::cout << "\n=== Session JSON (round-trips through ImportJson) ==="
            << std::endl;
  std::cout << fleet.ExportJson() << std::endl;
  return 0;
}

}  // namespace
#endif  // SLIM_OBS_ENABLED

int main(int argc, char** argv) {
#if !SLIM_OBS_ENABLED
  (void)argc;
  (void)argv;
  std::cout << "obs_dump: built with SLIM_ENABLE_OBS=OFF — instrumentation "
               "is compiled out, nothing to report." << std::endl;
  return 0;
#else
  enum class Mode { kClassic, kProfile, kProm, kServe, kDump, kWatch } mode =
      Mode::kClassic;
  int serve_port = 0;
  int watch_rounds = 3;
  std::string dump_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      mode = Mode::kProfile;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      mode = Mode::kProm;
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      mode = Mode::kServe;
      serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      mode = Mode::kDump;
      dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      mode = Mode::kWatch;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        watch_rounds = std::atoi(argv[++i]);
      }
    } else {
      std::cerr << "usage: obs_dump [--profile | --prom | --serve <port> | "
                   "--dump <path> | --watch [rounds]]" << std::endl;
      return 2;
    }
  }

  // Watch every InstrumentedMutex in the process: per-site wait/hold
  // aggregates plus obs.lock.* metrics in the default registry.
  obs::LockProfiler::Default().Install(&obs::DefaultRegistry());

  // Capture gesture spans in memory; the profiler aggregates the same
  // stream when profiling.
  obs::RingBufferSink spans(4096);
  obs::DefaultTracer().AddSink(&spans);
  obs::SpanProfiler profiler;
  if (mode == Mode::kProfile) obs::DefaultTracer().AddSink(&profiler);
  if (mode == Mode::kDump) {
    obs::DefaultFlightRecorder().set_dump_path(dump_path);
    obs::DefaultFlightRecorder().Install();
  }

  obs::MetricsRegistry session_metrics;
  std::string store_report;
  if (int rc = RunWorkload(&session_metrics, &store_report); rc != 0) {
    return rc;
  }

  int rc = 0;
  switch (mode) {
    case Mode::kClassic:
      rc = RunClassicReport(&session_metrics, &spans);
      std::cout << "\n=== Store introspection (trim::ComputeStats) ==="
                << std::endl;
      std::cout << store_report;
      std::cout << "\n=== Per-session metrics (workload.*) ===" << std::endl;
      std::cout << session_metrics.ExportText();
      std::cout << "\n=== Hot locks (ranked by total wait) ===" << std::endl;
      std::cout << obs::LockProfiler::Default().HotLockTable();
      break;
    case Mode::kProfile: {
      std::cout << "=== Span hot spots (self time, descending) ==="
                << std::endl;
      std::cout << profiler.HotSpotTable();
      std::cout << "\n=== Collapsed stacks (flamegraph input, self us) ==="
                << std::endl;
      std::cout << profiler.CollapsedStacks();
      std::cout << profiler.span_count() << " spans profiled, "
                << profiler.records_dropped() << " stack records dropped."
                << std::endl;
      break;
    }
    case Mode::kProm:
      std::cout << obs::ExportPrometheus(obs::DefaultRegistry());
      break;
    case Mode::kServe: {
      obs::StatsServer server(&obs::DefaultRegistry(),
                              static_cast<uint16_t>(serve_port));
      obs::HistoryOptions history_options;
      history_options.interval_ms = 1000;
      history_options.capacity = 300;
      obs::MetricsHistory history(&obs::DefaultRegistry(), history_options);
      CHECK_OK(history.Start());
      server.set_history(&history);
      CHECK_OK(server.Start());
      std::cout << "serving http://127.0.0.1:" << server.port()
                << "/metrics, /metrics/history, /vars.json and /healthz — "
                   "re-running the workload every 2s, Ctrl-C to stop"
                << std::endl;
      // Keep the counters moving so successive scrapes show a live system.
      while (true) {
        std::this_thread::sleep_for(std::chrono::seconds(2));
        if (int wrc = RunWorkload(&session_metrics); wrc != 0) return wrc;
      }
      break;
    }
    case Mode::kWatch: {
      // Manual captures (one per workload round) keep the deltas
      // deterministic — no background thread racing the printout.
      obs::MetricsHistory history(&obs::DefaultRegistry());
      history.CaptureOnce();  // baseline: everything RunWorkload did above
      for (int round = 1; round <= watch_rounds; ++round) {
        if (int wrc = RunWorkload(&session_metrics); wrc != 0) return wrc;
        history.CaptureOnce();
        std::vector<obs::HistorySample> samples = history.Samples();
        const obs::HistorySample& s = samples.back();
        // The busiest counters this round, by delta.
        std::vector<const obs::HistorySample::CounterEntry*> top;
        for (const auto& entry : s.counters) {
          if (entry.delta > 0) top.push_back(&entry);
        }
        std::sort(top.begin(), top.end(),
                  [](const obs::HistorySample::CounterEntry* a,
                     const obs::HistorySample::CounterEntry* b) {
                    return a->delta != b->delta ? a->delta > b->delta
                                                : a->name < b->name;
                  });
        if (top.size() > 8) top.resize(8);
        std::printf("round %d  (sample #%llu, +%lld ms)\n", round,
                    static_cast<unsigned long long>(s.seq),
                    static_cast<long long>(s.dt_ms));
        for (const auto* entry : top) {
          std::printf("  %-42s +%-8llu %10.1f/s\n", entry->name.c_str(),
                      static_cast<unsigned long long>(entry->delta),
                      entry->rate_per_s);
        }
      }
      std::cout << "\n=== Hot locks (ranked by total wait) ===" << std::endl;
      std::cout << obs::LockProfiler::Default().HotLockTable();
      std::cout << history.capture_count() << " samples captured, "
                << history.dropped() << " evicted." << std::endl;
      break;
    }
    case Mode::kDump: {
      CHECK_OK(obs::DefaultFlightRecorder().DumpDiagnostics(dump_path));
      std::cout << "diagnostics bundle written to " << dump_path << " ("
                << obs::DefaultFlightRecorder().RecentEvents().size()
                << " events, "
                << obs::DefaultFlightRecorder().RecentSpans().size()
                << " spans)" << std::endl;
      obs::DefaultFlightRecorder().Uninstall();
      break;
    }
  }

  if (mode == Mode::kProfile) obs::DefaultTracer().RemoveSink(&profiler);
  obs::DefaultTracer().RemoveSink(&spans);
  obs::LockProfiler::Default().Uninstall();
  return rc;
#endif  // SLIM_OBS_ENABLED
}
