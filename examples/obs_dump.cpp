// Observability dump: run a whole superimposed-information session with the
// obs substrate watching, then print what the instrumentation saw.
//
// The workload is the ICU 'Rounds' scenario (Figures 2 and 4): build the
// pad, open every scrap under each viewing style, audit the marks, run a
// declarative query, and exercise the generated (dynamic) DMI. Every layer
// of the paper's architecture — TRIM, the SLIM query engine, the DMIs, the
// Mark Manager and SLIMPad itself — reports into obs::DefaultRegistry().
//
// Modes:
//   obs_dump                 the classic report: metrics, spans, JSON merge
//   obs_dump --profile       span profiler: self-time table + collapsed
//                            stacks (flamegraph.pl / speedscope input)
//   obs_dump --prom          Prometheus text exposition of the registry
//   obs_dump --serve <port>  serve GET /metrics and /healthz on localhost
//                            while re-running the workload (Ctrl-C to stop)
//   obs_dump --dump <path>   write a flight-recorder diagnostics bundle
//   obs_dump --watch [n]     re-run the workload n times (default 3),
//                            capturing a metrics-history sample per round:
//                            per-round counter deltas/rates, then the
//                            hot-lock contention table
//   obs_dump --slo [n]       the full self-diagnosis loop: declare SLOs
//                            (one deliberately unmeetable), arm the stall
//                            watchdog with a short span deadline, run n
//                            workload rounds (default 2), stall a span on
//                            purpose, and print the burn table, health
//                            verdict, alert stream and flight-bundle path
//   obs_dump --alerts        deterministic tour of the alert ring: raise,
//                            dedup, escalate, resolve and flap-suppress a
//                            key on an injected clock, then print the
//                            slim-alerts-v1 document
//   obs_dump --cpuprofile [n]  sampling profiler: run the workload under
//                            the span-stack CPU sampler for n seconds
//                            (default 2), then print the collapsed stacks
//                            and the slim-cpuprofile-v1 JSON

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "dmi/dynamic_dmi.h"
#include "obs/alert.h"
#include "obs/cpu_profiler.h"
#include "obs/flight_recorder.h"
#include "obs/history.h"
#include "obs/lock_profiler.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "trim/store_stats.h"
#include "workload/session.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

#if SLIM_OBS_ENABLED
namespace {

// Drives a session through all four layers; session metrics land in
// `session_metrics`, layer metrics in obs::DefaultRegistry(). The pad
// store's introspection report lands in `store_report` (when non-null) and
// its `slim.store.*` gauges in the default registry, so every output mode
// — classic text, --prom, --serve — carries store shape alongside the
// layer counters.
int RunWorkload(obs::MetricsRegistry* session_metrics,
                std::string* store_report = nullptr) {
  workload::IcuOptions options;
  options.patients = 3;
  workload::Session session(session_metrics);
  CHECK_OK(session.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));
  CHECK_OK(session.BuildFullRoundsPad());

  // Open everything once per viewing style (Fig. 6) so the per-style
  // gesture counters all move.
  for (pad::ViewingStyle style : {pad::ViewingStyle::kSimultaneous,
                                  pad::ViewingStyle::kEnhanced,
                                  pad::ViewingStyle::kIndependent}) {
    session.app().set_viewing_style(style);
    CHECK_OK(session.OpenAllScraps().status());
  }

  // Mark audit (validator outcomes) and a declarative query (slim layer).
  mark::ValidationReport audit = session.app().AuditMarks();
  (void)audit;
  CHECK_OK(session.app()
               .QueryPad("?b bundleContent ?s . ?s scrapName ?n")
               .status());

  // The SLIMPad app uses its hand-written DMI; exercise the *generated*
  // DMI too so the dmi.* counters show the interpreted path (§6).
  {
    trim::TripleStore store;
    store::ModelDef model = store::BuildBundleScrapModel();
    dmi::DynamicDmi dmi(&store, *store::IdentitySchema(model, "slimpad"),
                        model);
    for (int i = 0; i < 8; ++i) {
      auto scrap = dmi.Create("Scrap");
      CHECK_OK(scrap.status());
      CHECK_OK(scrap->Set("scrapName", "scrap " + std::to_string(i)));
      CHECK_OK(scrap->Get("scrapName").status());
    }
  }

  // Store introspection: snapshot the pad store and refresh the
  // slim.store.* gauges in the default registry.
  trim::StoreStats stats = trim::ComputeStats(session.app().store());
  trim::PublishStoreStats(stats);
  if (store_report != nullptr) *store_report = stats.ToText();
  return 0;
}

int RunClassicReport(obs::MetricsRegistry* session_metrics,
                     obs::RingBufferSink* spans) {
  std::cout << "=== Process-wide metrics (obs::DefaultRegistry) ==="
            << std::endl;
  std::cout << obs::DefaultRegistry().ExportText();

  std::cout << "\n=== Last gesture spans (trace tree, end order) ==="
            << std::endl;
  std::vector<obs::SpanRecord> records = spans->Spans();
  size_t first = records.size() > 12 ? records.size() - 12 : 0;
  for (size_t i = first; i < records.size(); ++i) {
    const obs::SpanRecord& span = records[i];
    for (int d = 0; d < span.depth; ++d) std::cout << "  ";
    std::cout << span.name << " (" << span.duration_ns / 1000 << " us";
    for (const auto& [key, value] : span.tags) {
      std::cout << ", " << key << "=" << value;
    }
    std::cout << ")" << std::endl;
  }
  std::cout << records.size() << " spans captured, " << spans->dropped()
            << " dropped." << std::endl;

  // --- Machine-readable summary and the merge path -----------------------
  // A fleet aggregator would collect each session's JSON and merge:
  obs::MetricsRegistry fleet;
  std::string error;
  if (!fleet.ImportJson(session_metrics->ExportJson(), &error)) {
    std::cerr << "FATAL: merge failed: " << error << std::endl;
    return 1;
  }
  std::cout << "\n=== Session JSON (round-trips through ImportJson) ==="
            << std::endl;
  std::cout << fleet.ExportJson() << std::endl;
  return 0;
}

void PrintSloTable(const obs::SloEngine& slo) {
  for (const obs::SloStatus& s : slo.Statuses()) {
    std::printf("  %-14s %-8s", s.objective.id.c_str(),
                std::string(obs::SloStateName(s.state)).c_str());
    if (!s.has_data) {
      std::printf("  (window still filling)\n");
      continue;
    }
    std::printf("  bad %llu/%llu  burn %.2fx budget\n",
                static_cast<unsigned long long>(s.window_bad),
                static_cast<unsigned long long>(s.window_total), s.burn_rate);
  }
}

// The tentpole, end to end: objectives burn against real workload
// metrics, a deliberately-stalled span trips the watchdog, and the trip
// is visible in the health verdict, the alert stream and a flight bundle
// on disk.
int RunSloDemo(obs::MetricsRegistry* session_metrics, int rounds) {
  const char* bundle_path = "obs_slo_bundle.json";
  obs::DefaultFlightRecorder().set_dump_path(bundle_path);
  obs::DefaultFlightRecorder().Install();

  obs::AlertRing alerts(&obs::DefaultRegistry());
  obs::SloEngine slo(&obs::DefaultRegistry());
  slo.set_alerts(&alerts);
  // p99 < 1us is unmeetable on purpose: the demo must show a burn.
  CHECK_OK(slo.AddObjective(
      "query_p99: slim.query.latency_us p99 < 1us window 30s"));
  CHECK_OK(slo.AddObjective(
      "query_errors: slim.query.execute error_rate < 5% window 30s"));

  obs::Watchdog& dog = obs::Watchdog::Default();
  dog.set_alerts(&alerts);
  dog.set_slo(&slo);
  dog.set_lock_profiler(&obs::LockProfiler::Default());
  dog.SetSpanDeadline("demo.stall", 100);
  CHECK_OK(dog.Start());
  dog.Arm();

  for (int round = 1; round <= rounds; ++round) {
    int rc = RunWorkload(session_metrics);
    if (rc != 0) return rc;
    slo.Evaluate();
    std::printf("round %d/%d\n", round, rounds);
    PrintSloTable(slo);
  }

  std::cout << "\nstalling a span past its 100ms deadline..." << std::endl;
  std::thread stall([] {
    SLIM_OBS_SPAN(span, "demo.stall");
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
  });
  stall.join();
  // One more poll interval so the watchdog sees the span finish and
  // resolves the stall alert.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::cout << "\n=== Health verdict (watchdog.Health) ===" << std::endl;
  std::cout << dog.Health().ToJson() << std::endl;
  std::cout << "\n=== Alert stream (slim-alerts-v1) ===" << std::endl;
  std::cout << alerts.ExportJson() << std::endl;
  std::cout << "\n=== SLO document (slim-slo-v1) ===" << std::endl;
  std::cout << slo.ExportJson() << std::endl;
  std::cout << "\nflight bundle (dumped on the stall trip): " << bundle_path
            << std::endl;

  dog.Disarm();
  dog.Stop();
  dog.set_alerts(nullptr);
  dog.set_slo(nullptr);
  dog.set_lock_profiler(nullptr);
  obs::DefaultFlightRecorder().Uninstall();
  return 0;
}

// Sampling-profiler tour: keep the workload running on a couple of worker
// threads while the span-stack sampler watches, then print both export
// shapes. The collapsed text pipes straight into flamegraph.pl; the JSON
// loads in speedscope.
int RunCpuProfileDemo(obs::MetricsRegistry* session_metrics, int seconds) {
  obs::CpuProfiler& prof = obs::CpuProfiler::Default();
  if (!prof.Start()) {
    std::cerr << "FATAL: sampling profiler failed to start" << std::endl;
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      obs::MetricsRegistry scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        if (RunWorkload(&scratch) != 0) {
          failed.store(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  obs::CpuProfile profile = prof.CaptureWindow(
      static_cast<uint64_t>(seconds) * 1000);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
  prof.Stop();
  if (failed.load()) {
    std::cerr << "FATAL: workload failed under the profiler" << std::endl;
    return 1;
  }
  (void)session_metrics;

  std::cout << "=== Collapsed span stacks (flamegraph input, samples) ==="
            << std::endl;
  std::cout << profile.ToCollapsed();
  std::printf(
      "\n%llu samples in spans, %llu idle, %llu dropped over %llu ms at "
      "%llu Hz (%s mode)\n",
      static_cast<unsigned long long>(profile.samples),
      static_cast<unsigned long long>(profile.samples_idle),
      static_cast<unsigned long long>(profile.samples_dropped),
      static_cast<unsigned long long>(profile.duration_ms),
      static_cast<unsigned long long>(profile.sample_hz),
      profile.mode.c_str());
  std::cout << "\n=== slim-cpuprofile-v1 (speedscope-compatible) ==="
            << std::endl;
  std::cout << profile.ToJson() << std::endl;
  return 0;
}

// Deterministic alert-ring walkthrough on an injected clock: every line
// of output is reproducible, so CI can grep it.
int64_t g_demo_now_ms = 0;
int64_t DemoNowMs() { return g_demo_now_ms; }

int RunAlertsDemo() {
  obs::AlertRingOptions options;
  options.now_ms = &DemoNowMs;
  options.flap_threshold = 4;
  options.flap_window_ms = 1000;
  obs::AlertRing ring(&obs::DefaultRegistry(), options);

  auto step = [&](const char* what, bool emitted) {
    std::printf("  t=%-5lld %-44s -> %s\n",
                static_cast<long long>(g_demo_now_ms), what,
                emitted ? "event emitted" : "suppressed / deduped");
  };
  std::cout << "alert-ring walkthrough (flap threshold 4 transitions / 1s):"
            << std::endl;
  g_demo_now_ms = 0;
  step("raise slo:demo warn", ring.Raise("slo:demo", "slo_burn",
                                         obs::AlertSeverity::kWarn, "2x"));
  g_demo_now_ms = 100;
  step("raise slo:demo warn again (dedup)",
       ring.Raise("slo:demo", "slo_burn", obs::AlertSeverity::kWarn, "2x"));
  g_demo_now_ms = 200;
  step("escalate slo:demo to critical",
       ring.Raise("slo:demo", "slo_burn", obs::AlertSeverity::kCritical,
                  "5x"));
  g_demo_now_ms = 300;
  step("resolve slo:demo", ring.Resolve("slo:demo"));
  for (int i = 0; i < 3; ++i) {
    g_demo_now_ms = 400 + 100 * i;
    step("flapping raise stall:op",
         ring.Raise("stall:op", "stall", obs::AlertSeverity::kCritical,
                    "stuck"));
    step("flapping resolve stall:op", ring.Resolve("stall:op"));
  }
  g_demo_now_ms = 2000;  // a calm window clears the suppression
  step("raise stall:op after the storm",
       ring.Raise("stall:op", "stall", obs::AlertSeverity::kCritical,
                  "stuck"));
  step("resolve stall:op", ring.Resolve("stall:op"));

  std::printf("\nraised %llu, deduped %llu, flap-suppressed %llu\n",
              static_cast<unsigned long long>(ring.raised()),
              static_cast<unsigned long long>(ring.deduped()),
              static_cast<unsigned long long>(ring.flap_suppressed()));
  std::cout << "\n=== Alert stream (slim-alerts-v1) ===" << std::endl;
  std::cout << ring.ExportJson() << std::endl;
  return 0;
}

}  // namespace
#endif  // SLIM_OBS_ENABLED

int main(int argc, char** argv) {
#if !SLIM_OBS_ENABLED
  (void)argc;
  (void)argv;
  std::cout << "obs_dump: built with SLIM_ENABLE_OBS=OFF — instrumentation "
               "is compiled out, nothing to report." << std::endl;
  return 0;
#else
  enum class Mode {
    kClassic,
    kProfile,
    kProm,
    kServe,
    kDump,
    kWatch,
    kSlo,
    kAlerts,
    kCpuProfile
  } mode = Mode::kClassic;
  int serve_port = 0;
  int watch_rounds = 3;
  int slo_rounds = 2;
  int cpuprofile_seconds = 2;
  std::string dump_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      mode = Mode::kProfile;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      mode = Mode::kProm;
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      mode = Mode::kServe;
      serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      mode = Mode::kDump;
      dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      mode = Mode::kWatch;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        watch_rounds = std::atoi(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      mode = Mode::kSlo;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        slo_rounds = std::atoi(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--alerts") == 0) {
      mode = Mode::kAlerts;
    } else if (std::strcmp(argv[i], "--cpuprofile") == 0) {
      mode = Mode::kCpuProfile;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        cpuprofile_seconds = std::atoi(argv[++i]);
      }
    } else {
      std::cerr << "usage: obs_dump [--profile | --prom | --serve <port> | "
                   "--dump <path> | --watch [rounds] | --slo [rounds] | "
                   "--alerts | --cpuprofile [seconds]]" << std::endl;
      return 2;
    }
  }

  // Watch every InstrumentedMutex in the process: per-site wait/hold
  // aggregates plus obs.lock.* metrics in the default registry.
  obs::LockProfiler::Default().Install(&obs::DefaultRegistry());

  // Capture gesture spans in memory; the profiler aggregates the same
  // stream when profiling.
  obs::RingBufferSink spans(4096);
  obs::DefaultTracer().AddSink(&spans);
  obs::SpanProfiler profiler;
  if (mode == Mode::kProfile) obs::DefaultTracer().AddSink(&profiler);
  if (mode == Mode::kDump) {
    obs::DefaultFlightRecorder().set_dump_path(dump_path);
    obs::DefaultFlightRecorder().Install();
  }

  obs::MetricsRegistry session_metrics;
  std::string store_report;
  // --alerts is a pure alert-ring walkthrough and --cpuprofile drives its
  // own workload loop under the sampler; every other mode wants the
  // workload's metrics in the default registry before reporting.
  if (mode != Mode::kAlerts && mode != Mode::kCpuProfile) {
    if (int rc = RunWorkload(&session_metrics, &store_report); rc != 0) {
      return rc;
    }
  }

  int rc = 0;
  switch (mode) {
    case Mode::kClassic:
      rc = RunClassicReport(&session_metrics, &spans);
      std::cout << "\n=== Store introspection (trim::ComputeStats) ==="
                << std::endl;
      std::cout << store_report;
      std::cout << "\n=== Per-session metrics (workload.*) ===" << std::endl;
      std::cout << session_metrics.ExportText();
      std::cout << "\n=== Hot locks (ranked by total wait) ===" << std::endl;
      std::cout << obs::LockProfiler::Default().HotLockTable();
      break;
    case Mode::kProfile: {
      std::cout << "=== Span hot spots (self time, descending) ==="
                << std::endl;
      std::cout << profiler.HotSpotTable();
      std::cout << "\n=== Collapsed stacks (flamegraph input, self us) ==="
                << std::endl;
      std::cout << profiler.CollapsedStacks();
      std::cout << profiler.span_count() << " spans profiled, "
                << profiler.records_dropped()
                << " stack records evicted (obs.profile.evicted)."
                << std::endl;
      break;
    }
    case Mode::kProm:
      std::cout << obs::ExportPrometheus(obs::DefaultRegistry());
      break;
    case Mode::kServe: {
      obs::StatsServer server(&obs::DefaultRegistry(),
                              static_cast<uint16_t>(serve_port));
      obs::HistoryOptions history_options;
      history_options.interval_ms = 1000;
      history_options.capacity = 300;
      obs::MetricsHistory history(&obs::DefaultRegistry(), history_options);
      CHECK_OK(history.Start());
      server.set_history(&history);
      // Self-diagnosis endpoints: SLOs over the live workload metrics, the
      // armed watchdog behind /healthz, alerts behind /alerts.json.
      obs::AlertRing alerts(&obs::DefaultRegistry());
      obs::SloEngine slo(&obs::DefaultRegistry());
      slo.set_alerts(&alerts);
      CHECK_OK(slo.AddObjective(
          "query_p99: slim.query.latency_us p99 < 5ms window 60s"));
      CHECK_OK(slo.AddObjective(
          "query_errors: slim.query.execute error_rate < 5% window 60s"));
      obs::Watchdog& dog = obs::Watchdog::Default();
      dog.set_alerts(&alerts);
      dog.set_slo(&slo);
      dog.set_lock_profiler(&obs::LockProfiler::Default());
      CHECK_OK(dog.Start());
      dog.Arm();
      // Always-on sampling profiler: /profile/cpu serves live captures and
      // the watchdog embeds a short capture in stall-trip bundles.
      obs::CpuProfiler& cpuprof = obs::CpuProfiler::Default();
      if (!cpuprof.Start()) {
        std::cerr << "FATAL: sampling profiler failed to start" << std::endl;
        return 1;
      }
      dog.set_cpu_profiler(&cpuprof);
      server.set_slo(&slo);
      server.set_alerts(&alerts);
      server.set_watchdog(&dog);
      server.set_cpu_profiler(&cpuprof);
      CHECK_OK(server.Start());
      std::cout << "serving http://127.0.0.1:" << server.port()
                << "/metrics, /metrics/history, /vars.json, /slo.json, "
                   "/alerts.json, /healthz, /profile/cpu and "
                   "/profile/cpu.collapsed — re-running the workload "
                   "every 2s, Ctrl-C to stop"
                << std::endl;
      // Keep the counters moving so successive scrapes show a live system.
      while (true) {
        std::this_thread::sleep_for(std::chrono::seconds(2));
        if (int wrc = RunWorkload(&session_metrics); wrc != 0) return wrc;
      }
      break;
    }
    case Mode::kWatch: {
      // Manual captures (one per workload round) keep the deltas
      // deterministic — no background thread racing the printout.
      obs::MetricsHistory history(&obs::DefaultRegistry());
      history.CaptureOnce();  // baseline: everything RunWorkload did above
      for (int round = 1; round <= watch_rounds; ++round) {
        if (int wrc = RunWorkload(&session_metrics); wrc != 0) return wrc;
        history.CaptureOnce();
        std::vector<obs::HistorySample> samples = history.Samples();
        const obs::HistorySample& s = samples.back();
        // The busiest counters this round, by delta.
        std::vector<const obs::HistorySample::CounterEntry*> top;
        for (const auto& entry : s.counters) {
          if (entry.delta > 0) top.push_back(&entry);
        }
        std::sort(top.begin(), top.end(),
                  [](const obs::HistorySample::CounterEntry* a,
                     const obs::HistorySample::CounterEntry* b) {
                    return a->delta != b->delta ? a->delta > b->delta
                                                : a->name < b->name;
                  });
        if (top.size() > 8) top.resize(8);
        std::printf("round %d  (sample #%llu, +%lld ms)\n", round,
                    static_cast<unsigned long long>(s.seq),
                    static_cast<long long>(s.dt_ms));
        for (const auto* entry : top) {
          std::printf("  %-42s +%-8llu %10.1f/s\n", entry->name.c_str(),
                      static_cast<unsigned long long>(entry->delta),
                      entry->rate_per_s);
        }
      }
      std::cout << "\n=== Hot locks (ranked by total wait) ===" << std::endl;
      std::cout << obs::LockProfiler::Default().HotLockTable();
      std::cout << history.capture_count() << " samples captured, "
                << history.dropped() << " evicted." << std::endl;
      break;
    }
    case Mode::kDump: {
      CHECK_OK(obs::DefaultFlightRecorder().DumpDiagnostics(dump_path));
      std::cout << "diagnostics bundle written to " << dump_path << " ("
                << obs::DefaultFlightRecorder().RecentEvents().size()
                << " events, "
                << obs::DefaultFlightRecorder().RecentSpans().size()
                << " spans)" << std::endl;
      obs::DefaultFlightRecorder().Uninstall();
      break;
    }
    case Mode::kSlo:
      rc = RunSloDemo(&session_metrics, slo_rounds);
      break;
    case Mode::kAlerts:
      rc = RunAlertsDemo();
      break;
    case Mode::kCpuProfile:
      rc = RunCpuProfileDemo(&session_metrics, cpuprofile_seconds);
      break;
  }

  if (mode == Mode::kProfile) obs::DefaultTracer().RemoveSink(&profiler);
  obs::DefaultTracer().RemoveSink(&spans);
  obs::LockProfiler::Default().Uninstall();
  return rc;
#endif  // SLIM_OBS_ENABLED
}
