// Schema-later: the "information-first" flavor of §3 and the flexible
// model/schema/instance layering of §4.3.
//
// A clinician starts jotting structured facts with NO schema — instances
// with free type names go straight into the triple store. Later, a schema
// is *induced* from the accumulated data, conformance is checked, the
// schema is persisted as triples alongside the data, and finally the whole
// data set is mapped onto a second schema (the §4.3 schema-to-schema
// mapping), all through the same generic representation.

#include <iostream>

#include "dmi/dynamic_dmi.h"
#include "slim/conformance.h"
#include "slim/instance.h"
#include "slim/mapping.h"
#include "trim/persistence.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

int main() {
  trim::TripleStore store;
  store::InstanceGraph graph(&store);

  // --- Phase 1: information first, no schema ----------------------------
  std::cout << "Phase 1: jotting facts with no schema..." << std::endl;
  auto john = graph.Create("Patient").ValueOrDie();
  CHECK_OK(graph.SetValue(john, "name", "John Smith"));
  CHECK_OK(graph.SetValue(john, "room", "ICU-4"));
  auto mary = graph.Create("Patient").ValueOrDie();
  CHECK_OK(graph.SetValue(mary, "name", "Mary Chen"));
  CHECK_OK(graph.SetValue(mary, "room", "ICU-7"));
  CHECK_OK(graph.AddValue(mary, "allergy", "penicillin"));
  CHECK_OK(graph.AddValue(mary, "allergy", "latex"));
  auto heparin = graph.Create("Order").ValueOrDie();
  CHECK_OK(graph.SetValue(heparin, "drug", "heparin"));
  auto insulin = graph.Create("Order").ValueOrDie();
  CHECK_OK(graph.SetValue(insulin, "drug", "insulin"));
  CHECK_OK(graph.Connect(john, "hasOrder", heparin));
  CHECK_OK(graph.Connect(mary, "hasOrder", insulin));
  std::cout << "  " << store.size() << " triples, no schema anywhere."
            << std::endl;

  // --- Phase 2: induce a schema from the data ---------------------------
  std::cout << "\nPhase 2: inducing a schema..." << std::endl;
  store::SchemaDef schema = store::InduceSchema(store, "jottings")
                                .ValueOrDie();
  for (const auto& [element, construct] : schema.elements()) {
    std::cout << "  element " << element << " : " << construct << std::endl;
    for (const auto* c : schema.ConnectorsFor(element)) {
      std::cout << "    " << c->name << " -> " << c->range << " ["
                << c->min_card << ".."
                << (c->max_card == store::kMany
                        ? std::string("*")
                        : std::to_string(c->max_card))
                << "]" << std::endl;
    }
  }

  store::ModelDef generic = store::BuildGenericModel();
  auto report = store::CheckConformance(store, schema, generic);
  std::cout << "  conformance: " << report.ToString() << std::endl;

  // Persist model + schema next to the data: the store is self-describing.
  CHECK_OK(generic.ToTriples(&store));
  CHECK_OK(schema.ToTriples(&store));
  std::cout << "  store now self-describing: " << store.size() << " triples."
            << std::endl;

  // --- Phase 3: the induced schema now *guards* new data ----------------
  std::cout << "\nPhase 3: new data checked against the induced schema..."
            << std::endl;
  auto bo = graph.Create("Patient").ValueOrDie();
  CHECK_OK(graph.SetValue(bo, "name", "Bo Larsen"));
  CHECK_OK(graph.SetValue(bo, "nickname", "Bo"));  // never seen before
  report = store::CheckConformance(store, schema, generic);
  for (const auto& v : report.violations) {
    std::cout << "  violation [" << store::ViolationKindName(v.kind) << "] "
              << v.instance << " ." << v.property << ": " << v.message
              << std::endl;
  }

  // A generated DMI over the induced schema refuses the same mistake
  // up front (schema-first mode for the rest of the team).
  dmi::DynamicDmi typed(&store, schema, generic);
  auto patient = typed.Create("Patient").ValueOrDie();
  CHECK_OK(patient.Set("name", "Ingrid Weber"));
  Status rejected = patient.Set("nickname", "Inge");
  std::cout << "  generated DMI rejects undeclared attribute: " << rejected
            << std::endl;

  // --- Phase 4: schema-to-schema mapping --------------------------------
  std::cout << "\nPhase 4: mapping onto the ward-census schema..."
            << std::endl;
  store::Mapping mapping("jottings-to-census");
  CHECK_OK(mapping.AddRule({"Patient", "schema:census/Person",
                            {{"name", "fullName"},
                             {"room", "bed"},
                             {"hasOrder", "prescription"}},
                            false}));
  CHECK_OK(mapping.AddRule({"Order", "schema:census/Rx",
                            {{"drug", "medication"}},
                            false}));
  trim::TripleStore census;
  auto stats = mapping.Apply(store, &census);
  CHECK_OK(stats.status());
  std::cout << "  mapped " << stats->instances_mapped << " instances, wrote "
            << stats->triples_written << " triples." << std::endl;

  store::InstanceGraph census_graph(&census);
  for (const std::string& id :
       census_graph.InstancesOf("schema:census/Person")) {
    std::cout << "  Person " << id << ": fullName=\""
              << census_graph.GetValue(id, "fullName").ValueOr("?")
              << "\" bed=\"" << census_graph.GetValue(id, "bed").ValueOr("?")
              << "\"" << std::endl;
  }

  std::cout << "\nschema_later complete." << std::endl;
  return 0;
}
