// ICU rounds: a full re-enactment of the paper's Figures 2 and 4.
//
// A synthetic intensive-care census is generated (medication list as a
// spreadsheet, lab reports as XML, progress notes as text, a guideline PDF
// and a protocol web page). A resident then builds the 'Rounds' pad — one
// bundle per patient holding medication scraps (Excel marks) and an
// 'Electrolyte' bundle (XML marks + the gridlet) — annotates a worrying
// value, links related scraps, and finally hands the pad off to the
// covering physician, who reloads it and re-establishes context by
// resolving scraps (§6's "transfer of current-situation awareness").

#include <cstdio>
#include <iostream>

#include "workload/session.h"

using namespace slim;
using workload::ElectrolyteAnalytes;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
      return 1;                                       \
    }                                                 \
  } while (false)

int main() {
  workload::IcuOptions options;
  options.patients = 4;
  options.seed = 20010402;  // ICDE 2001, April 2-6
  workload::Session session;
  CHECK_OK(session.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));

  std::cout << "=== ICU census ===" << std::endl;
  for (const auto& p : session.icu().patients) {
    std::cout << "  " << p.name << " (" << p.mrn << "): " << p.med_count
              << " meds, problems:";
    for (const auto& prob : p.problems) std::cout << " [" << prob << "]";
    std::cout << std::endl;
  }

  CHECK_OK(session.BuildRoundsPad());
  pad::SlimPadApp& app = session.app();
  std::cout << "\n=== Pad '" << app.pad()->pad_name() << "' ===" << std::endl;
  std::cout << "bundles: " << app.dmi().Bundles().size()
            << ", scraps: " << app.dmi().Scraps().size()
            << ", marks: " << session.marks().size() << std::endl;

  // --- The Fig. 4 interaction -------------------------------------------
  const pad::Bundle* first_patient =
      app.dmi().GetBundle(session.patient_bundles()[0]).ValueOrDie();
  std::cout << "\nClicking med scraps for " << first_patient->name() << ":"
            << std::endl;
  for (const std::string& scrap_id : first_patient->scraps()) {
    const pad::Scrap* scrap = app.dmi().GetScrap(scrap_id).ValueOrDie();
    CHECK_OK(app.OpenScrap(scrap_id).status());
    const auto& nav = *session.excel().last_navigation();
    std::cout << "  '" << scrap->name() << "' -> " << nav.file_name << " ["
              << nav.address << "]" << std::endl;
  }

  const pad::Bundle* lytes =
      app.dmi().GetBundle(first_patient->nested_bundles()[0]).ValueOrDie();
  std::cout << "\nDouble-clicking scraps in the '" << lytes->name()
            << "' bundle:" << std::endl;
  for (const std::string& scrap_id : lytes->scraps()) {
    const pad::Scrap* scrap = app.dmi().GetScrap(scrap_id).ValueOrDie();
    if (scrap->mark_handles().empty()) {
      std::cout << "  '" << scrap->name() << "' (graphic gridlet, no mark)"
                << std::endl;
      continue;
    }
    CHECK_OK(app.OpenScrap(scrap_id).status());
    const auto& nav = *session.xml().last_navigation();
    std::cout << "  '" << scrap->name() << "' -> " << nav.file_name << " ["
              << nav.address << "] \"" << nav.highlighted_content << "\""
              << std::endl;
  }

  // --- §6 extensions in action -------------------------------------------
  // Annotate the potassium scrap and link it to the first med scrap.
  std::string k_scrap;
  for (const std::string& scrap_id : lytes->scraps()) {
    const pad::Scrap* scrap = app.dmi().GetScrap(scrap_id).ValueOrDie();
    if (scrap->name().rfind("K ", 0) == 0) k_scrap = scrap_id;
  }
  if (!k_scrap.empty() && !first_patient->scraps().empty()) {
    CHECK_OK(app.dmi().AddScrapAnnotation(k_scrap, "recheck after KCl"));
    CHECK_OK(app.dmi().LinkScraps(k_scrap, first_patient->scraps()[0]));
    const pad::Scrap* k = app.dmi().GetScrap(k_scrap).ValueOrDie();
    std::cout << "\nAnnotated '" << k->name() << "': " << k->annotations()[0]
              << " (linked to 1 med scrap)" << std::endl;
  }

  // --- Auditing marks against the living base layer -----------------------
  // Overnight, a dose is corrected in the medication list; the audit pass
  // (§3's staleness concern) flags the drifted scrap.
  doc::Workbook* meds_book =
      session.excel().GetWorkbook("meds.book").ValueOrDie();
  doc::Worksheet* meds_sheet =
      meds_book->GetSheet("Medications").ValueOrDie();
  int drift_row = session.icu().patients[0].med_row_begin;
  meds_sheet->SetValue({drift_row, 2}, std::string("HELD"));
  mark::ValidationReport audit = session.app().AuditMarks();
  std::cout << "\nMark audit after an overnight dose change: "
            << audit.valid << " valid, " << audit.changed << " changed, "
            << audit.dangling << " dangling." << std::endl;
  for (const mark::MarkAudit& a : audit.audits) {
    if (a.health != mark::MarkHealth::kValid) {
      std::cout << "  drifted " << a.mark_id << ": " << a.detail << std::endl;
    }
  }

  // --- Querying the pad -----------------------------------------------------
  auto gridlets = session.app().QueryPad(
      "?b bundleContent ?s . ?s scrapName \"gridlet\" . ?b bundleName ?n");
  CHECK_OK(gridlets.status());
  std::cout << "\nDeclarative query: " << gridlets->size()
            << " electrolyte gridlets found on the pad." << std::endl;

  // --- Handoff -------------------------------------------------------------
  const std::string path = "/tmp/icu_rounds_pad.xml";
  CHECK_OK(app.SavePad(path));
  std::cout << "\nSaved pad for handoff; covering physician reloading..."
            << std::endl;

  workload::Session covering;
  CHECK_OK(covering.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));
  CHECK_OK(covering.app().LoadPad(path));
  auto reopened = covering.OpenAllScraps();
  CHECK_OK(reopened.status());
  std::cout << "Covering physician re-established context on " << *reopened
            << " scraps across " << covering.app().dmi().Bundles().size()
            << " bundles." << std::endl;

  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
  std::cout << "\nicu_rounds complete." << std::endl;
  return 0;
}
