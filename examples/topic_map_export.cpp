// Topic-map export: the multi-model story of §4.3 end to end.
//
// A rounds pad (Bundle-Scrap model) is mapped onto the Topic Map model —
// a completely different superimposed model expressed in the same
// metamodel — conformance-checked against it, queried declaratively, and
// finally exported as RDF/XML for interchange with other superimposed
// applications. No SLIMPad code knows about topic maps; everything happens
// through the generic representation.

#include <iostream>

#include "slim/conformance.h"
#include "slim/query.h"
#include "slim/topic_map.h"
#include "trim/rdf_xml.h"
#include "workload/session.h"

using namespace slim;

#define CHECK_OK(expr)                                \
  do {                                                \
    ::slim::Status _st = (expr);                      \
    if (!_st.ok()) {                                  \
      std::cerr << "FATAL: " << _st << std::endl;     \
    return 1;                                         \
    }                                                 \
  } while (false)

int main() {
  // --- Build the familiar rounds pad -------------------------------------
  workload::IcuOptions options;
  options.patients = 3;
  options.seed = 13250;  // ISO 13250, naturally
  workload::Session session;
  CHECK_OK(session.LoadIcuWorkload(workload::GenerateIcuWorkload(options)));
  CHECK_OK(session.BuildRoundsPad());
  std::cout << "Pad: " << session.app().dmi().Bundles().size()
            << " bundles, " << session.app().dmi().Scraps().size()
            << " scraps (Bundle-Scrap model)." << std::endl;

  // --- Map it onto the Topic Map model ------------------------------------
  store::Mapping mapping = store::BundleScrapToTopicMap();
  trim::TripleStore topic_store;
  auto stats = mapping.Apply(session.app().store(), &topic_store);
  CHECK_OK(stats.status());
  std::cout << "\nMapped " << stats->instances_mapped
            << " instances into the topic map (" << stats->triples_written
            << " triples; " << stats->properties_dropped
            << " pad-only properties dropped)." << std::endl;

  // --- Conformance against the second model -------------------------------
  store::ModelDef tm_model = store::BuildTopicMapModel();
  store::SchemaDef tm_schema = store::TopicMapSchema().ValueOrDie();
  auto report = store::CheckConformance(topic_store, tm_schema, tm_model);
  std::cout << "Topic-map conformance: " << report.ToString() << std::endl;

  // --- Query the topic map declaratively ----------------------------------
  // "Which topics have occurrences, and what are their locators?"
  auto rows = store::ExecuteText(topic_store,
                                 "?t topicName ?name . "
                                 "?t occurrence ?o . "
                                 "?o locator ?l . "
                                 "?l locatorRef ?mark");
  CHECK_OK(rows.status());
  std::cout << "\nTopics with located occurrences (" << rows->size()
            << " solutions); first five:" << std::endl;
  size_t shown = 0;
  for (const store::Binding& row : *rows) {
    if (shown++ == 5) break;
    std::cout << "  topic \"" << row.at("name").text << "\" -> mark "
              << row.at("mark").text << std::endl;
  }

  // --- Export as RDF/XML for interchange ----------------------------------
  auto rdf = trim::StoreToRdfXml(topic_store);
  CHECK_OK(rdf.status());
  std::cout << "\nRDF/XML export: " << rdf->size() << " bytes. First lines:"
            << std::endl;
  size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    size_t next = rdf->find('\n', pos);
    std::cout << "  " << rdf->substr(pos, next - pos) << std::endl;
    pos = next == std::string::npos ? next : next + 1;
  }

  // Round trip: another application imports the interchange file.
  trim::TripleStore imported;
  CHECK_OK(trim::StoreFromRdfXml(*rdf, &imported));
  std::cout << "\nRe-imported " << imported.size()
            << " triples (original: " << topic_store.size() << ")."
            << std::endl;

  std::cout << "\ntopic_map_export complete." << std::endl;
  return 0;
}
