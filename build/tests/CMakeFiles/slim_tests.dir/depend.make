# Empty dependencies file for slim_tests.
# This may be replaced when dependencies are built.
