
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/a1_test.cc" "tests/CMakeFiles/slim_tests.dir/a1_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/a1_test.cc.o.d"
  "/root/repo/tests/baseapp_test.cc" "tests/CMakeFiles/slim_tests.dir/baseapp_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/baseapp_test.cc.o.d"
  "/root/repo/tests/dmi_test.cc" "tests/CMakeFiles/slim_tests.dir/dmi_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/dmi_test.cc.o.d"
  "/root/repo/tests/drift_and_query_property_test.cc" "tests/CMakeFiles/slim_tests.dir/drift_and_query_property_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/drift_and_query_property_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/slim_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/formula_functions_test.cc" "tests/CMakeFiles/slim_tests.dir/formula_functions_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/formula_functions_test.cc.o.d"
  "/root/repo/tests/formula_test.cc" "tests/CMakeFiles/slim_tests.dir/formula_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/formula_test.cc.o.d"
  "/root/repo/tests/full_session_test.cc" "tests/CMakeFiles/slim_tests.dir/full_session_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/full_session_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/slim_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/html_test.cc" "tests/CMakeFiles/slim_tests.dir/html_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/html_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/slim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interned_store_test.cc" "tests/CMakeFiles/slim_tests.dir/interned_store_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/interned_store_test.cc.o.d"
  "/root/repo/tests/interop_test.cc" "tests/CMakeFiles/slim_tests.dir/interop_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/interop_test.cc.o.d"
  "/root/repo/tests/mark_test.cc" "tests/CMakeFiles/slim_tests.dir/mark_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/mark_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/slim_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/robust_path_test.cc" "tests/CMakeFiles/slim_tests.dir/robust_path_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/robust_path_test.cc.o.d"
  "/root/repo/tests/slides_pdf_test.cc" "tests/CMakeFiles/slim_tests.dir/slides_pdf_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/slides_pdf_test.cc.o.d"
  "/root/repo/tests/slim_store_test.cc" "tests/CMakeFiles/slim_tests.dir/slim_store_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/slim_store_test.cc.o.d"
  "/root/repo/tests/slimpad_test.cc" "tests/CMakeFiles/slim_tests.dir/slimpad_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/slimpad_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/slim_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/text_test.cc.o.d"
  "/root/repo/tests/trim_test.cc" "tests/CMakeFiles/slim_tests.dir/trim_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/trim_test.cc.o.d"
  "/root/repo/tests/umbrella_test.cc" "tests/CMakeFiles/slim_tests.dir/umbrella_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/umbrella_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/slim_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workbook_test.cc" "tests/CMakeFiles/slim_tests.dir/workbook_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/workbook_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/slim_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/slim_tests.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/slim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/slimpad/CMakeFiles/slim_pad.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/slim_dmi.dir/DependInfo.cmake"
  "/root/repo/build/src/slim/CMakeFiles/slim_store.dir/DependInfo.cmake"
  "/root/repo/build/src/mark/CMakeFiles/slim_mark.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/slim_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseapp/CMakeFiles/slim_baseapp.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
