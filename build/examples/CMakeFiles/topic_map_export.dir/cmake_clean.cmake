file(REMOVE_RECURSE
  "CMakeFiles/topic_map_export.dir/topic_map_export.cpp.o"
  "CMakeFiles/topic_map_export.dir/topic_map_export.cpp.o.d"
  "topic_map_export"
  "topic_map_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_map_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
