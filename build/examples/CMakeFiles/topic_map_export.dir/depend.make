# Empty dependencies file for topic_map_export.
# This may be replaced when dependencies are built.
