file(REMOVE_RECURSE
  "CMakeFiles/shared_annotations.dir/shared_annotations.cpp.o"
  "CMakeFiles/shared_annotations.dir/shared_annotations.cpp.o.d"
  "shared_annotations"
  "shared_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
