# Empty dependencies file for shared_annotations.
# This may be replaced when dependencies are built.
