# Empty dependencies file for schema_later.
# This may be replaced when dependencies are built.
