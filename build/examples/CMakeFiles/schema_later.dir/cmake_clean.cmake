file(REMOVE_RECURSE
  "CMakeFiles/schema_later.dir/schema_later.cpp.o"
  "CMakeFiles/schema_later.dir/schema_later.cpp.o.d"
  "schema_later"
  "schema_later.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_later.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
