# Empty dependencies file for icu_rounds.
# This may be replaced when dependencies are built.
