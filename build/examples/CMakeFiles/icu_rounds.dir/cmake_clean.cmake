file(REMOVE_RECURSE
  "CMakeFiles/icu_rounds.dir/icu_rounds.cpp.o"
  "CMakeFiles/icu_rounds.dir/icu_rounds.cpp.o.d"
  "icu_rounds"
  "icu_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icu_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
