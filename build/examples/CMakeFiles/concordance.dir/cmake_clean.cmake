file(REMOVE_RECURSE
  "CMakeFiles/concordance.dir/concordance.cpp.o"
  "CMakeFiles/concordance.dir/concordance.cpp.o.d"
  "concordance"
  "concordance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concordance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
