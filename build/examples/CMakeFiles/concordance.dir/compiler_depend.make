# Empty compiler generated dependencies file for concordance.
# This may be replaced when dependencies are built.
