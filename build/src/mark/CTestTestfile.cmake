# CMake generated Testfile for 
# Source directory: /root/repo/src/mark
# Build directory: /root/repo/build/src/mark
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
