# Empty compiler generated dependencies file for slim_mark.
# This may be replaced when dependencies are built.
