file(REMOVE_RECURSE
  "CMakeFiles/slim_mark.dir/mark.cc.o"
  "CMakeFiles/slim_mark.dir/mark.cc.o.d"
  "CMakeFiles/slim_mark.dir/mark_manager.cc.o"
  "CMakeFiles/slim_mark.dir/mark_manager.cc.o.d"
  "CMakeFiles/slim_mark.dir/modules.cc.o"
  "CMakeFiles/slim_mark.dir/modules.cc.o.d"
  "CMakeFiles/slim_mark.dir/validator.cc.o"
  "CMakeFiles/slim_mark.dir/validator.cc.o.d"
  "libslim_mark.a"
  "libslim_mark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_mark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
