
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mark/mark.cc" "src/mark/CMakeFiles/slim_mark.dir/mark.cc.o" "gcc" "src/mark/CMakeFiles/slim_mark.dir/mark.cc.o.d"
  "/root/repo/src/mark/mark_manager.cc" "src/mark/CMakeFiles/slim_mark.dir/mark_manager.cc.o" "gcc" "src/mark/CMakeFiles/slim_mark.dir/mark_manager.cc.o.d"
  "/root/repo/src/mark/modules.cc" "src/mark/CMakeFiles/slim_mark.dir/modules.cc.o" "gcc" "src/mark/CMakeFiles/slim_mark.dir/modules.cc.o.d"
  "/root/repo/src/mark/validator.cc" "src/mark/CMakeFiles/slim_mark.dir/validator.cc.o" "gcc" "src/mark/CMakeFiles/slim_mark.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseapp/CMakeFiles/slim_baseapp.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
