file(REMOVE_RECURSE
  "libslim_mark.a"
)
