# Empty compiler generated dependencies file for slim_store.
# This may be replaced when dependencies are built.
