file(REMOVE_RECURSE
  "libslim_store.a"
)
