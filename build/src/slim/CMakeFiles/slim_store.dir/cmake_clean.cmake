file(REMOVE_RECURSE
  "CMakeFiles/slim_store.dir/conformance.cc.o"
  "CMakeFiles/slim_store.dir/conformance.cc.o.d"
  "CMakeFiles/slim_store.dir/instance.cc.o"
  "CMakeFiles/slim_store.dir/instance.cc.o.d"
  "CMakeFiles/slim_store.dir/mapping.cc.o"
  "CMakeFiles/slim_store.dir/mapping.cc.o.d"
  "CMakeFiles/slim_store.dir/model.cc.o"
  "CMakeFiles/slim_store.dir/model.cc.o.d"
  "CMakeFiles/slim_store.dir/query.cc.o"
  "CMakeFiles/slim_store.dir/query.cc.o.d"
  "CMakeFiles/slim_store.dir/schema.cc.o"
  "CMakeFiles/slim_store.dir/schema.cc.o.d"
  "CMakeFiles/slim_store.dir/topic_map.cc.o"
  "CMakeFiles/slim_store.dir/topic_map.cc.o.d"
  "libslim_store.a"
  "libslim_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
