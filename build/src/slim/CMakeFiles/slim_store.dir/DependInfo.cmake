
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slim/conformance.cc" "src/slim/CMakeFiles/slim_store.dir/conformance.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/conformance.cc.o.d"
  "/root/repo/src/slim/instance.cc" "src/slim/CMakeFiles/slim_store.dir/instance.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/instance.cc.o.d"
  "/root/repo/src/slim/mapping.cc" "src/slim/CMakeFiles/slim_store.dir/mapping.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/mapping.cc.o.d"
  "/root/repo/src/slim/model.cc" "src/slim/CMakeFiles/slim_store.dir/model.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/model.cc.o.d"
  "/root/repo/src/slim/query.cc" "src/slim/CMakeFiles/slim_store.dir/query.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/query.cc.o.d"
  "/root/repo/src/slim/schema.cc" "src/slim/CMakeFiles/slim_store.dir/schema.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/schema.cc.o.d"
  "/root/repo/src/slim/topic_map.cc" "src/slim/CMakeFiles/slim_store.dir/topic_map.cc.o" "gcc" "src/slim/CMakeFiles/slim_store.dir/topic_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trim/CMakeFiles/slim_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
