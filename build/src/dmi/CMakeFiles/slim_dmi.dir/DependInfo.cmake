
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmi/dynamic_dmi.cc" "src/dmi/CMakeFiles/slim_dmi.dir/dynamic_dmi.cc.o" "gcc" "src/dmi/CMakeFiles/slim_dmi.dir/dynamic_dmi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slim/CMakeFiles/slim_store.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/slim_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
