file(REMOVE_RECURSE
  "libslim_dmi.a"
)
