# Empty compiler generated dependencies file for slim_dmi.
# This may be replaced when dependencies are built.
