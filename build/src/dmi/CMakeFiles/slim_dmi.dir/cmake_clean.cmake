file(REMOVE_RECURSE
  "CMakeFiles/slim_dmi.dir/dynamic_dmi.cc.o"
  "CMakeFiles/slim_dmi.dir/dynamic_dmi.cc.o.d"
  "libslim_dmi.a"
  "libslim_dmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_dmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
