file(REMOVE_RECURSE
  "libslim_workload.a"
)
