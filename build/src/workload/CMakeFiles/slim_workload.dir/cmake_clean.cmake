file(REMOVE_RECURSE
  "CMakeFiles/slim_workload.dir/corpus.cc.o"
  "CMakeFiles/slim_workload.dir/corpus.cc.o.d"
  "CMakeFiles/slim_workload.dir/icu.cc.o"
  "CMakeFiles/slim_workload.dir/icu.cc.o.d"
  "CMakeFiles/slim_workload.dir/session.cc.o"
  "CMakeFiles/slim_workload.dir/session.cc.o.d"
  "libslim_workload.a"
  "libslim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
