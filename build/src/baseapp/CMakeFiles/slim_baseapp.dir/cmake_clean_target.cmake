file(REMOVE_RECURSE
  "libslim_baseapp.a"
)
