# Empty compiler generated dependencies file for slim_baseapp.
# This may be replaced when dependencies are built.
