file(REMOVE_RECURSE
  "CMakeFiles/slim_baseapp.dir/base_application.cc.o"
  "CMakeFiles/slim_baseapp.dir/base_application.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/html_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/html_app.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/pdf_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/pdf_app.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/slide_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/slide_app.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/spreadsheet_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/spreadsheet_app.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/text_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/text_app.cc.o.d"
  "CMakeFiles/slim_baseapp.dir/xml_app.cc.o"
  "CMakeFiles/slim_baseapp.dir/xml_app.cc.o.d"
  "libslim_baseapp.a"
  "libslim_baseapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_baseapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
