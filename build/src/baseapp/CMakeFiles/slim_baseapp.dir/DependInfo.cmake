
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseapp/base_application.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/base_application.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/base_application.cc.o.d"
  "/root/repo/src/baseapp/html_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/html_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/html_app.cc.o.d"
  "/root/repo/src/baseapp/pdf_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/pdf_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/pdf_app.cc.o.d"
  "/root/repo/src/baseapp/slide_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/slide_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/slide_app.cc.o.d"
  "/root/repo/src/baseapp/spreadsheet_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/spreadsheet_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/spreadsheet_app.cc.o.d"
  "/root/repo/src/baseapp/text_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/text_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/text_app.cc.o.d"
  "/root/repo/src/baseapp/xml_app.cc" "src/baseapp/CMakeFiles/slim_baseapp.dir/xml_app.cc.o" "gcc" "src/baseapp/CMakeFiles/slim_baseapp.dir/xml_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
