file(REMOVE_RECURSE
  "libslim_trim.a"
)
