file(REMOVE_RECURSE
  "CMakeFiles/slim_trim.dir/interned_store.cc.o"
  "CMakeFiles/slim_trim.dir/interned_store.cc.o.d"
  "CMakeFiles/slim_trim.dir/persistence.cc.o"
  "CMakeFiles/slim_trim.dir/persistence.cc.o.d"
  "CMakeFiles/slim_trim.dir/rdf_xml.cc.o"
  "CMakeFiles/slim_trim.dir/rdf_xml.cc.o.d"
  "CMakeFiles/slim_trim.dir/triple_store.cc.o"
  "CMakeFiles/slim_trim.dir/triple_store.cc.o.d"
  "libslim_trim.a"
  "libslim_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
