# Empty dependencies file for slim_trim.
# This may be replaced when dependencies are built.
