
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trim/interned_store.cc" "src/trim/CMakeFiles/slim_trim.dir/interned_store.cc.o" "gcc" "src/trim/CMakeFiles/slim_trim.dir/interned_store.cc.o.d"
  "/root/repo/src/trim/persistence.cc" "src/trim/CMakeFiles/slim_trim.dir/persistence.cc.o" "gcc" "src/trim/CMakeFiles/slim_trim.dir/persistence.cc.o.d"
  "/root/repo/src/trim/rdf_xml.cc" "src/trim/CMakeFiles/slim_trim.dir/rdf_xml.cc.o" "gcc" "src/trim/CMakeFiles/slim_trim.dir/rdf_xml.cc.o.d"
  "/root/repo/src/trim/triple_store.cc" "src/trim/CMakeFiles/slim_trim.dir/triple_store.cc.o" "gcc" "src/trim/CMakeFiles/slim_trim.dir/triple_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
