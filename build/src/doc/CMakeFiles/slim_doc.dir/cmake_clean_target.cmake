file(REMOVE_RECURSE
  "libslim_doc.a"
)
