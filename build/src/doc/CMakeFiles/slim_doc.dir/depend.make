# Empty dependencies file for slim_doc.
# This may be replaced when dependencies are built.
