
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/html/html.cc" "src/doc/CMakeFiles/slim_doc.dir/html/html.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/html/html.cc.o.d"
  "/root/repo/src/doc/pdf/pdf_document.cc" "src/doc/CMakeFiles/slim_doc.dir/pdf/pdf_document.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/pdf/pdf_document.cc.o.d"
  "/root/repo/src/doc/slides/slide_deck.cc" "src/doc/CMakeFiles/slim_doc.dir/slides/slide_deck.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/slides/slide_deck.cc.o.d"
  "/root/repo/src/doc/spreadsheet/a1.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/a1.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/a1.cc.o.d"
  "/root/repo/src/doc/spreadsheet/cell.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/cell.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/cell.cc.o.d"
  "/root/repo/src/doc/spreadsheet/csv.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/csv.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/csv.cc.o.d"
  "/root/repo/src/doc/spreadsheet/formula.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/formula.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/formula.cc.o.d"
  "/root/repo/src/doc/spreadsheet/workbook.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/workbook.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/workbook.cc.o.d"
  "/root/repo/src/doc/spreadsheet/worksheet.cc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/worksheet.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/spreadsheet/worksheet.cc.o.d"
  "/root/repo/src/doc/text/text_document.cc" "src/doc/CMakeFiles/slim_doc.dir/text/text_document.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/text/text_document.cc.o.d"
  "/root/repo/src/doc/xml/dom.cc" "src/doc/CMakeFiles/slim_doc.dir/xml/dom.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/xml/dom.cc.o.d"
  "/root/repo/src/doc/xml/parser.cc" "src/doc/CMakeFiles/slim_doc.dir/xml/parser.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/xml/parser.cc.o.d"
  "/root/repo/src/doc/xml/path.cc" "src/doc/CMakeFiles/slim_doc.dir/xml/path.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/xml/path.cc.o.d"
  "/root/repo/src/doc/xml/writer.cc" "src/doc/CMakeFiles/slim_doc.dir/xml/writer.cc.o" "gcc" "src/doc/CMakeFiles/slim_doc.dir/xml/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
