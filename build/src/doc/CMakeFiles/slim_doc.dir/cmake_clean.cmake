file(REMOVE_RECURSE
  "CMakeFiles/slim_doc.dir/html/html.cc.o"
  "CMakeFiles/slim_doc.dir/html/html.cc.o.d"
  "CMakeFiles/slim_doc.dir/pdf/pdf_document.cc.o"
  "CMakeFiles/slim_doc.dir/pdf/pdf_document.cc.o.d"
  "CMakeFiles/slim_doc.dir/slides/slide_deck.cc.o"
  "CMakeFiles/slim_doc.dir/slides/slide_deck.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/a1.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/a1.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/cell.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/cell.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/csv.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/csv.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/formula.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/formula.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/workbook.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/workbook.cc.o.d"
  "CMakeFiles/slim_doc.dir/spreadsheet/worksheet.cc.o"
  "CMakeFiles/slim_doc.dir/spreadsheet/worksheet.cc.o.d"
  "CMakeFiles/slim_doc.dir/text/text_document.cc.o"
  "CMakeFiles/slim_doc.dir/text/text_document.cc.o.d"
  "CMakeFiles/slim_doc.dir/xml/dom.cc.o"
  "CMakeFiles/slim_doc.dir/xml/dom.cc.o.d"
  "CMakeFiles/slim_doc.dir/xml/parser.cc.o"
  "CMakeFiles/slim_doc.dir/xml/parser.cc.o.d"
  "CMakeFiles/slim_doc.dir/xml/path.cc.o"
  "CMakeFiles/slim_doc.dir/xml/path.cc.o.d"
  "CMakeFiles/slim_doc.dir/xml/writer.cc.o"
  "CMakeFiles/slim_doc.dir/xml/writer.cc.o.d"
  "libslim_doc.a"
  "libslim_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
