# Empty compiler generated dependencies file for slim_pad.
# This may be replaced when dependencies are built.
