file(REMOVE_RECURSE
  "CMakeFiles/slim_pad.dir/slimpad_app.cc.o"
  "CMakeFiles/slim_pad.dir/slimpad_app.cc.o.d"
  "CMakeFiles/slim_pad.dir/slimpad_dmi.cc.o"
  "CMakeFiles/slim_pad.dir/slimpad_dmi.cc.o.d"
  "libslim_pad.a"
  "libslim_pad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_pad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
