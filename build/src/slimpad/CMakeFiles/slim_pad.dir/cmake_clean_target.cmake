file(REMOVE_RECURSE
  "libslim_pad.a"
)
