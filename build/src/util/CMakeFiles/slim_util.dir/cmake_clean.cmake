file(REMOVE_RECURSE
  "CMakeFiles/slim_util.dir/id_generator.cc.o"
  "CMakeFiles/slim_util.dir/id_generator.cc.o.d"
  "CMakeFiles/slim_util.dir/status.cc.o"
  "CMakeFiles/slim_util.dir/status.cc.o.d"
  "CMakeFiles/slim_util.dir/strings.cc.o"
  "CMakeFiles/slim_util.dir/strings.cc.o.d"
  "libslim_util.a"
  "libslim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
