# Empty dependencies file for bench_trim_store.
# This may be replaced when dependencies are built.
