file(REMOVE_RECURSE
  "CMakeFiles/bench_trim_store.dir/bench_trim_store.cc.o"
  "CMakeFiles/bench_trim_store.dir/bench_trim_store.cc.o.d"
  "bench_trim_store"
  "bench_trim_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trim_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
