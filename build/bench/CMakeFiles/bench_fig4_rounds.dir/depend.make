# Empty dependencies file for bench_fig4_rounds.
# This may be replaced when dependencies are built.
