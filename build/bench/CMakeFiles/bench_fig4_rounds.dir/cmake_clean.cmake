file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rounds.dir/bench_fig4_rounds.cc.o"
  "CMakeFiles/bench_fig4_rounds.dir/bench_fig4_rounds.cc.o.d"
  "bench_fig4_rounds"
  "bench_fig4_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
