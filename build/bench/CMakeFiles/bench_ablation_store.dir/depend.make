# Empty dependencies file for bench_ablation_store.
# This may be replaced when dependencies are built.
