# Empty compiler generated dependencies file for bench_base_addressing.
# This may be replaced when dependencies are built.
