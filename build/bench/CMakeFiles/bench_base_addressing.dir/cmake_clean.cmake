file(REMOVE_RECURSE
  "CMakeFiles/bench_base_addressing.dir/bench_base_addressing.cc.o"
  "CMakeFiles/bench_base_addressing.dir/bench_base_addressing.cc.o.d"
  "bench_base_addressing"
  "bench_base_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_base_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
