file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_persistence.dir/bench_fig10_persistence.cc.o"
  "CMakeFiles/bench_fig10_persistence.dir/bench_fig10_persistence.cc.o.d"
  "bench_fig10_persistence"
  "bench_fig10_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
