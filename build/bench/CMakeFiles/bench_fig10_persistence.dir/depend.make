# Empty dependencies file for bench_fig10_persistence.
# This may be replaced when dependencies are built.
