file(REMOVE_RECURSE
  "CMakeFiles/bench_lightweight.dir/bench_lightweight.cc.o"
  "CMakeFiles/bench_lightweight.dir/bench_lightweight.cc.o.d"
  "bench_lightweight"
  "bench_lightweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lightweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
