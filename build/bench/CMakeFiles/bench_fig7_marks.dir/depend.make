# Empty dependencies file for bench_fig7_marks.
# This may be replaced when dependencies are built.
