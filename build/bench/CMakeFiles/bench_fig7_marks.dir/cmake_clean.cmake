file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_marks.dir/bench_fig7_marks.cc.o"
  "CMakeFiles/bench_fig7_marks.dir/bench_fig7_marks.cc.o.d"
  "bench_fig7_marks"
  "bench_fig7_marks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
