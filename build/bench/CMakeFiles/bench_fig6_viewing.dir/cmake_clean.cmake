file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_viewing.dir/bench_fig6_viewing.cc.o"
  "CMakeFiles/bench_fig6_viewing.dir/bench_fig6_viewing.cc.o.d"
  "bench_fig6_viewing"
  "bench_fig6_viewing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_viewing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
