
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_query.cc" "bench/CMakeFiles/bench_query.dir/bench_query.cc.o" "gcc" "bench/CMakeFiles/bench_query.dir/bench_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/slim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/slimpad/CMakeFiles/slim_pad.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/slim_dmi.dir/DependInfo.cmake"
  "/root/repo/build/src/slim/CMakeFiles/slim_store.dir/DependInfo.cmake"
  "/root/repo/build/src/mark/CMakeFiles/slim_mark.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/slim_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseapp/CMakeFiles/slim_baseapp.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/slim_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
