#include "report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

namespace slim::tools {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for slim-bench-v1 documents. Kept local
// to the tool: the production tree has emitters only, and keeping the
// reader here means a serializer bug cannot hide behind a forgiving shared
// parser.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (i_ != text_.size()) return Fail("trailing characters after document");
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_->empty()) {
      *error_ = "json: " + why + " (near offset " + std::to_string(i_) + ")";
    }
    return false;
  }

  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (i_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[i_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  bool ParseLiteral(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(i_, len, word) != 0) {
      return Fail(std::string("expected '") + word + "'");
    }
    i_ += len;
    return true;
  }

  bool ParseBool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_[i_] == 't') {
      out->boolean = true;
      return ParseLiteral("true");
    }
    out->boolean = false;
    return ParseLiteral("false");
  }

  bool ParseNull(JsonValue* out) {
    out->kind = JsonValue::Kind::kNull;
    return ParseLiteral("null");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = i_;
    if (i_ < text_.size() && (text_[i_] == '-' || text_[i_] == '+')) ++i_;
    while (i_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[i_])) ||
            text_[i_] == '.' || text_[i_] == 'e' || text_[i_] == 'E' ||
            text_[i_] == '-' || text_[i_] == '+')) {
      ++i_;
    }
    if (i_ == start) return Fail("expected a value");
    try {
      out->number = std::stod(text_.substr(start, i_ - start));
    } catch (...) {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[i_] != '"') return Fail("expected '\"'");
    ++i_;
    out->clear();
    while (i_ < text_.size()) {
      char c = text_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= text_.size()) break;
        char esc = text_[i_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (i_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // The emitter only writes \u00XX control escapes.
            out->push_back(static_cast<char>(code & 0xff));
            break;
          }
          default: return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++i_;  // '['
    SkipSpace();
    if (i_ < text_.size() && text_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (i_ >= text_.size()) return Fail("unterminated array");
      if (text_[i_] == ',') {
        ++i_;
        continue;
      }
      if (text_[i_] == ']') {
        ++i_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++i_;  // '{'
    SkipSpace();
    if (i_ < text_.size() && text_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (i_ >= text_.size() || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (i_ >= text_.size() || text_[i_] != ':') return Fail("expected ':'");
      ++i_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (i_ >= text_.size()) return Fail("unterminated object");
      if (text_[i_] == ',') {
        ++i_;
        continue;
      }
      if (text_[i_] == '}') {
        ++i_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t i_ = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : fallback;
}

}  // namespace

bool ParseBenchJson(const std::string& text, BenchFile* out,
                    std::string* error) {
  error->clear();
  JsonValue root;
  JsonParser parser(text, error);
  if (!parser.Parse(&root)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "top-level value is not an object";
    return false;
  }
  out->schema = StringOr(root.Find("schema"), "");
  if (out->schema != "slim-bench-v1") {
    *error = "unsupported schema '" + out->schema + "'";
    return false;
  }
  out->bench = StringOr(root.Find("bench"), "");
  out->git_sha = StringOr(root.Find("git_sha"), "unknown");
  out->build_flags = StringOr(root.Find("build_flags"), "");
  const JsonValue* obs = root.Find("obs_enabled");
  out->obs_enabled =
      obs != nullptr && obs->kind == JsonValue::Kind::kBool && obs->boolean;
  out->benchmarks.clear();
  const JsonValue* benches = root.Find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::kArray) {
    *error = "missing 'benchmarks' array";
    return false;
  }
  for (const JsonValue& b : benches->array) {
    if (b.kind != JsonValue::Kind::kObject) {
      *error = "benchmark entry is not an object";
      return false;
    }
    BenchmarkResult result;
    result.name = StringOr(b.Find("name"), "");
    if (result.name.empty()) {
      *error = "benchmark entry without a name";
      return false;
    }
    result.time_unit = StringOr(b.Find("time_unit"), "ns");
    result.iterations = static_cast<uint64_t>(NumberOr(b.Find("iterations"), 0));
    result.repetitions =
        static_cast<uint64_t>(NumberOr(b.Find("repetitions"), 0));
    result.real_p50 = NumberOr(b.Find("real_p50"), 0);
    result.real_p95 = NumberOr(b.Find("real_p95"), 0);
    result.cpu_p50 = NumberOr(b.Find("cpu_p50"), 0);
    result.cpu_p95 = NumberOr(b.Find("cpu_p95"), 0);
    if (const JsonValue* counters = b.Find("counters");
        counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
      for (const auto& [key, value] : counters->object) {
        result.counters.emplace_back(key, NumberOr(&value, 0));
      }
    }
    out->benchmarks.push_back(std::move(result));
  }
  out->rusage = BenchRusageInfo{};
  if (const JsonValue* usage = root.Find("rusage");
      usage != nullptr && usage->kind == JsonValue::Kind::kObject) {
    out->rusage.present = true;
    out->rusage.max_rss_kb =
        static_cast<uint64_t>(NumberOr(usage->Find("max_rss_kb"), 0));
    out->rusage.user_cpu_us =
        static_cast<uint64_t>(NumberOr(usage->Find("user_cpu_us"), 0));
    out->rusage.sys_cpu_us =
        static_cast<uint64_t>(NumberOr(usage->Find("sys_cpu_us"), 0));
  }
  return true;
}

bool LoadBenchJson(const std::string& path, BenchFile* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!ParseBenchJson(text.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

DiffReport DiffBenchFiles(const BenchFile& older, const BenchFile& newer,
                          double threshold_pct) {
  DiffReport report;
  report.threshold_pct = threshold_pct;
  report.comparable = older.obs_enabled == newer.obs_enabled;
  report.provenance = older.git_sha + " -> " + newer.git_sha;
  report.old_rusage = older.rusage;
  report.new_rusage = newer.rusage;
  std::map<std::string, const BenchmarkResult*> old_by_name;
  for (const BenchmarkResult& b : older.benchmarks) old_by_name[b.name] = &b;
  std::map<std::string, bool> seen;
  for (const BenchmarkResult& b : newer.benchmarks) {
    DiffRow row;
    row.name = b.name;
    row.new_p50 = b.real_p50;
    row.new_p95 = b.real_p95;
    auto it = old_by_name.find(b.name);
    if (it == old_by_name.end()) {
      row.only_in_new = true;
    } else {
      seen[b.name] = true;
      row.old_p50 = it->second->real_p50;
      row.old_p95 = it->second->real_p95;
      row.old_cpu_p50 = it->second->cpu_p50;
      row.new_cpu_p50 = b.cpu_p50;
      if (row.old_p50 > 0) {
        row.delta_pct = (row.new_p50 - row.old_p50) / row.old_p50 * 100.0;
        row.regression = row.delta_pct > threshold_pct;
      }
      // CPU-time drift rides along for the eye; only real_p50 gates.
      if (row.old_cpu_p50 > 0) {
        row.cpu_delta_pct =
            (row.new_cpu_p50 - row.old_cpu_p50) / row.old_cpu_p50 * 100.0;
      }
      if (row.regression) ++report.regressions;
    }
    report.rows.push_back(std::move(row));
  }
  for (const BenchmarkResult& b : older.benchmarks) {
    if (seen.count(b.name)) continue;
    DiffRow row;
    row.name = b.name;
    row.only_in_old = true;
    row.old_p50 = b.real_p50;
    row.old_p95 = b.real_p95;
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string FormatDiff(const DiffReport& report) {
  std::ostringstream out;
  out << "bench_report: " << report.provenance << ", threshold "
      << report.threshold_pct << "% on real_p50\n";
  if (!report.comparable) {
    out << "WARNING: obs_enabled differs between the two files — counters "
           "and timings are not apples-to-apples\n";
  }
  char line[256];
  for (const DiffRow& row : report.rows) {
    if (row.only_in_new) {
      std::snprintf(line, sizeof(line), "  NEW      %-48s p50 %.3f\n",
                    row.name.c_str(), row.new_p50);
    } else if (row.only_in_old) {
      std::snprintf(line, sizeof(line), "  GONE     %-48s p50 %.3f\n",
                    row.name.c_str(), row.old_p50);
    } else if (row.old_cpu_p50 > 0) {
      std::snprintf(line, sizeof(line),
                    "  %-8s %-48s p50 %.3f -> %.3f (%+.1f%%)  cpu %+.1f%%\n",
                    row.regression ? "REGRESS" : "ok", row.name.c_str(),
                    row.old_p50, row.new_p50, row.delta_pct,
                    row.cpu_delta_pct);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-8s %-48s p50 %.3f -> %.3f (%+.1f%%)\n",
                    row.regression ? "REGRESS" : "ok", row.name.c_str(),
                    row.old_p50, row.new_p50, row.delta_pct);
    }
    out << line;
  }
  if (report.old_rusage.present && report.new_rusage.present) {
    const BenchRusageInfo& o = report.old_rusage;
    const BenchRusageInfo& n = report.new_rusage;
    char usage_line[256];
    std::snprintf(usage_line, sizeof(usage_line),
                  "rusage: max_rss %llu -> %llu KiB, user_cpu %llu -> %llu "
                  "us, sys_cpu %llu -> %llu us (informational)\n",
                  static_cast<unsigned long long>(o.max_rss_kb),
                  static_cast<unsigned long long>(n.max_rss_kb),
                  static_cast<unsigned long long>(o.user_cpu_us),
                  static_cast<unsigned long long>(n.user_cpu_us),
                  static_cast<unsigned long long>(o.sys_cpu_us),
                  static_cast<unsigned long long>(n.sys_cpu_us));
    out << usage_line;
  }
  out << (report.regressions == 0
              ? "no regressions."
              : std::to_string(report.regressions) + " regression(s).")
      << "\n";
  return out.str();
}

int DiffExitCode(const DiffReport& report, bool gating) {
  return gating && report.regressions > 0 ? 1 : 0;
}

}  // namespace slim::tools
