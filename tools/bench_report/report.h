#ifndef SLIM_TOOLS_BENCH_REPORT_REPORT_H_
#define SLIM_TOOLS_BENCH_REPORT_REPORT_H_

// bench_report — diffs two slim-bench-v1 JSON telemetry files (written by
// the SLIM_BENCH_MAIN reporter, see bench/bench_json.h) and flags
// regressions past a threshold.
//
// The logic lives in this library so tests/bench_report_test.cc can drive
// the parser and the diff directly; main.cc is the CLI used by CI:
//
//   bench_report old.json new.json --threshold 10
//
// exits 0 when no benchmark's real_p50 regressed by more than 10%, 1 when
// one did (suppressed by --report-only), 2 on unreadable input.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slim::tools {

struct BenchmarkResult {
  std::string name;
  std::string time_unit;
  uint64_t iterations = 0;
  uint64_t repetitions = 0;
  double real_p50 = 0;
  double real_p95 = 0;
  double cpu_p50 = 0;
  double cpu_p95 = 0;
  std::vector<std::pair<std::string, double>> counters;
};

// Optional whole-process resource usage (additive slim-bench-v1 field;
// absent on files written before it existed, so `present` gates use).
struct BenchRusageInfo {
  bool present = false;
  uint64_t max_rss_kb = 0;
  uint64_t user_cpu_us = 0;
  uint64_t sys_cpu_us = 0;
};

struct BenchFile {
  std::string schema;
  std::string bench;
  std::string git_sha;
  std::string build_flags;
  bool obs_enabled = false;
  std::vector<BenchmarkResult> benchmarks;
  BenchRusageInfo rusage;
};

// Parses a slim-bench-v1 document. Returns false (and sets *error) on
// malformed JSON or a schema this tool does not understand.
bool ParseBenchJson(const std::string& text, BenchFile* out,
                    std::string* error);

// Reads and parses `path`; false + *error when unreadable or malformed.
bool LoadBenchJson(const std::string& path, BenchFile* out,
                   std::string* error);

struct DiffRow {
  std::string name;
  bool only_in_old = false;  // benchmark disappeared
  bool only_in_new = false;  // benchmark appeared
  double old_p50 = 0;
  double new_p50 = 0;
  double old_p95 = 0;
  double new_p95 = 0;
  double delta_pct = 0;  // (new_p50 - old_p50) / old_p50 * 100
  double old_cpu_p50 = 0;
  double new_cpu_p50 = 0;
  double cpu_delta_pct = 0;  // informational; never gates
  bool regression = false;
};

struct DiffReport {
  std::vector<DiffRow> rows;
  int regressions = 0;
  double threshold_pct = 0;
  bool comparable = true;    // false when obs_enabled differs between files
  std::string provenance;    // "abc123 -> def456" style header material
  // Whole-process rusage from each side, when the files carry it.
  BenchRusageInfo old_rusage;
  BenchRusageInfo new_rusage;
};

// Compares matching benchmark families by real_p50. A row regresses when
// new_p50 exceeds old_p50 by more than `threshold_pct` percent. Families
// present in only one file are reported but never count as regressions.
DiffReport DiffBenchFiles(const BenchFile& older, const BenchFile& newer,
                          double threshold_pct);

// Human-readable table of the diff.
std::string FormatDiff(const DiffReport& report);

// Exit status the CLI should use: 0 clean, 1 when the diff holds
// regressions and `gating` is set.
int DiffExitCode(const DiffReport& report, bool gating);

}  // namespace slim::tools

#endif  // SLIM_TOOLS_BENCH_REPORT_REPORT_H_
