// CLI for the bench-telemetry diff (see report.h). CI usage:
//
//   bench_report BENCH_old.json BENCH_new.json --threshold 10
//   bench_report old.json new.json --report-only     # never gates

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_report <old.json> <new.json> "
               "[--threshold <pct>] [--report-only]\n"
               "  exits 0 when no benchmark regressed past the threshold\n"
               "  exits 1 on regression (unless --report-only)\n"
               "  exits 2 on unreadable input\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path;
  double threshold = 10.0;
  bool gating = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      gating = false;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (old_path.empty()) {
      old_path = argv[i];
    } else if (new_path.empty()) {
      new_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (old_path.empty() || new_path.empty()) return Usage();

  slim::tools::BenchFile older, newer;
  std::string error;
  if (!slim::tools::LoadBenchJson(old_path, &older, &error) ||
      !slim::tools::LoadBenchJson(new_path, &newer, &error)) {
    std::fprintf(stderr, "bench_report: %s\n", error.c_str());
    return 2;
  }
  slim::tools::DiffReport report =
      slim::tools::DiffBenchFiles(older, newer, threshold);
  std::fputs(slim::tools::FormatDiff(report).c_str(), stdout);
  return slim::tools::DiffExitCode(report, gating);
}
