#include "flow.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace slim::lint {

const char* TokKindName(TokKind kind) {
  switch (kind) {
#define TOKEN_KIND(name, spelling) \
  case TokKind::name:              \
    return spelling;
    SLIM_LINT_TOKEN_KINDS(TOKEN_KIND)
#undef TOKEN_KIND
  }
  return "<?>";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first (maximal munch). '>' is
/// deliberately never merged into ">>"/">="/">>=": template argument lists
/// close with '>' tokens and the scanner counts them, while a shift or
/// comparison read as two tokens is harmless. '<' *is* merged into
/// "<<"/"<=" so stream inserts and comparisons never look like template
/// openings.
struct PunctEntry {
  const char* spelling;
  TokKind kind;
};

constexpr PunctEntry kPuncts[] = {
    {"<<=", TokKind::kPunct}, {"<=>", TokKind::kPunct},
    {"...", TokKind::kPunct}, {"->*", TokKind::kPunct},
    {"::", TokKind::kScope},  {"->", TokKind::kArrow},
    {"<<", TokKind::kPunct},  {"<=", TokKind::kPunct},
    {"&&", TokKind::kPunct},  {"||", TokKind::kPunct},
    {"==", TokKind::kPunct},  {"!=", TokKind::kPunct},
    {"+=", TokKind::kPunct},  {"-=", TokKind::kPunct},
    {"*=", TokKind::kPunct},  {"/=", TokKind::kPunct},
    {"%=", TokKind::kPunct},  {"^=", TokKind::kPunct},
    {"|=", TokKind::kPunct},  {"&=", TokKind::kPunct},
    {"++", TokKind::kPunct},  {"--", TokKind::kPunct},
    {".*", TokKind::kPunct},
};

TokKind SingleCharKind(char c) {
  switch (c) {
    case '.':
      return TokKind::kDot;
    case ',':
      return TokKind::kComma;
    case ';':
      return TokKind::kSemi;
    case ':':
      return TokKind::kColon;
    case '(':
      return TokKind::kLParen;
    case ')':
      return TokKind::kRParen;
    case '{':
      return TokKind::kLBrace;
    case '}':
      return TokKind::kRBrace;
    case '[':
      return TokKind::kLBracket;
    case ']':
      return TokKind::kRBracket;
    case '<':
      return TokKind::kLess;
    case '>':
      return TokKind::kGreater;
    case '&':
      return TokKind::kAmp;
    case '*':
      return TokKind::kStar;
    case '=':
      return TokKind::kAssign;
    default:
      return TokKind::kPunct;
  }
}

}  // namespace

std::vector<Token> Tokenize(std::string_view src) {
  std::vector<Token> out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace since the last newline

  auto advance_lines = [&src, &line](size_t from, size_t to) {
    for (size_t k = from; k < to && k < src.size(); ++k) {
      if (src[k] == '\n') ++line;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t eol = src.find('\n', i);
      i = eol == std::string_view::npos ? n : eol;  // newline handled above
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      size_t stop = end == std::string_view::npos ? n : end + 2;
      advance_lines(i, stop);
      i = stop;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Whole directive — including backslash-continued lines — as one
      // token, so a macro *definition* is never mistaken for code.
      size_t j = i;
      while (j < n) {
        size_t eol = src.find('\n', j);
        if (eol == std::string_view::npos) {
          j = n;
          break;
        }
        if (eol > j && src[eol - 1] == '\\') {
          j = eol + 1;
        } else {
          j = eol;
          break;
        }
      }
      out.push_back({TokKind::kDirective, src.substr(i, j - i), line});
      advance_lines(i, j);
      i = j;
      continue;
    }
    at_line_start = false;
    const int tok_line = line;
    if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n) {
        if (src[j] == '\\') {
          j += 2;
        } else if (src[j] == c) {
          ++j;
          break;
        } else {
          ++j;
        }
      }
      j = std::min(j, n);
      out.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                     src.substr(i, j - i), tok_line});
      advance_lines(i, j);
      i = j;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      std::string_view id = src.substr(i, j - i);
      if (j < n && src[j] == '"' &&
          (id == "R" || id == "u8R" || id == "uR" || id == "LR")) {
        // Raw string literal: R"delim( ... )delim".
        size_t lp = src.find('(', j + 1);
        if (lp != std::string_view::npos) {
          std::string closer =
              ")" + std::string(src.substr(j + 1, lp - j - 1)) + "\"";
          size_t end = src.find(closer, lp + 1);
          size_t stop =
              end == std::string_view::npos ? n : end + closer.size();
          out.push_back({TokKind::kString, src.substr(i, stop - i), tok_line});
          advance_lines(i, stop);
          i = stop;
          continue;
        }
      }
      out.push_back({TokKind::kIdent, id, tok_line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t j = i + 1;
      while (j < n) {
        char d = src[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back({TokKind::kNumber, src.substr(i, j - i), tok_line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const PunctEntry& p : kPuncts) {
      size_t len = std::strlen(p.spelling);
      if (src.compare(i, len, p.spelling) == 0) {
        out.push_back({p.kind, src.substr(i, len), tok_line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({SingleCharKind(c), src.substr(i, 1), tok_line});
    ++i;
  }
  out.push_back({TokKind::kEnd, {}, line});
  return out;
}

// ---------------------------------------------------------------------------
// Flow model extraction
// ---------------------------------------------------------------------------

namespace {

const char* const kMutexTypes[] = {"mutex", "recursive_mutex", "shared_mutex",
                                   "timed_mutex", "recursive_timed_mutex"};

bool IsStdMutexName(std::string_view id) {
  for (const char* m : kMutexTypes) {
    if (id == m) return true;
  }
  return false;
}

bool IsReadPathCallee(std::string_view id) {
  return id == "SelectEach" || id == "DistinctSubjects" ||
         id == "DistinctProperties" || id == "DistinctObjects" ||
         id == "FindNodeAt";
}

bool IsBlockingCallee(std::string_view id) {
  return id == "wait" || id == "wait_for" || id == "wait_until" ||
         id == "sleep_for" || id == "sleep_until" || id == "recv" ||
         id == "send" || id == "accept" || id == "connect" || id == "poll";
}

bool IsControlKeyword(std::string_view id) {
  return id == "if" || id == "for" || id == "while" || id == "switch" ||
         id == "return" || id == "sizeof" || id == "catch" ||
         id == "alignof" || id == "decltype" || id == "new" ||
         id == "delete" || id == "throw" || id == "co_return" ||
         id == "co_await" || id == "assert" || id == "defined";
}

/// Walks one file's token stream with a namespace/class/function scope
/// stack and fills in a FlowFile. The grammar subset is deliberately
/// shallow: it only needs to see member declarations, function signatures
/// (with REQUIRES clauses) and, inside bodies, lock/pin RAII declarations
/// and call sites.
class FlowParser {
 public:
  FlowParser(const std::string& path, std::string_view contents)
      : toks_(Tokenize(contents)) {
    file_.path = path;
    size_t start = 0;
    for (size_t i = 0; i <= contents.size(); ++i) {
      if (i == contents.size() || contents[i] == '\n') {
        lines_.emplace_back(contents.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  FlowFile Run() {
    ScanRawMutexes();
    ParseDeclSeq("");
    return std::move(file_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }

  const Token& Prev(size_t back) const {
    static const Token kNone{};
    return pos_ >= back ? toks_[pos_ - back] : kNone;
  }

  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool LineHasAllow(int line, const char* rule) const {
    if (line < 1 || static_cast<size_t>(line) > lines_.size()) return false;
    std::string needle = std::string("slim-lint: allow(") + rule + ")";
    if (lines_[line - 1].find(needle) != std::string::npos) return true;
    // A marker on a pure comment line suppresses the declaration directly
    // below it (for justifications too long to trail the declaration).
    // Restricting to comment-only lines keeps a trailing marker on the
    // previous declaration from bleeding onto this one.
    if (line < 2) return false;
    const std::string& prev = lines_[line - 2];
    size_t start = prev.find_first_not_of(" \t");
    if (start == std::string::npos || prev.compare(start, 2, "//") != 0) {
      return false;
    }
    return prev.find(needle) != std::string::npos;
  }

  /// Token-stream port of the legacy per-line regex
  ///   (^|[^:<\w])std::(recursive_|shared_|timed_|recursive_timed_)?mutex\s+\w
  /// — a raw std::mutex *declaration*: `std` not preceded by `<` (template
  /// argument) or `::` (qualified), followed by `::`, a mutex type name and
  /// a declared identifier. One finding per line, like the line scanner.
  void ScanRawMutexes() {
    int last_line = -1;
    for (size_t i = 0; i + 3 < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent || toks_[i].text != "std") continue;
      if (toks_[i + 1].kind != TokKind::kScope) continue;
      if (toks_[i + 2].kind != TokKind::kIdent ||
          !IsStdMutexName(toks_[i + 2].text)) {
        continue;
      }
      if (toks_[i + 3].kind != TokKind::kIdent) continue;
      if (i > 0 && (toks_[i - 1].kind == TokKind::kLess ||
                    toks_[i - 1].kind == TokKind::kScope)) {
        continue;
      }
      int line = toks_[i].line;
      if (line == last_line) continue;
      last_line = line;
      MutexDecl decl;
      decl.member = std::string(toks_[i + 3].text);
      decl.line = line;
      decl.raw = true;
      decl.suppressed = LineHasAllow(line, "raw-mutex");
      file_.mutexes.push_back(std::move(decl));
    }
  }

  // --- Declaration-sequence level (namespace or class body) ---------------

  void SkipBalanced(TokKind open, TokKind close) {
    int depth = 0;
    while (!AtEnd()) {
      TokKind k = Peek().kind;
      ++pos_;
      if (k == open) {
        ++depth;
      } else if (k == close) {
        if (--depth == 0) return;
      }
    }
  }

  void SkipToSemi() {
    int depth = 0;
    while (!AtEnd()) {
      TokKind k = Peek().kind;
      if (depth == 0 && k == TokKind::kSemi) {
        ++pos_;
        return;
      }
      if (k == TokKind::kLParen || k == TokKind::kLBrace ||
          k == TokKind::kLBracket) {
        ++depth;
      } else if (k == TokKind::kRParen || k == TokKind::kRBrace ||
                 k == TokKind::kRBracket) {
        if (depth == 0) return;  // stray closer: let the caller see it
        --depth;
      }
      ++pos_;
    }
  }

  /// Parses declarations until the matching '}' (left unconsumed) or EOF.
  /// `class_name` is "" at namespace scope.
  void ParseDeclSeq(const std::string& class_name) {
    const bool in_class = !class_name.empty();
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kRBrace) return;
      if (t.kind == TokKind::kDirective || t.kind == TokKind::kSemi) {
        ++pos_;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (t.text == "namespace") {
          ++pos_;
          while (!AtEnd() && Peek().kind != TokKind::kLBrace &&
                 Peek().kind != TokKind::kSemi) {
            ++pos_;
          }
          if (Peek().kind == TokKind::kLBrace) {
            ++pos_;
            ParseDeclSeq("");
            if (Peek().kind == TokKind::kRBrace) ++pos_;
          } else {
            ++pos_;
          }
          continue;
        }
        if (t.text == "enum") {
          while (!AtEnd() && Peek().kind != TokKind::kLBrace &&
                 Peek().kind != TokKind::kSemi) {
            ++pos_;
          }
          if (Peek().kind == TokKind::kLBrace) {
            SkipBalanced(TokKind::kLBrace, TokKind::kRBrace);
          }
          SkipToSemi();
          continue;
        }
        if (t.text == "class" || t.text == "struct" || t.text == "union") {
          ParseClass();
          continue;
        }
        if (t.text == "template") {
          ++pos_;
          SkipAngles();
          continue;
        }
        if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
            t.text == "static_assert") {
          SkipToSemi();
          continue;
        }
        if (t.text == "extern" && Peek(1).kind == TokKind::kString &&
            Peek(2).kind == TokKind::kLBrace) {
          pos_ += 3;
          ParseDeclSeq(class_name);
          if (Peek().kind == TokKind::kRBrace) ++pos_;
          continue;
        }
        if ((t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            Peek(1).kind == TokKind::kColon) {
          pos_ += 2;
          continue;
        }
        ParseDeclaration(class_name, in_class);
        continue;
      }
      // Attributes, stray punctuation, string literals from macros, ...
      if (t.kind == TokKind::kLBracket) {
        SkipBalanced(TokKind::kLBracket, TokKind::kRBracket);
        continue;
      }
      if (t.kind == TokKind::kLBrace) {
        SkipBalanced(TokKind::kLBrace, TokKind::kRBrace);
        continue;
      }
      ++pos_;
    }
  }

  /// Skips a balanced template argument list when positioned at '<'.
  /// Parens inside (e.g. a default argument expression) are opaque.
  void SkipAngles() {
    if (Peek().kind != TokKind::kLess) return;
    int angle = 0;
    while (!AtEnd()) {
      TokKind k = Peek().kind;
      if (k == TokKind::kLParen) {
        SkipBalanced(TokKind::kLParen, TokKind::kRParen);
        continue;
      }
      ++pos_;
      if (k == TokKind::kLess) {
        ++angle;
      } else if (k == TokKind::kGreater) {
        if (--angle == 0) return;
      } else if (k == TokKind::kSemi || k == TokKind::kLBrace) {
        return;  // malformed / not actually a template list
      }
    }
  }

  /// Positioned at "class"/"struct"/"union". Parses a (possibly nested)
  /// class definition, or skips a forward declaration / variable of
  /// elaborated type.
  void ParseClass() {
    ++pos_;  // class/struct/union
    while (Peek().kind == TokKind::kLBracket) {
      SkipBalanced(TokKind::kLBracket, TokKind::kRBracket);
    }
    std::string name;
    if (Peek().kind == TokKind::kIdent) {
      name = std::string(Peek().text);
      ++pos_;
    }
    // Scan to the body or the end of a forward declaration.
    while (!AtEnd()) {
      TokKind k = Peek().kind;
      if (k == TokKind::kLBrace) {
        ++pos_;
        ParseDeclSeq(name);
        if (Peek().kind == TokKind::kRBrace) ++pos_;
        SkipToSemi();
        return;
      }
      if (k == TokKind::kSemi) {
        ++pos_;
        return;
      }
      if (k == TokKind::kLess) {
        SkipAngles();
        continue;
      }
      ++pos_;
    }
  }

  /// A declaration that is not a nested type / namespace / using. Collects
  /// head tokens up to the first structural terminator at depth 0 and then
  /// dispatches: field (';', '=', '{') or function ('(').
  void ParseDeclaration(const std::string& class_name, bool in_class) {
    std::vector<Token> head;
    int angle = 0;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kDirective) {
        ++pos_;
        continue;
      }
      if (t.kind == TokKind::kLess) {
        ++angle;
        head.push_back(t);
        ++pos_;
        continue;
      }
      if (t.kind == TokKind::kGreater) {
        if (angle > 0) --angle;
        head.push_back(t);
        ++pos_;
        continue;
      }
      if (angle > 0) {
        head.push_back(t);
        ++pos_;
        continue;
      }
      switch (t.kind) {
        case TokKind::kSemi:
          ++pos_;
          FinishField(class_name, in_class, head, "");
          return;
        case TokKind::kAssign: {
          ++pos_;
          std::string init_string = CaptureInitString(TokKind::kSemi);
          FinishField(class_name, in_class, head, init_string);
          return;
        }
        case TokKind::kLBrace: {
          std::string init_string = CaptureBraceInitString();
          SkipToSemi();
          FinishField(class_name, in_class, head, init_string);
          return;
        }
        case TokKind::kLParen:
          ParseFunctionOrFnPtr(class_name, in_class, head);
          return;
        case TokKind::kLBracket:
          head.push_back(t);
          SkipBalanced(TokKind::kLBracket, TokKind::kRBracket);
          head.push_back(Prev(1));
          continue;
        case TokKind::kRBrace:
        case TokKind::kEnd:
          return;  // stray — let the caller handle it
        default:
          head.push_back(t);
          ++pos_;
          continue;
      }
    }
  }

  /// Consumes tokens up to (and including) a `terminator` at depth 0 and
  /// returns the first string literal seen (quotes stripped) — the
  /// InstrumentedMutex site name in `mu_{"site"}` / `= Mutex("site")`.
  std::string CaptureInitString(TokKind terminator) {
    std::string first;
    int depth = 0;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (depth == 0 && t.kind == terminator) {
        ++pos_;
        break;
      }
      if (t.kind == TokKind::kLParen || t.kind == TokKind::kLBrace ||
          t.kind == TokKind::kLBracket) {
        ++depth;
      } else if (t.kind == TokKind::kRParen || t.kind == TokKind::kRBrace ||
                 t.kind == TokKind::kRBracket) {
        if (depth == 0) break;
        --depth;
      } else if (t.kind == TokKind::kString && first.empty() &&
                 t.text.size() >= 2) {
        first = std::string(t.text.substr(1, t.text.size() - 2));
      }
      ++pos_;
    }
    return first;
  }

  /// Positioned at the '{' of a brace initializer: consumes the balanced
  /// braces, returns the first string literal inside.
  std::string CaptureBraceInitString() {
    std::string first;
    int depth = 0;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kLBrace) {
        ++depth;
      } else if (t.kind == TokKind::kRBrace) {
        ++pos_;
        if (--depth == 0) break;
        continue;
      } else if (t.kind == TokKind::kString && first.empty() &&
                 t.text.size() >= 2) {
        first = std::string(t.text.substr(1, t.text.size() - 2));
      }
      ++pos_;
    }
    return first;
  }

  /// Classifies a terminated declaration head as a data member (or a
  /// namespace-scope mutex) and records it.
  void FinishField(const std::string& class_name, bool in_class,
                   std::vector<Token> head, const std::string& init_string) {
    if (head.empty()) return;
    for (const Token& t : head) {
      // `Foo& operator=(const Foo&) = delete;` reaches here via its '='
      // token — operators are never data members.
      if (t.kind == TokKind::kIdent && t.text == "operator") return;
    }
    // Strip trailing annotation-macro calls: `name GUARDED_BY(mu_)`.
    bool guarded = false;
    while (head.size() >= 3 && head.back().kind == TokKind::kRParen) {
      int depth = 0;
      size_t open = head.size();
      for (size_t i = head.size(); i-- > 0;) {
        if (head[i].kind == TokKind::kRParen) ++depth;
        if (head[i].kind == TokKind::kLParen && --depth == 0) {
          open = i;
          break;
        }
      }
      if (open == head.size() || open == 0 ||
          head[open - 1].kind != TokKind::kIdent) {
        break;
      }
      std::string_view macro = head[open - 1].text;
      if (macro == "GUARDED_BY" || macro == "PT_GUARDED_BY") {
        guarded = true;
      } else if (macro != "ACQUIRED_AFTER" && macro != "ACQUIRED_BEFORE") {
        break;
      }
      head.resize(open - 1);
    }
    // Declared name: last identifier at bracket/angle depth 0.
    int angle = 0;
    int bracket = 0;
    size_t name_idx = head.size();
    bool pointerish = false;
    for (size_t i = 0; i < head.size(); ++i) {
      TokKind k = head[i].kind;
      if (k == TokKind::kLess) ++angle;
      if (k == TokKind::kGreater && angle > 0) --angle;
      if (k == TokKind::kLBracket) ++bracket;
      if (k == TokKind::kRBracket && bracket > 0) --bracket;
      if (angle > 0 || bracket > 0) continue;
      if (k == TokKind::kIdent) name_idx = i;
      if (k == TokKind::kStar || k == TokKind::kAmp) pointerish = true;
    }
    if (name_idx >= head.size() || name_idx == 0) return;
    std::string name(head[name_idx].text);
    int line = head[name_idx].line;
    std::string type_text;
    bool is_const = false;
    bool is_atomic = false;
    bool is_mutable = false;
    for (size_t i = 0; i < name_idx; ++i) {
      if (!type_text.empty()) type_text += ' ';
      type_text += std::string(head[i].text);
      if (head[i].kind == TokKind::kIdent) {
        std::string_view id = head[i].text;
        if (id == "const" || id == "constexpr" || id == "static") {
          is_const = true;
        }
        if (id == "mutable") is_mutable = true;
        if (id == "atomic") is_atomic = true;
      }
    }
    if (is_mutable) is_const = false;
    bool is_instrumented =
        type_text.find("InstrumentedMutex") != std::string::npos;
    bool is_sync_primitive =
        is_instrumented || type_text.find("mutex") != std::string::npos ||
        type_text.find("condition_variable") != std::string::npos ||
        type_text.find("once_flag") != std::string::npos ||
        type_text.find("Notification") != std::string::npos;
    if (is_instrumented && !pointerish) {
      MutexDecl decl;
      decl.class_name = class_name;
      decl.member = name;
      decl.site = init_string;
      decl.line = line;
      file_.mutexes.push_back(std::move(decl));
      return;
    }
    if (!in_class) return;  // only members feed guarded-by coverage
    if (is_sync_primitive) return;  // primitives synchronize themselves
    FieldDecl field;
    field.class_name = class_name;
    field.name = std::move(name);
    field.type_text = std::move(type_text);
    field.line = line;
    field.guarded = guarded;
    field.is_const = is_const;
    field.is_atomic = is_atomic;
    field.suppressed = LineHasAllow(line, "unguarded");
    file_.fields.push_back(std::move(field));
  }

  /// Positioned at the '(' that follows a declaration head: either a
  /// function (declaration or definition) or a function-pointer member.
  void ParseFunctionOrFnPtr(const std::string& class_name, bool in_class,
                            const std::vector<Token>& head) {
    if (Peek(1).kind == TokKind::kStar || Peek(1).kind == TokKind::kAmp) {
      // `int (*fp)(int);` — treat as an unguardable pointer member; just
      // consume to the semicolon.
      SkipToSemi();
      return;
    }
    if (head.empty() || head.back().kind != TokKind::kIdent) {
      SkipToSemi();
      return;
    }
    FunctionModel fn;
    fn.name = std::string(head.back().text);
    fn.line = head.back().line;
    fn.class_name = class_name;
    if (head.size() >= 3 && head[head.size() - 2].kind == TokKind::kScope &&
        head[head.size() - 3].kind == TokKind::kIdent) {
      fn.class_name = std::string(head[head.size() - 3].text);
    }

    // Parameter list.
    size_t params_begin = pos_ + 1;
    SkipBalanced(TokKind::kLParen, TokKind::kRParen);
    for (size_t i = params_begin; i + 1 < pos_; ++i) {
      if (toks_[i].kind == TokKind::kIdent && toks_[i].text == "Snapshot") {
        fn.has_snapshot_param = true;
      }
    }

    // Trailer: cv-qualifiers, noexcept, thread-safety annotations, trailing
    // return type — up to the body '{', a ';' declaration end, '=' for
    // `= default/delete/0`, or ':' starting a constructor init list.
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kSemi) {
        ++pos_;
        // Declarations only matter for their REQUIRES clause (merged into
        // the definition's model at tree level).
        if (!fn.requires_exprs.empty()) {
          file_.functions.push_back(std::move(fn));
        }
        return;
      }
      if (t.kind == TokKind::kAssign) {
        SkipToSemi();
        if (!fn.requires_exprs.empty()) {
          file_.functions.push_back(std::move(fn));
        }
        return;
      }
      if (t.kind == TokKind::kLBrace) {
        ParseFunctionBody(&fn);
        file_.functions.push_back(std::move(fn));
        return;
      }
      if (t.kind == TokKind::kColon) {
        SkipCtorInitList();
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "REQUIRES" || t.text == "EXCLUSIVE_LOCKS_REQUIRED")) {
        ++pos_;
        if (Peek().kind == TokKind::kLParen) {
          CaptureParenExprs(&fn.requires_exprs);
        }
        continue;
      }
      if (t.kind == TokKind::kLParen) {
        SkipBalanced(TokKind::kLParen, TokKind::kRParen);
        continue;
      }
      if (t.kind == TokKind::kRBrace || t.kind == TokKind::kEnd) return;
      ++pos_;
    }
    (void)in_class;
  }

  /// Positioned at the ':' of a constructor init list. Consumes up to the
  /// body '{' (left unconsumed). Member initializer braces (`a_{1}`)
  /// follow an identifier or '>'; the body brace follows ')' or '}'.
  void SkipCtorInitList() {
    ++pos_;  // ':'
    TokKind prev = TokKind::kColon;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kLParen) {
        SkipBalanced(TokKind::kLParen, TokKind::kRParen);
        prev = TokKind::kRParen;
        continue;
      }
      if (t.kind == TokKind::kLess) {
        SkipAngles();
        prev = TokKind::kGreater;
        continue;
      }
      if (t.kind == TokKind::kLBrace) {
        if (prev == TokKind::kRParen || prev == TokKind::kRBrace) {
          return;  // function body
        }
        SkipBalanced(TokKind::kLBrace, TokKind::kRBrace);
        prev = TokKind::kRBrace;
        continue;
      }
      if (t.kind == TokKind::kSemi || t.kind == TokKind::kEnd) return;
      prev = t.kind;
      ++pos_;
    }
  }

  /// Positioned at a '(': splits the balanced argument list at top-level
  /// commas into joined expression strings ("store.write_mu_").
  void CaptureParenExprs(std::vector<std::string>* out) {
    int depth = 0;
    std::string cur;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kLParen) {
        if (depth++ > 0) cur += '(';
        ++pos_;
        continue;
      }
      if (t.kind == TokKind::kRParen) {
        ++pos_;
        if (--depth == 0) break;
        cur += ')';
        continue;
      }
      if (t.kind == TokKind::kComma && depth == 1) {
        if (!cur.empty()) out->push_back(cur);
        cur.clear();
        ++pos_;
        continue;
      }
      if (t.kind == TokKind::kEnd) break;
      if (t.kind != TokKind::kAmp || !cur.empty()) {
        cur += JoinSpelling(t);
      }
      ++pos_;
    }
    if (!cur.empty()) out->push_back(cur);
  }

  static std::string JoinSpelling(const Token& t) {
    if (t.kind == TokKind::kArrow) return "->";
    return std::string(t.text);
  }

  // --- Function bodies -----------------------------------------------------

  void ParseFunctionBody(FunctionModel* fn);

  std::vector<Token> toks_;
  size_t pos_ = 0;
  std::vector<std::string> lines_;
  FlowFile file_;
};

/// True when the held set includes the store's writer lock — directly, via
/// a WriterScope (which asserts it), or via a REQUIRES clause. A writer
/// reads its own pending epoch, so this covers read-path calls.
bool HoldsWriteLock(const std::vector<HeldLock>& held) {
  for (const HeldLock& h : held) {
    if (h.kind == HeldLock::Kind::kWriterScope) return true;
    if (h.mutex_expr.size() >= 9 &&
        h.mutex_expr.compare(h.mutex_expr.size() - 9, 9, "write_mu_") == 0) {
      return true;
    }
  }
  return false;
}

/// Walks a function body tracking `{}` scopes. Every '{' pushes a scope
/// and every '}' pops one — initializer braces get a (lockless) scope of
/// their own, which is harmless because the tracked facts are RAII
/// declarations that cannot appear inside an initializer.
void FlowParser::ParseFunctionBody(FunctionModel* fn) {
  struct Block {
    std::vector<HeldLock> locks;
    std::vector<int> snapshots;
  };
  std::vector<Block> blocks;
  blocks.emplace_back();
  for (const std::string& expr : fn->requires_exprs) {
    blocks.back().locks.push_back({HeldLock::Kind::kRequires, expr, fn->line});
  }
  ++pos_;  // the body '{'

  auto held_locks = [&blocks] {
    std::vector<HeldLock> all;
    for (const Block& b : blocks) {
      all.insert(all.end(), b.locks.begin(), b.locks.end());
    }
    return all;
  };
  auto snapshot_line = [&blocks] {
    for (size_t i = blocks.size(); i-- > 0;) {
      if (!blocks[i].snapshots.empty()) return blocks[i].snapshots.back();
    }
    return 0;
  };

  while (!AtEnd()) {
    const Token& t = Peek();
    if (t.kind == TokKind::kDirective) {
      ++pos_;
      continue;
    }
    if (t.kind == TokKind::kLBrace) {
      blocks.emplace_back();
      ++pos_;
      continue;
    }
    if (t.kind == TokKind::kRBrace) {
      blocks.pop_back();
      ++pos_;
      if (blocks.empty()) return;
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      ++pos_;
      continue;
    }
    const std::string_view id = t.text;

    // Lock RAII declaration: [util::] MutexLock|UniqueLock var(&expr, ...).
    if ((id == "MutexLock" || id == "UniqueLock") &&
        Peek(1).kind == TokKind::kIdent && Peek(2).kind == TokKind::kLParen) {
      HeldLock lock;
      lock.kind = id == "MutexLock" ? HeldLock::Kind::kMutexLock
                                    : HeldLock::Kind::kUniqueLock;
      lock.line = t.line;
      pos_ += 2;  // now at '('
      std::vector<std::string> args;
      CaptureParenExprs(&args);
      if (!args.empty()) lock.mutex_expr = args[0];
      fn->acquisitions.push_back({lock, held_locks()});
      blocks.back().locks.push_back(std::move(lock));
      continue;
    }

    // Snapshot pin: [trim::] TripleStore::Snapshot var(store).
    if (id == "Snapshot" && Prev(1).kind == TokKind::kScope &&
        Prev(2).kind == TokKind::kIdent && Prev(2).text == "TripleStore" &&
        Peek(1).kind == TokKind::kIdent &&
        (Peek(2).kind == TokKind::kLParen ||
         Peek(2).kind == TokKind::kLBrace)) {
      blocks.back().snapshots.push_back(t.line);
      pos_ += 2;
      continue;
    }

    // Writer batch entered: WriterScope var(store).
    if (id == "WriterScope" && Peek(1).kind == TokKind::kIdent &&
        Peek(2).kind == TokKind::kLParen) {
      // A WriterScope *asserts* the writer lock rather than acquiring it,
      // so it joins the held set but is not an acquisition event (no
      // trim.store.write self-edge from the lock-then-scope idiom).
      blocks.back().locks.push_back({HeldLock::Kind::kWriterScope, "", t.line});
      if (int pin = snapshot_line(); pin != 0) {
        fn->pinned_writes.push_back(
            {"WriterScope", t.line, pin,
             LineHasAllow(t.line, "snapshot-discipline")});
      }
      pos_ += 2;
      continue;
    }

    // Plain call site: ident '('.
    if (Peek(1).kind == TokKind::kLParen && !IsControlKeyword(id)) {
      if (id == "BeginRead") fn->calls_begin_read = true;
      std::string receiver;
      if ((Prev(1).kind == TokKind::kDot || Prev(1).kind == TokKind::kArrow) &&
          Prev(2).kind == TokKind::kIdent) {
        receiver = std::string(Prev(2).text);
      }
      const int pin = snapshot_line();
      std::vector<HeldLock> held = held_locks();

      if (IsReadPathCallee(id)) {
        ReadCall rc;
        rc.callee = std::string(id);
        rc.line = t.line;
        rc.covered = pin != 0 || fn->has_snapshot_param ||
                     fn->calls_begin_read || HoldsWriteLock(held);
        rc.suppressed = LineHasAllow(t.line, "snapshot-discipline");
        fn->reads.push_back(std::move(rc));
      }
      if (IsBlockingCallee(id)) {
        BlockingCall bc;
        bc.callee = std::string(id);
        bc.line = t.line;
        bc.held = held;
        bc.snapshot_live = pin != 0;
        bc.snapshot_line = pin;
        bc.suppressed = LineHasAllow(t.line, "lock-across-blocking");
        fn->blocking.push_back(std::move(bc));
        if (pin != 0) {
          fn->pinned_writes.push_back(
              {"blocking call '" + std::string(id) + "'", t.line, pin,
               LineHasAllow(t.line, "snapshot-discipline")});
        }
      }
      if (id == "ApplyBatch" && pin != 0) {
        fn->pinned_writes.push_back(
            {"ApplyBatch", t.line, pin,
             LineHasAllow(t.line, "snapshot-discipline")});
      }
      CallSite cs;
      cs.callee = std::string(id);
      cs.receiver = std::move(receiver);
      cs.line = t.line;
      cs.held = std::move(held);
      cs.snapshot_live = pin != 0;
      fn->calls.push_back(std::move(cs));
      ++pos_;
      continue;
    }
    ++pos_;
  }
}

}  // namespace

FlowFile BuildFlowModel(const std::string& relative_path,
                        std::string_view contents) {
  return FlowParser(relative_path, contents).Run();
}

// ---------------------------------------------------------------------------
// FlowIndex
// ---------------------------------------------------------------------------

namespace {

/// Trailing member identifier of a mutex expression: "store.write_mu_" →
/// "write_mu_", "this->mu_" → "mu_", "mu_" → "mu_".
std::string TrailingMember(const std::string& expr) {
  size_t cut = expr.find_last_of(".>:");
  return cut == std::string::npos ? expr : expr.substr(cut + 1);
}

/// Leading receiver identifier, or "" when the expression is a bare name.
std::string LeadingReceiver(const std::string& expr) {
  size_t cut = expr.find_first_of(".-:");
  return cut == std::string::npos ? "" : expr.substr(0, cut);
}

}  // namespace

void FlowIndex::Add(const FlowFile& file) {
  for (const MutexDecl& m : file.mutexes) {
    if (m.raw || m.site.empty()) continue;
    by_class_[{m.class_name, m.member}] = m.site;
    by_member_[m.member].insert(m.site);
    class_sites_[m.class_name].push_back(m.site);
  }
  for (const FieldDecl& f : file.fields) {
    field_types_[{f.class_name, f.name}] = f.type_text;
  }
}

std::vector<std::string> FlowIndex::ResolveSites(
    const std::string& class_name, const std::string& mutex_expr) const {
  if (mutex_expr.empty()) return {};
  const std::string member = TrailingMember(mutex_expr);
  if (member.empty()) return {};
  const std::string receiver = LeadingReceiver(mutex_expr);

  // A bare member (or `this->member`) resolves only against the enclosing
  // class and namespace-scope globals: falling back to a tree-wide name
  // match for common spellings like "mu_" would cross-wire unrelated
  // classes' locks.
  auto it = by_class_.find({class_name, member});
  if (it != by_class_.end()) return {it->second};
  it = by_class_.find({std::string(), member});
  if (it != by_class_.end()) return {it->second};
  if (receiver.empty() || receiver == "this") return {};

  // `obj.member`: the receiver's declared field type names the owner class.
  const std::string& type = FieldType(class_name, receiver);
  std::string word;
  for (size_t i = 0; i <= type.size(); ++i) {
    if (i < type.size() && (std::isalnum(static_cast<unsigned char>(type[i])) ||
                            type[i] == '_')) {
      word.push_back(type[i]);
      continue;
    }
    if (!word.empty()) {
      auto owner = by_class_.find({word, member});
      if (owner != by_class_.end()) return {owner->second};
      word.clear();
    }
  }

  // Receiver type unknown (a parameter or local): fall back to every class
  // declaring this member name — the caller treats multiple candidates
  // conservatively.
  auto mt = by_member_.find(member);
  if (mt != by_member_.end()) {
    return std::vector<std::string>(mt->second.begin(), mt->second.end());
  }
  return {};
}

const std::string& FlowIndex::FieldType(const std::string& class_name,
                                        const std::string& field) const {
  static const std::string kEmpty;
  auto it = field_types_.find({class_name, field});
  return it == field_types_.end() ? kEmpty : it->second;
}

std::vector<std::string> FlowIndex::ClassSites(
    const std::string& class_name) const {
  auto it = class_sites_.find(class_name);
  return it == class_sites_.end() ? std::vector<std::string>() : it->second;
}

std::vector<std::string> ResolveCalleeKeys(
    const FlowIndex& index, const std::string& caller_class,
    const CallSite& call,
    const std::map<std::string, std::vector<std::string>>& by_simple) {
  auto it = by_simple.find(call.callee);
  if (it == by_simple.end()) return {};
  std::vector<std::string> out;
  if (call.receiver.empty() || call.receiver == "this") {
    for (const std::string& key : it->second) {
      if (key == caller_class + "::" + call.callee ||
          key == "::" + call.callee) {
        out.push_back(key);
      }
    }
    return out;
  }
  const std::string& type = index.FieldType(caller_class, call.receiver);
  if (type.empty()) return {};
  for (const std::string& key : it->second) {
    size_t cut = key.rfind("::");
    std::string cls = key.substr(0, cut);
    if (cls.empty()) continue;
    // Whole-word match of the class name inside the field's type text.
    size_t at = type.find(cls);
    while (at != std::string::npos) {
      bool left_ok = at == 0 || !(std::isalnum(static_cast<unsigned char>(
                                      type[at - 1])) ||
                                  type[at - 1] == '_');
      size_t end = at + cls.size();
      bool right_ok =
          end >= type.size() ||
          !(std::isalnum(static_cast<unsigned char>(type[end])) ||
            type[end] == '_');
      if (left_ok && right_ok) {
        out.push_back(key);
        break;
      }
      at = type.find(cls, at + 1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

namespace {

/// Same layer set as the legacy raw-mutex scanner: layers whose locks feed
/// the obs.lock.* contention telemetry.
bool InInstrumentedLayerPath(const std::string& relative_path) {
  static const char* const kLayers[] = {"src/trim/", "src/slim/", "src/obs/",
                                        "src/workload/"};
  for (const char* layer : kLayers) {
    if (relative_path.rfind(layer, 0) == 0) return true;
  }
  return false;
}

/// Layers where the snapshot-discipline contract applies (the MVCC store
/// and its query layer).
bool InSnapshotLayer(const std::string& relative_path) {
  return relative_path.rfind("src/trim/", 0) == 0 ||
         relative_path.rfind("src/slim/", 0) == 0;
}

std::string JoinQuoted(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += "'" + s + "'";
  }
  return out;
}

}  // namespace

void LintRawMutexModel(const FlowFile& file, std::vector<Diagnostic>* out) {
  if (!InInstrumentedLayerPath(file.path)) return;
  size_t layer_end = file.path.find('/', 4);
  std::string layer = file.path.substr(4, layer_end - 4);
  for (const MutexDecl& m : file.mutexes) {
    if (!m.raw || m.suppressed) continue;
    out->push_back(
        {file.path, m.line, "raw-mutex",
         "raw std::mutex declared in instrumented layer '" + layer +
             "'; use util::InstrumentedMutex with a named lock site, or "
             "annotate the line with '// slim-lint: allow(raw-mutex)'"});
  }
}

void LintGuardedByCoverage(const FlowFile& file, const FlowIndex& index,
                           std::vector<Diagnostic>* out) {
  if (file.path.rfind("src/", 0) != 0) return;
  std::set<std::string> owners;
  for (const MutexDecl& m : file.mutexes) {
    if (!m.raw && !m.class_name.empty()) owners.insert(m.class_name);
  }
  if (owners.empty()) return;
  for (const FieldDecl& f : file.fields) {
    if (owners.count(f.class_name) == 0) continue;
    if (f.guarded || f.is_const || f.is_atomic || f.suppressed) continue;
    std::string sites = JoinQuoted(index.ClassSites(f.class_name));
    out->push_back(
        {file.path, f.line, "guarded-by-coverage",
         "mutable field '" + f.name + "' of '" + f.class_name +
             "' (which owns InstrumentedMutex " + sites +
             ") lacks GUARDED_BY(...); name the guarding mutex or add '// "
             "slim-lint: allow(unguarded) -- <why>'"});
  }
}

void LintLockAcrossBlocking(const FlowFile& file, const FlowIndex& index,
                            std::vector<Diagnostic>* out) {
  if (file.path.rfind("src/", 0) != 0) return;
  for (const FunctionModel& fn : file.functions) {
    for (const BlockingCall& bc : fn.blocking) {
      if (bc.suppressed) continue;
      std::set<std::string> sites;
      for (const HeldLock& h : bc.held) {
        if (h.kind == HeldLock::Kind::kWriterScope) {
          sites.insert("trim.store.write");
          continue;
        }
        for (std::string& s : index.ResolveSites(fn.class_name, h.mutex_expr)) {
          sites.insert(std::move(s));
        }
      }
      if (sites.empty()) continue;
      std::vector<std::string> sorted(sites.begin(), sites.end());
      out->push_back(
          {file.path, bc.line, "lock-across-blocking",
           "lock on " + JoinQuoted(sorted) + " held across blocking call '" +
               bc.callee +
               "()' — every contender stalls on the site; release the lock "
               "before blocking or add '// slim-lint: "
               "allow(lock-across-blocking) -- <why>'"});
    }
  }
}

void LintSnapshotDiscipline(const std::vector<FlowFile>& files,
                            const FlowIndex& index,
                            std::vector<Diagnostic>* out) {
  std::vector<Diagnostic> found;

  // Local half: a Snapshot pin alive around a writer batch or a blocking
  // call stalls epoch reclamation for every writer.
  for (const FlowFile& file : files) {
    if (!InSnapshotLayer(file.path)) continue;
    for (const FunctionModel& fn : file.functions) {
      for (const PinnedWrite& pw : fn.pinned_writes) {
        if (pw.suppressed) continue;
        found.push_back(
            {file.path, pw.line, "snapshot-discipline",
             "TripleStore::Snapshot taken at line " +
                 std::to_string(pw.snapshot_line) + " is still live around " +
                 pw.what +
                 " — a live pin stalls epoch reclamation; end the snapshot "
                 "first or add '// slim-lint: allow(snapshot-discipline) -- "
                 "<why>'"});
      }
    }
  }

  // Interprocedural half: an uncovered read-path call may be covered by
  // any caller's pin, so uncovered reads propagate up the (simple-name)
  // call graph and are reported only when still exposed at a root.
  struct Origin {
    const FlowFile* file;
    int line;
    std::string callee;
  };
  std::map<std::string, bool> covered;                     // key: Class::name
  std::map<std::string, std::vector<std::string>> by_simple;  // name -> keys
  for (const FlowFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    for (const FunctionModel& fn : file.functions) {
      std::string key = fn.class_name + "::" + fn.name;
      bool self = fn.has_snapshot_param || fn.calls_begin_read;
      for (const std::string& expr : fn.requires_exprs) {
        if (TrailingMember(expr) == "write_mu_") self = true;
      }
      auto [it, inserted] = covered.emplace(key, self);
      if (!inserted) it->second |= self;
      if (inserted) by_simple[fn.name].push_back(key);
    }
  }

  std::vector<Origin> origins;
  std::map<std::string, std::vector<size_t>> escaping;  // key -> origin idx
  std::set<std::pair<std::string, size_t>> seen;
  for (const FlowFile& file : files) {
    if (!InSnapshotLayer(file.path)) continue;
    for (const FunctionModel& fn : file.functions) {
      // The store's own implementation (and its Snapshot pin object) runs
      // the internal BeginRead/EndRead protocol; the rule targets its
      // *clients*, whose delegating wrappers must pin around multi-read
      // sequences.
      if (fn.class_name == "TripleStore" || fn.class_name == "Snapshot") {
        continue;
      }
      std::string key = fn.class_name + "::" + fn.name;
      if (covered[key]) continue;
      for (const ReadCall& rc : fn.reads) {
        if (rc.covered || rc.suppressed) continue;
        origins.push_back({&file, rc.line, rc.callee});
        escaping[key].push_back(origins.size() - 1);
        seen.insert({key, origins.size() - 1});
      }
    }
  }

  std::set<std::string> called_names;
  bool changed = !origins.empty();
  while (changed) {
    changed = false;
    for (const FlowFile& file : files) {
      if (file.path.rfind("src/", 0) != 0) continue;
      for (const FunctionModel& fn : file.functions) {
        std::string caller_key = fn.class_name + "::" + fn.name;
        if (covered[caller_key]) continue;
        for (const CallSite& cs : fn.calls) {
          if (cs.snapshot_live || HoldsWriteLock(cs.held)) continue;
          for (const std::string& callee_key :
               ResolveCalleeKeys(index, fn.class_name, cs, by_simple)) {
            if (callee_key == caller_key) continue;
            auto esc = escaping.find(callee_key);
            if (esc == escaping.end()) continue;
            for (size_t idx : esc->second) {
              if (seen.insert({caller_key, idx}).second) {
                escaping[caller_key].push_back(idx);
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  for (const FlowFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    for (const FunctionModel& fn : file.functions) {
      for (const CallSite& cs : fn.calls) called_names.insert(cs.callee);
    }
  }

  std::set<std::pair<std::string, int>> reported;
  for (const auto& [key, idxs] : escaping) {
    size_t cut = key.rfind("::");
    std::string simple = key.substr(cut + 2);
    if (called_names.count(simple) != 0) continue;  // judged at its callers
    for (size_t idx : idxs) {
      const Origin& o = origins[idx];
      if (!reported.insert({o.file->path, o.line}).second) continue;
      found.push_back(
          {o.file->path, o.line, "snapshot-discipline",
           "read path '" + o.callee +
               "' is reachable without a live TripleStore::Snapshot (no "
               "pin, snapshot parameter, BeginRead or writer lock on any "
               "call path); pin a snapshot before reading or add '// "
               "slim-lint: allow(snapshot-discipline) -- <why>'"});
    }
  }

  std::sort(found.begin(), found.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  out->insert(out->end(), found.begin(), found.end());
}

}  // namespace slim::lint
