#include "lock_graph.h"

#include <algorithm>

namespace slim::lint {

namespace {

/// Resolves a held/acquired lock to exactly one site name, or "" when the
/// expression is unknown or ambiguous (no edge is better than a fabricated
/// one).
std::string SiteOf(const FlowIndex& index, const std::string& class_name,
                   const HeldLock& lock) {
  if (lock.kind == HeldLock::Kind::kWriterScope) return "trim.store.write";
  std::vector<std::string> sites =
      index.ResolveSites(class_name, lock.mutex_expr);
  return sites.size() == 1 ? sites[0] : std::string();
}

std::string FnKey(const FunctionModel& fn) {
  return fn.class_name + "::" + fn.name;
}

}  // namespace

void LockGraph::AddEdge(LockEdge edge) {
  if (edge.from == edge.to) return;
  if (!seen_.insert({edge.from, edge.to}).second) return;
  adj_[edge.from].push_back(edges_.size());
  edges_.push_back(std::move(edge));
}

void LockGraph::Build(const std::vector<FlowFile>& files,
                      const FlowIndex& index) {
  // Pass 1: direct nesting edges, and each function's directly-acquired
  // site set.
  std::map<std::string, std::set<std::string>> reach;
  std::map<std::string, std::vector<std::string>> by_simple;
  for (const FlowFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    for (const FunctionModel& fn : file.functions) {
      const std::string key = FnKey(fn);
      if (reach.find(key) == reach.end()) {
        by_simple[fn.name].push_back(key);
      }
      std::set<std::string>& acquired = reach[key];
      for (const Acquisition& acq : fn.acquisitions) {
        std::string to = SiteOf(index, fn.class_name, acq.lock);
        if (to.empty()) continue;
        acquired.insert(to);
        for (const HeldLock& h : acq.held_before) {
          std::string from = SiteOf(index, fn.class_name, h);
          if (from.empty()) continue;
          AddEdge({from, to, file.path, acq.lock.line, key});
        }
      }
    }
  }

  // Pass 2: close the acquired-site sets over the (simple-name) call
  // graph — calling a function may take everything it takes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FlowFile& file : files) {
      if (file.path.rfind("src/", 0) != 0) continue;
      for (const FunctionModel& fn : file.functions) {
        std::set<std::string>& mine = reach[FnKey(fn)];
        for (const CallSite& cs : fn.calls) {
          for (const std::string& callee_key :
               ResolveCalleeKeys(index, fn.class_name, cs, by_simple)) {
            if (callee_key == FnKey(fn)) continue;
            for (const std::string& site : reach[callee_key]) {
              if (mine.insert(site).second) changed = true;
            }
          }
        }
      }
    }
  }

  // Pass 3: interprocedural edges — a lock held across a call orders
  // before every site the callee may acquire.
  for (const FlowFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    for (const FunctionModel& fn : file.functions) {
      const std::string key = FnKey(fn);
      for (const CallSite& cs : fn.calls) {
        if (cs.held.empty()) continue;
        std::vector<std::string> callee_keys =
            ResolveCalleeKeys(index, fn.class_name, cs, by_simple);
        if (callee_keys.empty()) continue;
        for (const HeldLock& h : cs.held) {
          std::string from = SiteOf(index, fn.class_name, h);
          if (from.empty()) continue;
          for (const std::string& callee_key : callee_keys) {
            if (callee_key == key) continue;
            for (const std::string& to : reach[callee_key]) {
              AddEdge({from, to, file.path, cs.line, key});
            }
          }
        }
      }
    }
  }
}

void LockGraph::LintLockOrder(std::vector<Diagnostic>* out) const {
  // Iterative DFS over the site digraph; every back edge closes a cycle,
  // reported once under a canonical rotation.
  std::set<std::string> nodes;
  for (const LockEdge& e : edges_) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;    // current DFS path (sites)
  std::vector<size_t> stack_edge;    // edge taken into stack[i] (i > 0)
  std::set<std::string> reported;

  // Recursive lambda flattened: explicit work stack of (node, next child).
  struct Frame {
    std::string node;
    size_t next = 0;
  };
  for (const std::string& root : nodes) {
    if (color[root] != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = 1;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      auto adj_it = adj_.find(f.node);
      const std::vector<size_t>* children =
          adj_it == adj_.end() ? nullptr : &adj_it->second;
      if (children == nullptr || f.next >= children->size()) {
        color[f.node] = 2;
        frames.pop_back();
        stack.pop_back();
        if (!stack_edge.empty()) stack_edge.pop_back();
        continue;
      }
      size_t edge_idx = (*children)[f.next++];
      const LockEdge& e = edges_[edge_idx];
      int c = color[e.to];
      if (c == 0) {
        color[e.to] = 1;
        stack.push_back(e.to);
        stack_edge.push_back(edge_idx);
        frames.push_back({e.to, 0});
        continue;
      }
      if (c != 1) continue;
      // Back edge e.from -> e.to with e.to on the path: the cycle is
      // stack[pos(e.to)..end] plus this edge.
      size_t pos = 0;
      while (pos < stack.size() && stack[pos] != e.to) ++pos;
      std::vector<size_t> cycle_edges(stack_edge.begin() + pos,
                                      stack_edge.end());
      cycle_edges.push_back(edge_idx);
      // Canonical form for dedup: rotate so the smallest site leads.
      std::vector<std::string> sites;
      for (size_t idx : cycle_edges) sites.push_back(edges_[idx].from);
      size_t lead = static_cast<size_t>(
          std::min_element(sites.begin(), sites.end()) - sites.begin());
      std::string canon;
      for (size_t i = 0; i < sites.size(); ++i) {
        canon += sites[(lead + i) % sites.size()] + ">";
      }
      if (!reported.insert(canon).second) continue;

      std::string chain;
      std::string witnesses;
      for (size_t i = 0; i < cycle_edges.size(); ++i) {
        const LockEdge& w = edges_[cycle_edges[(lead + i) % cycle_edges.size()]];
        if (chain.empty()) chain = w.from;
        chain += " -> " + w.to;
        if (!witnesses.empty()) witnesses += "; ";
        witnesses += w.from + " -> " + w.to + " at " + w.file + ":" +
                     std::to_string(w.line) + " (" + w.function + ")";
      }
      const LockEdge& first = edges_[cycle_edges[lead % cycle_edges.size()]];
      out->push_back(
          {first.file, first.line, "lock-order",
           "lock-order cycle " + chain +
               " — two threads taking these sites in opposite orders "
               "deadlock; witnesses: " + witnesses});
    }
  }
}

std::string LockGraph::ToDot() const {
  std::vector<const LockEdge*> sorted;
  sorted.reserve(edges_.size());
  for (const LockEdge& e : edges_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const LockEdge* a, const LockEdge* b) {
              return a->from != b->from ? a->from < b->from : a->to < b->to;
            });
  std::string dot;
  dot += "digraph slim_lock_order {\n";
  dot += "  rankdir=LR;\n";
  dot += "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  dot += "  edge [fontname=\"monospace\", fontsize=8];\n";
  for (const LockEdge* e : sorted) {
    dot += "  \"" + e->from + "\" -> \"" + e->to + "\" [label=\"" + e->file +
           ":" + std::to_string(e->line) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace slim::lint
