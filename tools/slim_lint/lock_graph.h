#ifndef SLIM_TOOLS_SLIM_LINT_LOCK_GRAPH_H_
#define SLIM_TOOLS_SLIM_LINT_LOCK_GRAPH_H_

/// \file lock_graph.h
/// \brief Site-level lock-acquisition graph and the `lock-order` rule.
///
/// Every `MutexLock`/`UniqueLock` acquisition that happens while other
/// instrumented locks are held contributes an edge held-site → acquired-
/// site. Edges are also derived interprocedurally: when a function holds a
/// lock across a call, it inherits edges to every site the callee (and its
/// callees, transitively) may acquire. A cycle in the resulting digraph is
/// a potential deadlock — two threads can take the sites in opposite
/// orders — and is reported with the full witness chain (one acquisition
/// site per edge). The acyclic graph doubles as documentation: `ToDot()`
/// renders it for DESIGN.md §9.
///
/// Resolution of a mutex expression to a site name uses FlowIndex; an
/// expression that resolves ambiguously (several classes declare the
/// member and the receiver type is unknown) contributes *no* edges — a
/// made-up edge could fabricate a cycle, and the real site is still
/// covered wherever the expression resolves exactly.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "flow.h"
#include "lint.h"

namespace slim::lint {

/// One acquisition-order edge with its witness.
struct LockEdge {
  std::string from;      ///< Site already held.
  std::string to;        ///< Site acquired (or entered via a call).
  std::string file;      ///< Witness location, relative to the root.
  int line = 0;
  std::string function;  ///< "Class::Name" of the witnessing function.
};

class LockGraph {
 public:
  /// Builds the graph from every function in `files` (src/ only), using
  /// `index` to resolve mutex expressions to site names.
  void Build(const std::vector<FlowFile>& files, const FlowIndex& index);

  /// `lock-order`: reports every cycle (deterministically, each elementary
  /// cycle found once) with its witness chain.
  void LintLockOrder(std::vector<Diagnostic>* out) const;

  /// Graphviz rendering, deterministic: one node per site, one edge per
  /// ordered pair, witness in the edge tooltip.
  std::string ToDot() const;

  size_t edge_count() const { return edges_.size(); }

 private:
  void AddEdge(LockEdge edge);

  std::vector<LockEdge> edges_;                       ///< First witness wins.
  std::set<std::pair<std::string, std::string>> seen_;
  std::map<std::string, std::vector<size_t>> adj_;    ///< from → edge idx.
};

}  // namespace slim::lint

#endif  // SLIM_TOOLS_SLIM_LINT_LOCK_GRAPH_H_
