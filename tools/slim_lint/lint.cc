#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "flow.h"
#include "lock_graph.h"

namespace slim::lint {

namespace {

// ---------------------------------------------------------------------------
// The include-layer DAG. A layer may include itself plus the transitive
// closure of the libraries it links against (src/*/CMakeLists.txt). "core"
// is the umbrella interface and may include everything.
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& LayerAllowedIncludes() {
  static const auto* kAllowed = new std::map<std::string, std::set<std::string>>{
      {"util", {"util"}},
      {"obs", {"obs", "util"}},
      {"doc", {"doc", "util"}},
      {"baseapp", {"baseapp", "doc", "util"}},
      {"trim", {"trim", "doc", "obs", "util"}},
      {"mark", {"mark", "baseapp", "doc", "obs", "util"}},
      {"slim", {"slim", "trim", "doc", "obs", "util"}},
      {"dmi", {"dmi", "slim", "trim", "doc", "obs", "util"}},
      {"slimpad",
       {"slimpad", "mark", "slim", "trim", "baseapp", "doc", "obs", "util"}},
      {"workload",
       {"workload", "slimpad", "mark", "slim", "trim", "baseapp", "doc", "obs",
        "util"}},
      {"core",
       {"core", "workload", "slimpad", "dmi", "slim", "mark", "trim",
        "baseapp", "doc", "obs", "util"}},
  };
  return *kAllowed;
}

bool IsLayerName(const std::string& name) {
  return LayerAllowedIncludes().count(name) != 0;
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Replaces comments with spaces (newlines kept, so positions and line
/// numbers survive). String and character literals are preserved.
std::string StripComments(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

/// Blanks preprocessor-directive lines (and their backslash continuations)
/// so that macro *definitions* — e.g. obs/obs.h's own `#define
/// SLIM_OBS_COUNT(name)` — are not mistaken for macro call sites.
std::string BlankDirectives(std::string_view code) {
  std::string out(code);
  size_t pos = 0;
  bool continuation = false;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    size_t first = pos;
    while (first < eol && (out[first] == ' ' || out[first] == '\t')) ++first;
    bool directive = continuation || (first < eol && out[first] == '#');
    if (directive) {
      continuation = eol > pos && out[eol - 1] == '\\';
      for (size_t i = pos; i < eol; ++i) out[i] = ' ';
    } else {
      continuation = false;
    }
    pos = eol + 1;
  }
  return out;
}

/// 1-based line number of `pos` in `text`.
int LineOf(std::string_view text, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + std::min(pos, text.size()), '\n'));
}

// ---------------------------------------------------------------------------
// Macro / helper call scanning
// ---------------------------------------------------------------------------

/// Which argument of a scanned call carries the metric/span/log name, and
/// which checks apply to it.
struct CallSpec {
  int name_arg = 0;
  bool name_must_be_literal = false;  ///< Cached-pointer macros.
  bool check_catalog = false;         ///< Membership in DESIGN.md (src/ only).
  bool hygiene = false;               ///< Args must be side-effect free.
};

const std::map<std::string, CallSpec>& ScannedCalls() {
  static const auto* kCalls = new std::map<std::string, CallSpec>{
      // Instrumentation macros: compiled out under SLIM_ENABLE_OBS=OFF.
      {"SLIM_OBS_COUNT", {0, true, true, true}},
      {"SLIM_OBS_COUNT_N", {0, true, true, true}},
      {"SLIM_OBS_COUNT_DYN", {0, false, true, true}},
      {"SLIM_OBS_HISTOGRAM", {0, true, true, true}},
      {"SLIM_OBS_TIMER", {1, true, true, true}},
      {"SLIM_OBS_SPAN", {1, true, true, true}},
      {"SLIM_OBS_HEARTBEAT", {0, true, true, true}},
      {"SLIM_OBS_LOG", {1, false, false, true}},           // layer tag
      {"SLIM_OBS_DUMP_ON_ERROR", {0, false, false, true}}, // source tag
      // Direct emission helpers: plain functions (no hygiene concern), but
      // literal names still follow the convention and the catalog.
      {"GetCounter", {0, false, true, false}},
      {"GetGauge", {0, false, true, false}},
      {"GetHistogram", {0, false, true, false}},
      {"StartSpan", {0, false, true, false}},
      {"CountGesture", {0, false, true, false}},
      {"Count", {0, false, true, false}},
      {"Histogram", {0, false, true, false}},
  };
  return *kCalls;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsValidNameLiteral(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

/// Extracts the balanced `(...)` argument span starting at `open` (which
/// must index a '('). Returns the index one past the closing ')', or npos
/// when unbalanced. Strings/chars are skipped opaquely.
size_t FindCallEnd(std::string_view code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    char c = code[i];
    if (c == '"' || c == '\'') {
      char quote = c;
      for (++i; i < code.size(); ++i) {
        if (code[i] == '\\') {
          ++i;
        } else if (code[i] == quote) {
          break;
        }
      }
    } else if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Splits an argument list (without outer parens) at top-level commas.
std::vector<std::string> SplitArgs(std::string_view args) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    char c = args[i];
    if (c == '"' || c == '\'') {
      char quote = c;
      for (++i; i < args.size(); ++i) {
        if (args[i] == '\\') {
          ++i;
        } else if (args[i] == quote) {
          break;
        }
      }
    } else if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      out.emplace_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  out.emplace_back(args.substr(start));
  for (std::string& arg : out) {
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.front())))
      arg.erase(arg.begin());
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.back())))
      arg.pop_back();
  }
  return out;
}

/// Reports the first side-effect operator (`++`, `--`, or an assignment)
/// found outside string/char literals, or an empty string when clean.
std::string FindSideEffectOperator(std::string_view arg) {
  for (size_t i = 0; i < arg.size(); ++i) {
    char c = arg[i];
    char next = i + 1 < arg.size() ? arg[i + 1] : '\0';
    char prev = i > 0 ? arg[i - 1] : '\0';
    char prev2 = i > 1 ? arg[i - 2] : '\0';
    if (c == '"' || c == '\'') {
      char quote = c;
      for (++i; i < arg.size(); ++i) {
        if (arg[i] == '\\') {
          ++i;
        } else if (arg[i] == quote) {
          break;
        }
      }
    } else if (c == '+' && next == '+') {
      return "++";
    } else if (c == '-' && next == '-') {
      return "--";
    } else if (c == '=') {
      if (next == '=') {
        ++i;  // ==
      } else if (prev == '=' || prev == '!') {
        // second char of == / != — already consumed or harmless
      } else if (prev == '<' || prev == '>') {
        // <= / >= are fine; <<= / >>= are assignments.
        if ((prev == '<' && prev2 == '<') || (prev == '>' && prev2 == '>')) {
          return "<<=";
        }
      } else {
        return "=";
      }
    }
  }
  return "";
}

/// Parses a leading string literal from `arg`. On success sets `*literal`
/// to its contents and `*exact` to whether the literal is the whole
/// argument (vs. a prefix of a concatenation).
bool LeadingStringLiteral(std::string_view arg, std::string* literal,
                          bool* exact) {
  if (arg.empty() || arg.front() != '"') return false;
  std::string value;
  size_t i = 1;
  for (; i < arg.size(); ++i) {
    if (arg[i] == '\\' && i + 1 < arg.size()) {
      value.push_back(arg[i + 1]);
      ++i;
    } else if (arg[i] == '"') {
      break;
    } else {
      value.push_back(arg[i]);
    }
  }
  if (i >= arg.size()) return false;  // unterminated (mid-macro split)
  size_t rest = i + 1;
  while (rest < arg.size() &&
         std::isspace(static_cast<unsigned char>(arg[rest]))) {
    ++rest;
  }
  *literal = std::move(value);
  *exact = rest == arg.size();
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

namespace {

/// Expands `{a,b,c}` alternatives (possibly several per pattern, possibly
/// nested: `{a,{b,c}.d}`). The close brace is the *matching* one — not the
/// first — and alternatives split only at top-level commas, so a nested
/// group or a `<word>` wildcard inside an alternative survives intact.
void ExpandBraces(const std::string& pattern, std::vector<std::string>* out) {
  size_t open = pattern.find('{');
  if (open == std::string::npos) {
    out->push_back(pattern);
    return;
  }
  size_t close = std::string::npos;
  int depth = 0;
  for (size_t i = open; i < pattern.size(); ++i) {
    if (pattern[i] == '{') {
      ++depth;
    } else if (pattern[i] == '}' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) return;  // malformed: drop
  std::string head = pattern.substr(0, open);
  std::string tail = pattern.substr(close + 1);
  std::string body = pattern.substr(open + 1, close - open - 1);
  size_t start = 0;
  depth = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && body[i] == '{') ++depth;
    if (i < body.size() && body[i] == '}') --depth;
    if (i == body.size() || (body[i] == ',' && depth == 0)) {
      ExpandBraces(head + body.substr(start, i - start) + tail, out);
      start = i + 1;
    }
  }
}

/// Splits a dotted name into segments. Returns false on an empty segment
/// (leading/trailing/doubled dot) — such a name can never be well formed.
bool SplitSegments(std::string_view name, std::vector<std::string>* out) {
  if (name.empty()) return false;
  size_t start = 0;
  for (size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      if (i == start) return false;
      out->emplace_back(name.substr(start, i - start));
      start = i + 1;
    }
  }
  return true;
}

}  // namespace

void Catalog::AddPattern(const std::string& pattern) {
  ExpandBraces(pattern, &patterns_);
}

bool Catalog::MatchesExact(std::string_view name) const {
  // A name with an empty segment ("a..b", trailing '.') is never valid,
  // whatever the patterns say.
  {
    std::vector<std::string> segs;
    if (!SplitSegments(name, &segs)) return false;
  }
  for (const std::string& p : patterns_) {
    if (p.find('<') == std::string::npos && p.find('*') == std::string::npos) {
      if (p == name) return true;
      continue;
    }
    // Wildcard pattern → regex: '.' literal, '<word>' one segment, '*' any
    // non-empty dotted suffix (segments themselves non-empty).
    std::string re;
    for (size_t i = 0; i < p.size(); ++i) {
      char c = p[i];
      if (c == '.') {
        re += "\\.";
      } else if (c == '<') {
        size_t close = p.find('>', i);
        if (close == std::string::npos) {
          re += "<";
          continue;
        }
        re += "[a-z0-9_]+";
        i = close;
      } else if (c == '*') {
        re += "[a-z0-9_]+(\\.[a-z0-9_]+)*";
      } else {
        re += c;
      }
    }
    if (std::regex_match(name.begin(), name.end(), std::regex(re))) {
      return true;
    }
  }
  return false;
}

bool Catalog::MatchesPrefix(std::string_view prefix) const {
  // Runtime-concatenated names pass their literal head here, usually
  // ending in '.'. Match segment-wise so wildcard patterns participate:
  // a complete prefix segment matches '<word>' or the same literal, '*'
  // matches any remaining suffix, and a trailing partial segment (no
  // closing dot) must be a textual prefix of the pattern's next segment.
  // An empty segment ("a..b." or a bare ".") never matches.
  if (prefix.empty()) return false;
  const bool ends_dot = prefix.back() == '.';
  std::vector<std::string> segs;
  if (!SplitSegments(ends_dot ? prefix.substr(0, prefix.size() - 1) : prefix,
                     &segs)) {
    return false;
  }
  std::string partial;
  if (!ends_dot) {
    partial = segs.back();
    segs.pop_back();
  }
  for (const std::string& p : patterns_) {
    std::vector<std::string> psegs;
    if (!SplitSegments(p, &psegs)) continue;
    size_t i = 0;
    bool dead = false;
    bool star = false;
    for (; i < segs.size(); ++i) {
      if (i >= psegs.size()) {
        dead = true;
        break;
      }
      const std::string& ps = psegs[i];
      if (ps == "*") {
        star = true;
        break;
      }
      if (ps != segs[i] && ps.front() != '<') {
        dead = true;
        break;
      }
    }
    if (dead) continue;
    if (star) return true;
    if (partial.empty()) {
      // "a.b." requires the name to continue: the pattern must have at
      // least one more segment.
      if (psegs.size() > segs.size()) return true;
      continue;
    }
    if (psegs.size() <= segs.size()) continue;
    const std::string& next = psegs[segs.size()];
    if (next == "*" || next.front() == '<' ||
        next.compare(0, partial.size(), partial) == 0) {
      return true;
    }
  }
  return false;
}

Status LoadCatalog(const std::filesystem::path& path, Catalog* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open catalog file " + path.string());
  }
  static const std::set<std::string> kTypes = {"counter", "gauge", "histogram",
                                              "span", "heartbeat"};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '|') continue;
    // Split the markdown row into cells.
    std::vector<std::string> cells;
    std::string cell;
    for (size_t i = 1; i < line.size(); ++i) {
      if (line[i] == '|') {
        cells.push_back(cell);
        cell.clear();
      } else {
        cell.push_back(line[i]);
      }
    }
    if (cells.size() < 2) continue;
    // A catalog row is identified by its Type column.
    std::string type = cells[1];
    type.erase(std::remove_if(type.begin(), type.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               type.end());
    bool is_catalog_row = false;
    {
      std::stringstream ss(type);
      std::string t;
      while (std::getline(ss, t, ',')) {
        if (kTypes.count(t)) is_catalog_row = true;
      }
    }
    if (!is_catalog_row) continue;
    // Every `backtick` token in the first cell is a name pattern.
    const std::string& names = cells[0];
    size_t pos = 0;
    while ((pos = names.find('`', pos)) != std::string::npos) {
      size_t end = names.find('`', pos + 1);
      if (end == std::string::npos) break;
      out->AddPattern(names.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
  }
  if (out->size() == 0) {
    return Status::FailedPrecondition("no catalog entries found in " +
                                      path.string());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-file linting
// ---------------------------------------------------------------------------

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

namespace {

void LintIncludes(const std::string& relative_path, std::string_view code,
                  std::vector<Diagnostic>* out) {
  // Only src/<layer>/... files carry a layer contract.
  if (relative_path.rfind("src/", 0) != 0) return;
  size_t layer_end = relative_path.find('/', 4);
  if (layer_end == std::string::npos) return;
  std::string layer = relative_path.substr(4, layer_end - 4);
  auto it = LayerAllowedIncludes().find(layer);
  if (it == LayerAllowedIncludes().end()) return;
  const std::set<std::string>& allowed = it->second;

  static const std::regex kInclude("^[ \t]*#[ \t]*include[ \t]*\"([^\"]+)\"");
  size_t pos = 0;
  int line_no = 0;
  while (pos <= code.size()) {
    size_t eol = code.find('\n', pos);
    if (eol == std::string::npos) eol = code.size();
    ++line_no;
    std::string line(code.substr(pos, eol - pos));
    std::smatch m;
    if (std::regex_search(line, m, kInclude)) {
      std::string included = m[1];
      std::string first = included.substr(0, included.find('/'));
      if (IsLayerName(first) && allowed.count(first) == 0) {
        out->push_back({relative_path, line_no, "layer-dag",
                        "layer '" + layer + "' must not include \"" +
                            included + "\" (allowed layers: " +
                            [&allowed] {
                              std::string s;
                              for (const auto& a : allowed) {
                                if (!s.empty()) s += ", ";
                                s += a;
                              }
                              return s;
                            }() +
                            ")"});
      }
    }
    pos = eol + 1;
  }
}

void LintCalls(const std::string& relative_path, std::string_view macro_view,
               const Catalog& catalog, std::vector<Diagnostic>* out) {
  bool in_src = relative_path.rfind("src/", 0) == 0;
  const auto& calls = ScannedCalls();

  for (size_t i = 0; i < macro_view.size(); ++i) {
    char c = macro_view[i];
    if (c == '"' || c == '\'') {  // skip literals at top level
      char quote = c;
      for (++i; i < macro_view.size(); ++i) {
        if (macro_view[i] == '\\') {
          ++i;
        } else if (macro_view[i] == quote) {
          break;
        }
      }
      continue;
    }
    if (!IsIdentChar(c) || (i > 0 && IsIdentChar(macro_view[i - 1]))) continue;
    size_t id_end = i;
    while (id_end < macro_view.size() && IsIdentChar(macro_view[id_end])) {
      ++id_end;
    }
    std::string ident(macro_view.substr(i, id_end - i));
    auto it = calls.find(ident);
    if (it == calls.end()) {
      i = id_end - 1;
      continue;
    }
    size_t open = id_end;
    while (open < macro_view.size() &&
           std::isspace(static_cast<unsigned char>(macro_view[open]))) {
      ++open;
    }
    if (open >= macro_view.size() || macro_view[open] != '(') {
      i = id_end - 1;
      continue;
    }
    size_t call_end = FindCallEnd(macro_view, open);
    if (call_end == std::string_view::npos) {
      i = id_end - 1;
      continue;
    }
    const CallSpec& spec = it->second;
    int line_no = LineOf(macro_view, i);
    std::vector<std::string> args =
        SplitArgs(macro_view.substr(open + 1, call_end - open - 2));

    if (spec.hygiene) {
      for (const std::string& arg : args) {
        std::string op = FindSideEffectOperator(arg);
        if (!op.empty()) {
          out->push_back(
              {relative_path, line_no, "obs-macro-arg",
               ident + " argument '" + arg + "' uses '" + op +
                   "' (obs macros compile out under SLIM_ENABLE_OBS=OFF; "
                   "arguments must be side-effect free)"});
        }
      }
    }

    if (static_cast<size_t>(spec.name_arg) < args.size()) {
      const std::string& name_arg = args[spec.name_arg];
      std::string literal;
      bool exact = false;
      if (LeadingStringLiteral(name_arg, &literal, &exact)) {
        bool charset_ok = IsValidNameLiteral(literal);
        if (!charset_ok) {
          out->push_back({relative_path, line_no, "obs-name",
                          ident + " name \"" + literal +
                              "\" does not match [a-z0-9._]+"});
        }
        if (charset_ok && spec.check_catalog && in_src) {
          bool found = exact ? catalog.MatchesExact(literal)
                             : catalog.MatchesPrefix(literal);
          if (!found) {
            out->push_back(
                {relative_path, line_no, "obs-name",
                 ident + " name " + (exact ? "\"" : "prefix \"") + literal +
                     "\" is not in the DESIGN.md metric-name catalog"});
          }
        }
      } else if (spec.name_must_be_literal) {
        out->push_back(
            {relative_path, line_no, "obs-name",
             ident + " name '" + name_arg +
                 "' must be a string literal (the Counter*/Histogram* is "
                 "cached per call site; use SLIM_OBS_COUNT_DYN for runtime "
                 "names)"});
      } else if (ident == "SLIM_OBS_COUNT_DYN" && in_src) {
        out->push_back({relative_path, line_no, "obs-name",
                        "SLIM_OBS_COUNT_DYN name '" + name_arg +
                            "' should start with a string-literal prefix "
                            "so the catalog can be checked"});
      }
    }
    i = id_end - 1;
  }
}

bool IsCppFile(const std::filesystem::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

void LintFile(const std::string& relative_path, std::string_view contents,
              const Catalog& catalog, std::vector<Diagnostic>* out) {
  std::string code = StripComments(contents);
  LintIncludes(relative_path, code, out);
  // raw-mutex rides on the flow tokenizer (flow.h); same diagnostics as
  // the original per-line scanner.
  LintRawMutexModel(BuildFlowModel(relative_path, contents), out);
  std::string macro_view = BlankDirectives(code);
  LintCalls(relative_path, macro_view, catalog, out);
}

namespace {

/// Reads every C++ file under options.subdirs, sorted by path. Fails when
/// the root is not a readable directory (the documented exit-2 path).
Status ReadTreeFiles(const Options& options,
                     std::vector<std::pair<std::string, std::string>>* out) {
  std::error_code ec;
  if (!std::filesystem::is_directory(options.root, ec) || ec) {
    return Status::IoError("root is not a readable directory: " +
                           options.root.string());
  }
  std::vector<std::filesystem::path> files;
  for (const std::string& sub : options.subdirs) {
    std::filesystem::path dir = options.root / sub;
    if (!std::filesystem::is_directory(dir, ec)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && IsCppFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot read " + file.string());
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    out->emplace_back(
        std::filesystem::relative(file, options.root).generic_string(),
        buffer.str());
  }
  return Status::OK();
}

/// Flow models + index for a tree snapshot (the flow rules' input).
void BuildFlowModels(
    const std::vector<std::pair<std::string, std::string>>& sources,
    std::vector<FlowFile>* models, FlowIndex* index) {
  models->reserve(sources.size());
  for (const auto& [relative, contents] : sources) {
    models->push_back(BuildFlowModel(relative, contents));
    index->Add(models->back());
  }
}

}  // namespace

Status LintTree(const Options& options, std::vector<Diagnostic>* out) {
  std::filesystem::path catalog_path = options.catalog_path.empty()
                                           ? options.root / "DESIGN.md"
                                           : options.catalog_path;
  Catalog catalog;
  SLIM_RETURN_NOT_OK(LoadCatalog(catalog_path, &catalog));

  std::vector<std::pair<std::string, std::string>> sources;
  SLIM_RETURN_NOT_OK(ReadTreeFiles(options, &sources));

  for (const auto& [relative, contents] : sources) {
    LintFile(relative, contents, catalog, out);
  }

  // Flow-aware rules: per-file coverage checks against the tree-wide
  // index, then the tree-level snapshot and lock-order analyses.
  std::vector<FlowFile> models;
  FlowIndex index;
  BuildFlowModels(sources, &models, &index);
  for (const FlowFile& model : models) {
    LintGuardedByCoverage(model, index, out);
    LintLockAcrossBlocking(model, index, out);
  }
  LintSnapshotDiscipline(models, index, out);
  LockGraph graph;
  graph.Build(models, index);
  graph.LintLockOrder(out);
  return Status::OK();
}

Status LockOrderDot(const Options& options, std::string* dot) {
  std::vector<std::pair<std::string, std::string>> sources;
  SLIM_RETURN_NOT_OK(ReadTreeFiles(options, &sources));
  std::vector<FlowFile> models;
  FlowIndex index;
  BuildFlowModels(sources, &models, &index);
  LockGraph graph;
  graph.Build(models, index);
  *dot = graph.ToDot();
  return Status::OK();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string json = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i != 0) json += ",";
    json += "\n  {\"file\": \"" + JsonEscape(d.file) +
            "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
            JsonEscape(d.rule) + "\", \"message\": \"" + JsonEscape(d.message) +
            "\"}";
  }
  json += diagnostics.empty() ? "]\n" : "\n]\n";
  return json;
}

int RunLint(const Options& options) {
  std::vector<Diagnostic> diagnostics;
  Status status = LintTree(options, &diagnostics);
  if (!status.ok()) {
    std::fprintf(stderr, "slim_lint: %s\n", status.ToString().c_str());
    return 2;
  }
  if (!options.rules.empty()) {
    diagnostics.erase(
        std::remove_if(diagnostics.begin(), diagnostics.end(),
                       [&options](const Diagnostic& d) {
                         return std::find(options.rules.begin(),
                                          options.rules.end(),
                                          d.rule) == options.rules.end();
                       }),
        diagnostics.end());
  }
  if (options.format == "json") {
    std::fputs(DiagnosticsToJson(diagnostics).c_str(), stdout);
  } else {
    for (const Diagnostic& d : diagnostics) {
      std::printf("%s\n", FormatDiagnostic(d).c_str());
    }
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "slim_lint: %zu finding(s)\n", diagnostics.size());
    return 1;
  }
  return 0;
}

}  // namespace slim::lint
