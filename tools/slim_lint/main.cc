/// \file main.cc
/// \brief slim_lint CLI. `slim_lint --root <repo>` walks src/, tests/,
/// bench/ and examples/ and prints one diagnostic per line; exit 0 clean,
/// 1 on findings, 2 on usage/IO errors. Wired into ctest (slim_lint_tree)
/// and the CI lint job.

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: slim_lint --root <repo-root> [--catalog <DESIGN.md>]\n"
      "                 [--format=text|json] [--rule=<name> ...] [--dot]\n"
      "\n"
      "Enforces the SLIM architecture contracts: the include-layer DAG,\n"
      "SLIM_OBS_* macro hygiene, the DESIGN.md metric-name catalog, and\n"
      "the concurrency contracts (lock-order, snapshot-discipline,\n"
      "lock-across-blocking, guarded-by-coverage).\n"
      "\n"
      "  --format=json   machine-readable diagnostics (CI artifact)\n"
      "  --rule=<name>   report only this rule (repeatable)\n"
      "  --dot           print the lock-order graph as DOT and exit\n"
      "\n"
      "Exit: 0 clean, 1 findings, 2 errors.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  slim::lint::Options options;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
      options.root = argv[++i];
    } else if (std::strcmp(arg, "--catalog") == 0 && i + 1 < argc) {
      options.catalog_path = argv[++i];
    } else if (std::strncmp(arg, "--format=", 9) == 0) {
      options.format = arg + 9;
      if (options.format != "text" && options.format != "json") {
        return Usage();
      }
    } else if (std::strncmp(arg, "--rule=", 7) == 0 && arg[7] != '\0') {
      options.rules.emplace_back(arg + 7);
    } else if (std::strcmp(arg, "--dot") == 0) {
      dot = true;
    } else {
      return Usage();
    }
  }
  if (options.root.empty()) return Usage();
  if (dot) {
    std::string out;
    slim::Status status = slim::lint::LockOrderDot(options, &out);
    if (!status.ok()) {
      std::fprintf(stderr, "slim_lint: %s\n", status.ToString().c_str());
      return 2;
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  return slim::lint::RunLint(options);
}
