/// \file main.cc
/// \brief slim_lint CLI. `slim_lint --root <repo>` walks src/, tests/,
/// bench/ and examples/ and prints one diagnostic per line; exit 0 clean,
/// 1 on findings, 2 on usage/IO errors. Wired into ctest (slim_lint_tree)
/// and the CI lint job.

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: slim_lint --root <repo-root> [--catalog <DESIGN.md>]\n"
               "\n"
               "Enforces the SLIM architecture contracts: the include-layer\n"
               "DAG, SLIM_OBS_* macro hygiene, and the DESIGN.md metric-name\n"
               "catalog. Exit: 0 clean, 1 findings, 2 errors.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  slim::lint::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      options.root = argv[++i];
    } else if (std::strcmp(argv[i], "--catalog") == 0 && i + 1 < argc) {
      options.catalog_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (options.root.empty()) return Usage();
  return slim::lint::RunLint(options);
}
