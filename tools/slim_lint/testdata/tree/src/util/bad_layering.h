#ifndef FIXTURE_BAD_LAYERING_H_
#define FIXTURE_BAD_LAYERING_H_

// Seeded violation: util is the bottom layer and must not include obs
// (or anything else above itself).
#include "obs/metrics.h"
#include "util/status.h"

#endif  // FIXTURE_BAD_LAYERING_H_
