// Seeded violations for the snapshot-discipline rule: an unpinned read
// path, a snapshot held across a write batch, and a pinned sibling that
// must stay clean.

#include "trim/triple_store.h"

namespace slim {

// Violation: reads the store with no Snapshot pin anywhere on the path.
int CountTypeTriples(const trim::TripleStore& store) {
  int n = 0;
  store.SelectEach(trim::TriplePattern::ByProperty("slim:s/type"),
                   [&](const trim::Triple&) {
                     ++n;
                     return true;
                   });
  return n;
}

// Violation: the pin is still live around the mutation it would starve.
void RewriteUnderPin(trim::TripleStore& store, trim::TripleBatch batch) {
  trim::TripleStore::Snapshot snap(store);
  store.ApplyBatch(batch);
}

// Clean: same read as above, under a pin.
int CountTypeTriplesPinned(const trim::TripleStore& store) {
  trim::TripleStore::Snapshot snap(store);
  int n = 0;
  store.SelectEach(trim::TriplePattern::ByProperty("slim:s/type"),
                   [&](const trim::Triple&) {
                     ++n;
                     return true;
                   });
  return n;
}

}  // namespace slim
