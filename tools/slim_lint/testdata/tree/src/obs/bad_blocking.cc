// Seeded violation: an instrumented lock held across a blocking call — every
// contender on the site stalls behind the sleep.

#include <chrono>
#include <thread>

#include "util/instrumented_mutex.h"

namespace slim::obs {

class SlowFlusher {
 public:
  void Flush();

 private:
  util::InstrumentedMutex mu_{"obs.bad.flusher"};
};

void SlowFlusher::Flush() {
  util::MutexLock lock(&mu_);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace slim::obs
