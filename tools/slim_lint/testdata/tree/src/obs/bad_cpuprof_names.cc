#include "obs/obs.h"

// Seeded violations for the sampling-profiler metric families: bogus
// obs.cpuprof.* / obs.profile.* names next to catalogued ones, proving
// the brace row and the exact eviction row gate them.
void FixtureBadCpuprofNames() {
  SLIM_OBS_COUNT("obs.cpuprof.samples");        // clean: brace row
  SLIM_OBS_COUNT("obs.cpuprof.flamegraphs");    // not in the catalog
  SLIM_OBS_COUNT("obs.profile.evicted");        // clean: exact row
  SLIM_OBS_COUNT("obs.profile.evicted.total");  // not in the catalog
}
