#include "obs/obs.h"

// Seeded violations for the SLO/heartbeat metric families: bogus names in
// each family next to clean ones, proving the catalog rows gate them.
void FixtureBadSloNames() {
  SLIM_OBS_COUNT("slim.slo.evaluations");     // clean: exact row
  SLIM_OBS_COUNT("slim.slo.bogus.metric");    // not in the catalog
  SLIM_OBS_HEARTBEAT("slim.query");           // clean: heartbeat row
  SLIM_OBS_HEARTBEAT("obs.bogus_subsystem");  // not in the catalog
}
