// Seeded raw-mutex violations: two flagged declarations (plain and
// recursive), one suppressed companion mutex, and non-declarations that
// must not fire (template argument, instrumented type).
#include <mutex>

namespace slim::obs {

struct Ring {
  std::mutex mu;
  std::recursive_mutex nested_mu;
  std::mutex wake_mu;  // slim-lint: allow(raw-mutex) -- cv companion
};

inline void Use(Ring* ring) {
  std::lock_guard<std::mutex> lock(ring->mu);
  (void)ring;
}

}  // namespace slim::obs
