// Seeded violation: trim sits below the SLIM store and must never reach
// up into slim/, dmi/ or slimpad/.
#include "slim/model.h"
#include "trim/triple_store.h"

// An include mentioned in a comment must not fire:
// #include "dmi/dynamic_dmi.h"
