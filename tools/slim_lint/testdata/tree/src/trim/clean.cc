#include "doc/xml/dom.h"
#include "obs/obs.h"
#include "trim/triple_store.h"
#include "util/status.h"

// A fully conforming file: none of these may produce a finding.
void FixtureClean(int fanout) {
  SLIM_OBS_COUNT("trim.add.ok");
  SLIM_OBS_HISTOGRAM("trim.view.fanout", fanout);
  SLIM_OBS_TIMER(timer, "trim.view.latency_us");
  SLIM_OBS_SPAN(span, "mark.create");
  SLIM_OBS_LOG(kWarn, "trim", "message == with operators <= inside text");
}
