#include "obs/obs.h"
#include "trim/triple_store.h"

// Seeded violations: the SLIM_OBS_* macros compile out under
// SLIM_ENABLE_OBS=OFF, so side-effecting arguments silently change
// behavior between the two configurations.
void FixtureBadMacroArgs(int retries, int total) {
  SLIM_OBS_COUNT_N("trim.add.ok", ++retries);
  SLIM_OBS_HISTOGRAM("trim.view.fanout", total = total + 1);
  SLIM_OBS_HISTOGRAM("trim.view.fanout", total - 1);  // clean: no finding
}
