// Seeded violations for the guarded-by-coverage rule: a mutex-owning class
// with two bare mutable fields. The const, atomic, annotated and suppressed
// siblings must stay clean.

#include <atomic>
#include <map>

#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::trim {

class BadCache {
 public:
  int Lookup(int key) const;

 private:
  mutable util::InstrumentedMutex mu_{"trim.bad.cache"};
  int hits_ = 0;
  std::map<int, int> entries_;
  const int capacity_ = 8;
  std::atomic<int> lookups_{0};
  int misses_ GUARDED_BY(mu_) = 0;
  // slim-lint: allow(unguarded) -- statistics sampled without the lock
  int approx_size_ = 0;
};

}  // namespace slim::trim
