#include <string>

#include "obs/obs.h"

// Seeded violations for the obs-name rule, one per failure mode.
void FixtureBadNames(const std::string& runtime_name) {
  SLIM_OBS_COUNT("Trim.Add.OK");               // bad charset
  SLIM_OBS_COUNT("trim.nonexistent.metric");   // not in the catalog
  SLIM_OBS_COUNT(runtime_name.c_str());        // must be a literal
  SLIM_OBS_COUNT_DYN(runtime_name + ".ok");    // no literal prefix
  SLIM_OBS_COUNT_DYN("mark.resolve.module." + runtime_name);  // clean
  SLIM_OBS_COUNT("trim.add.duplicate");        // clean: brace expansion
  SLIM_OBS_COUNT("workload.open_all_scraps.calls");  // clean: star pattern
}
