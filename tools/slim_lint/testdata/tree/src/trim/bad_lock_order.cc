// Seeded violation: two methods take the same pair of instrumented locks in
// opposite orders — the canonical AB/BA deadlock the lock-order rule exists
// to catch.

#include "util/instrumented_mutex.h"

namespace slim::trim {

class OrderPair {
 public:
  void Forward();
  void Backward();

 private:
  util::InstrumentedMutex alpha_mu_{"trim.bad.alpha"};
  util::InstrumentedMutex beta_mu_{"trim.bad.beta"};
};

void OrderPair::Forward() {
  util::MutexLock a(&alpha_mu_);
  util::MutexLock b(&beta_mu_);
}

void OrderPair::Backward() {
  util::MutexLock b(&beta_mu_);
  util::MutexLock a(&alpha_mu_);
}

}  // namespace slim::trim
