#ifndef SLIM_TOOLS_SLIM_LINT_FLOW_H_
#define SLIM_TOOLS_SLIM_LINT_FLOW_H_

/// \file flow.h
/// \brief Flow-aware concurrency-contract analysis for slim_lint.
///
/// The original linter scanned each file line by line with regexes — fine
/// for includes and macro arguments, blind to *scope*. The concurrency
/// contracts introduced by the sharded MVCC TripleStore (DESIGN.md §10)
/// are scope properties: which locks are held *here*, is a snapshot pin
/// still alive *there*. This header provides the machinery to check them:
///
///  1. A table-driven C++ **tokenizer** (`Tokenize`): maximal-munch
///     punctuator table, comment/whitespace skipping, string/char/raw
///     literals, and whole preprocessor directives (with backslash
///     continuations) folded into single tokens so macro *definitions* are
///     never mistaken for code.
///  2. A **scope-tracking pass** (`BuildFlowModel`): walks the token
///     stream with a namespace/class/function/block scope stack and
///     extracts a `FlowFile` model — mutex member declarations (with their
///     lock-site names), class fields (for GUARDED_BY coverage), and per
///     function: lock acquisitions, snapshot pins, read-path calls,
///     blocking calls and plain calls, each recorded with the set of locks
///     and pins lexically live at that point.
///  3. A **tree index** (`FlowIndex`): resolves member-mutex expressions
///     (`&mu_`, `&store.write_mu_`) to their declared lock-site names
///     across translation units, using the class context of the enclosing
///     function and the declared types of member fields.
///
/// Four rules consume the models (lock-order lives in lock_graph.h):
///
///  - `raw-mutex` (ported from the regex scanner): raw std::mutex
///    declarations in instrumented layers.
///  - `guarded-by-coverage`: every mutable field of a class that owns a
///    `util::InstrumentedMutex` must carry `GUARDED_BY(...)` or a
///    `// slim-lint: allow(unguarded) -- <why>` suppression; atomics,
///    const/static members and nested synchronization primitives are
///    exempt (they synchronize themselves).
///  - `lock-across-blocking`: an instrumented lock held across socket
///    I/O, `condition_variable::wait*` or `sleep_for`/`sleep_until`
///    stalls every contender (and, held across a writer batch, epoch
///    reclamation); release first or suppress with justification.
///  - `snapshot-discipline` (LintSnapshotDiscipline, interprocedural):
///    in src/slim and src/trim a read-path call (`SelectEach`,
///    `Distinct{Subjects,Properties,Objects}`, `FindNodeAt`) must be
///    covered by a live `TripleStore::Snapshot`, a snapshot parameter, a
///    `BeginRead()` pin, or the writer lock (a writer reads its own
///    pending epoch); coverage may come from any caller, so the check
///    propagates uncovered reads up the (simple-name) call graph and only
///    reports reads still exposed at a call-graph root. The local half
///    flags a Snapshot whose lifetime encloses a `WriterScope`,
///    `ApplyBatch` or blocking call — pinning while writing stalls epoch
///    reclamation.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace slim::lint {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Token kinds, X-macro style (the quirrel_static_analyzer lexer idiom):
/// one table drives the enum, the debug names and the punctuator matcher.
#define SLIM_LINT_TOKEN_KINDS(TOKEN_KIND)    \
  TOKEN_KIND(kEnd, "<end>")                  \
  TOKEN_KIND(kIdent, "<identifier>")         \
  TOKEN_KIND(kNumber, "<number>")            \
  TOKEN_KIND(kString, "<string>")            \
  TOKEN_KIND(kChar, "<char>")                \
  TOKEN_KIND(kDirective, "<directive>")      \
  TOKEN_KIND(kScope, "::")                   \
  TOKEN_KIND(kArrow, "->")                   \
  TOKEN_KIND(kDot, ".")                      \
  TOKEN_KIND(kComma, ",")                    \
  TOKEN_KIND(kSemi, ";")                     \
  TOKEN_KIND(kColon, ":")                    \
  TOKEN_KIND(kLParen, "(")                   \
  TOKEN_KIND(kRParen, ")")                   \
  TOKEN_KIND(kLBrace, "{")                   \
  TOKEN_KIND(kRBrace, "}")                   \
  TOKEN_KIND(kLBracket, "[")                 \
  TOKEN_KIND(kRBracket, "]")                 \
  TOKEN_KIND(kLess, "<")                     \
  TOKEN_KIND(kGreater, ">")                  \
  TOKEN_KIND(kAmp, "&")                      \
  TOKEN_KIND(kStar, "*")                     \
  TOKEN_KIND(kAssign, "=")                   \
  TOKEN_KIND(kPunct, "<punct>")

enum class TokKind {
#define TOKEN_KIND(name, spelling) name,
  SLIM_LINT_TOKEN_KINDS(TOKEN_KIND)
#undef TOKEN_KIND
};

/// Debug spelling of a kind (fixed punctuators print themselves).
const char* TokKindName(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string_view text;  ///< View into the tokenized source.
  int line = 0;           ///< 1-based line of the token's first character.
};

/// Tokenizes C++ source. Comments and whitespace are skipped; string,
/// char and raw-string literals become single kString/kChar tokens; a
/// preprocessor directive (including backslash-continued lines) becomes
/// one kDirective token whose text spans the whole directive. The final
/// token is always kEnd.
std::vector<Token> Tokenize(std::string_view src);

// ---------------------------------------------------------------------------
// Flow model
// ---------------------------------------------------------------------------

/// A mutex-typed data member declaration inside a class.
struct MutexDecl {
  std::string class_name;  ///< Innermost enclosing class ("" at namespace
                           ///< scope — function-local statics land here too).
  std::string member;      ///< Declared name, e.g. "write_mu_".
  std::string site;        ///< InstrumentedMutex site literal; "" for raw.
  int line = 0;
  bool raw = false;         ///< std::mutex (and variants) vs instrumented.
  bool suppressed = false;  ///< Line carries allow(raw-mutex).
};

/// A non-mutex data member declaration (guarded-by-coverage input and the
/// receiver-type hint for cross-class call resolution).
struct FieldDecl {
  std::string class_name;
  std::string name;
  std::string type_text;  ///< Declaration tokens left of the name, joined.
  int line = 0;
  bool guarded = false;       ///< Carries GUARDED_BY(...).
  bool is_const = false;      ///< const / constexpr.
  bool is_atomic = false;     ///< std::atomic<...> (or atomic member array).
  bool suppressed = false;    ///< Line carries allow(unguarded).
};

/// One lock or pin lexically live at some program point.
struct HeldLock {
  enum class Kind { kMutexLock, kUniqueLock, kWriterScope, kRequires };
  Kind kind = Kind::kMutexLock;
  std::string mutex_expr;  ///< "mu_", "store.write_mu_"; "" for WriterScope.
  int line = 0;            ///< Acquisition line.
};

/// A call to one of the TripleStore read paths.
struct ReadCall {
  std::string callee;
  int line = 0;
  bool covered = false;     ///< Snapshot/pin/writer-lock live at the call.
  bool suppressed = false;  ///< Line carries allow(snapshot-discipline).
};

/// A call that can block (socket I/O, cv wait, sleep).
struct BlockingCall {
  std::string callee;
  int line = 0;
  std::vector<HeldLock> held;      ///< Instrumented locks live at the call.
  bool snapshot_live = false;      ///< A Snapshot pin encloses the call.
  int snapshot_line = 0;
  bool suppressed = false;  ///< allow(lock-across-blocking) on the line.
};

/// One lock acquisition together with the locks already held at that
/// point — the raw material of the lock-order graph.
struct Acquisition {
  HeldLock lock;
  std::vector<HeldLock> held_before;
};

/// A plain call site (call-graph edge for interprocedural propagation).
struct CallSite {
  std::string callee;    ///< Simple name.
  std::string receiver;  ///< "x" in x.Foo() / x->Foo(); "" for free calls.
  int line = 0;
  std::vector<HeldLock> held;
  bool snapshot_live = false;  ///< Snapshot pin covers this call site.
};

/// A WriterScope (or ApplyBatch) entered while a Snapshot pin is live.
struct PinnedWrite {
  std::string what;  ///< "WriterScope" / "ApplyBatch".
  int line = 0;
  int snapshot_line = 0;
  bool suppressed = false;
};

/// One function definition's extracted facts.
struct FunctionModel {
  std::string class_name;  ///< Explicit A::B qualifier or enclosing class.
  std::string name;        ///< Simple name.
  int line = 0;
  bool has_snapshot_param = false;  ///< Signature mentions Snapshot.
  bool calls_begin_read = false;    ///< TripleStore-internal pin idiom.
  std::vector<std::string> requires_exprs;  ///< REQUIRES(...) mutex exprs.
  std::vector<Acquisition> acquisitions;
  std::vector<ReadCall> reads;
  std::vector<BlockingCall> blocking;
  std::vector<CallSite> calls;
  std::vector<PinnedWrite> pinned_writes;
};

/// Everything the flow pass extracted from one file.
struct FlowFile {
  std::string path;  ///< Relative to the linted root.
  std::vector<MutexDecl> mutexes;
  std::vector<FieldDecl> fields;
  std::vector<FunctionModel> functions;
};

/// Tokenizes and walks one file. `contents` is the raw source (the pass
/// looks up suppression comments on the original lines).
FlowFile BuildFlowModel(const std::string& relative_path,
                        std::string_view contents);

// ---------------------------------------------------------------------------
// Tree index: cross-file lock-site resolution
// ---------------------------------------------------------------------------

class FlowIndex {
 public:
  void Add(const FlowFile& file);

  /// Resolves a mutex expression from an acquisition (or REQUIRES clause)
  /// in a function with class context `class_name` to the declared
  /// lock-site names it may denote. Resolution order: the trailing member
  /// identifier looked up in `class_name` and at namespace scope; then,
  /// for `obj.member` expressions, in the class named by the receiver
  /// field's declared type; finally tree-wide by member name — that last
  /// step can be ambiguous and yields every candidate (callers treat
  /// multi-candidate results conservatively).
  std::vector<std::string> ResolveSites(const std::string& class_name,
                                        const std::string& mutex_expr) const;

  /// Declared type text of `class_name::field`, or "" when unknown.
  const std::string& FieldType(const std::string& class_name,
                               const std::string& field) const;

  /// Site names of every InstrumentedMutex owned by `class_name`.
  std::vector<std::string> ClassSites(const std::string& class_name) const;

 private:
  /// (class, member) -> site; "" class key holds namespace-scope mutexes.
  std::map<std::pair<std::string, std::string>, std::string> by_class_;
  /// member -> sites, across all classes.
  std::map<std::string, std::set<std::string>> by_member_;
  std::map<std::pair<std::string, std::string>, std::string> field_types_;
  std::map<std::string, std::vector<std::string>> class_sites_;
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Candidate definition keys ("Class::name"; "::name" for free functions)
/// that a call site may dispatch to. `by_simple` maps a simple name to
/// every key with a model. Dispatch is receiver-typed: an explicit
/// receiver restricts candidates to the class named by the receiver
/// field's declared type; a bare call (or `this->`) restricts to the
/// caller's own class and to free functions; a receiver whose type is
/// unknown (a local or parameter) yields nothing — for graph building, a
/// fabricated edge is worse than a missed one.
std::vector<std::string> ResolveCalleeKeys(
    const FlowIndex& index, const std::string& caller_class,
    const CallSite& call,
    const std::map<std::string, std::vector<std::string>>& by_simple);

/// raw-mutex (token-based port of the regex scanner; same diagnostics).
void LintRawMutexModel(const FlowFile& file, std::vector<Diagnostic>* out);

/// guarded-by-coverage over one file's classes.
void LintGuardedByCoverage(const FlowFile& file, const FlowIndex& index,
                           std::vector<Diagnostic>* out);

/// lock-across-blocking over one file's functions.
void LintLockAcrossBlocking(const FlowFile& file, const FlowIndex& index,
                            std::vector<Diagnostic>* out);

/// snapshot-discipline over the whole tree (interprocedural half plus the
/// pin-across-write/blocking local half).
void LintSnapshotDiscipline(const std::vector<FlowFile>& files,
                            const FlowIndex& index,
                            std::vector<Diagnostic>* out);

}  // namespace slim::lint

#endif  // SLIM_TOOLS_SLIM_LINT_FLOW_H_
