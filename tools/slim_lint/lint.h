#ifndef SLIM_TOOLS_SLIM_LINT_LINT_H_
#define SLIM_TOOLS_SLIM_LINT_LINT_H_

/// \file lint.h
/// \brief slim_lint: SLIM-specific static analysis over the source tree.
///
/// Generic tooling (clang-tidy, sanitizers) cannot see the repository's
/// architectural contracts, so this linter enforces them mechanically:
///
///  - `layer-dag` — the include-layer DAG. Each directory under `src/` is a
///    layer; a layer may only include headers from itself and the layers it
///    links against (transitively). In particular `util` includes nothing
///    above it (not even `obs`), and `trim` never includes `slim`, `dmi`
///    or `slimpad`.
///  - `obs-macro-arg` — SLIM_OBS_* macro hygiene. The instrumentation
///    macros compile out under SLIM_ENABLE_OBS=OFF, so their arguments must
///    be side-effect free: no `++`, `--` or assignment operators.
///  - `obs-name` — metric/span/log names. Name literals passed to the
///    SLIM_OBS_* macros and to the metric-emission helpers (`GetCounter`,
///    `CountGesture`, ...) must match `[a-z0-9._]+`; inside `src/` they
///    must additionally appear in the DESIGN.md metric-name catalog, and
///    the cached-counter macros require a literal (a runtime name defeats
///    per-site caching).
///  - `raw-mutex` — lock-instrumentation coverage. The instrumented layers
///    (`trim`, `slim`, `obs`, `workload`) declare their locks as
///    `util::InstrumentedMutex` so every lock site feeds the `obs.lock.*`
///    contention telemetry; a raw `std::mutex` declaration there is
///    flagged unless the line carries `// slim-lint: allow(raw-mutex)`
///    (legitimate, e.g. a std::condition_variable's companion mutex or a
///    lock *inside* the instrumentation's own event path).
///
/// Four flow-aware rules ride on the tokenizer and scope pass in flow.h —
/// `lock-order` (acquisition-graph cycles), `snapshot-discipline` (MVCC
/// read paths need a live pin; pins must not enclose writes or blocking
/// calls), `lock-across-blocking` (instrumented locks held across waits)
/// and `guarded-by-coverage` (mutable fields of lock-owning classes carry
/// GUARDED_BY). Suppression comments follow one style everywhere:
/// `// slim-lint: allow(<rule>) -- <justification>`.
///
/// The library half (this header) exists so the golden-fixture tests can
/// run individual rules over seeded-violation files and assert the exact
/// diagnostics; the `slim_lint` binary wraps `LintTree` and is wired into
/// ctest and CI against the real tree.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace slim::lint {

/// \brief One finding. `file` is relative to the linted root.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;  ///< "layer-dag", "obs-macro-arg", "obs-name",
                     ///< "raw-mutex".
  std::string message;  ///< Human-readable, no trailing newline.

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
};

/// `<file>:<line>: [<rule>] <message>` — stable, test-asserted.
std::string FormatDiagnostic(const Diagnostic& d);

/// \brief The DESIGN.md metric-name catalog, parsed from the markdown
/// table(s): every backtick-quoted token in a table row's first column.
/// `{a,b}` alternatives are expanded; `<word>` is a single-segment
/// wildcard; a trailing `.*` matches any dotted suffix.
class Catalog {
 public:
  /// Registers one catalog pattern (already backtick-stripped).
  void AddPattern(const std::string& pattern);

  /// True when `name` matches some pattern exactly (wildcards honored).
  bool MatchesExact(std::string_view name) const;

  /// True when some pattern begins with `prefix` (textually) — used for
  /// runtime-concatenated names whose literal part ends with '.'.
  bool MatchesPrefix(std::string_view prefix) const;

  size_t size() const { return patterns_.size(); }

 private:
  std::vector<std::string> patterns_;  ///< Brace-expanded.
};

/// Parses the metric-name catalog out of a DESIGN.md-style markdown file.
/// Fails if the file cannot be read or yields no names.
Status LoadCatalog(const std::filesystem::path& path, Catalog* out);

/// \brief What to lint and against which catalog.
struct Options {
  std::filesystem::path root;          ///< Repository root.
  std::filesystem::path catalog_path;  ///< Defaults to root/DESIGN.md.
  /// Subdirectories of root to walk.
  std::vector<std::string> subdirs = {"src", "tests", "bench", "examples"};
  /// Diagnostic rendering: "text" (file:line: [rule] message) or "json"
  /// (an array of {file, line, rule, message} objects).
  std::string format = "text";
  /// When non-empty, only diagnostics from these rules are reported.
  std::vector<std::string> rules;
};

/// Lints one file's contents. `relative_path` determines which rules apply
/// (layer-dag and the catalog check only fire under `src/`). Appends to
/// `out`.
void LintFile(const std::string& relative_path, std::string_view contents,
              const Catalog& catalog, std::vector<Diagnostic>* out);

/// Walks `options.subdirs` under `options.root`, lints every C++ file
/// (per-file rules in file order, then the tree-level flow rules) and
/// appends the findings to `out`. Fails when `options.root` is not a
/// readable directory or the catalog cannot be loaded.
Status LintTree(const Options& options, std::vector<Diagnostic>* out);

/// Renders the tree's lock-order acquisition graph (lock_graph.h) as DOT.
Status LockOrderDot(const Options& options, std::string* dot);

/// Serializes diagnostics as a JSON array (stable key order, one object
/// per line) — the `--format=json` payload consumed by CI.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// CLI entry: runs LintTree, applies `options.rules`, prints diagnostics
/// to stdout in `options.format`. Returns 0 when clean, 1 on findings, 2
/// on usage/IO errors.
int RunLint(const Options& options);

}  // namespace slim::lint

#endif  // SLIM_TOOLS_SLIM_LINT_LINT_H_
